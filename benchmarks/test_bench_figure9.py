"""Benchmark: regenerate Figure 9 — distribution of reclaims per minute."""

from repro.experiments import figure8, figure9


def test_bench_figure9(benchmark, report_writer):
    def run():
        base = figure8.run(fleet_size=300, hours=24, seed=909)
        return figure9.run(figure8_result=base)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report_writer("figure9", figure9.format_report(result))

    for label, distribution in result.distributions.items():
        assert abs(sum(distribution.values()) - 1.0) < 1e-9, label
        # Most minutes see zero or few reclaims in every regime.
        assert distribution.get(0, 0.0) > 0.4, label

    # The Zipf-fit days have a heavier tail (>= 10 reclaims in one minute)
    # than the Poisson-fit days, mirroring the paper's two families.
    zipf_tail = result.probability_of_at_least("1 min (09/15/19)", 10)
    poisson_tail = result.probability_of_at_least("1 min (12/26/19)", 10)
    assert zipf_tail >= poisson_tail

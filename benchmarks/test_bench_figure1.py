"""Benchmark: regenerate Figure 1 — Docker-registry workload characteristics."""

from repro.experiments import figure1


def test_bench_figure1(benchmark, report_writer):
    results = benchmark.pedantic(
        lambda: figure1.run(duration_hours=24.0), rounds=1, iterations=1
    )
    report_writer("figure1", figure1.format_report(results))

    for name, result in results.items():
        # Figure 1(a)/(b): >20% of objects are large, and they dominate bytes.
        assert result.large_object_fraction > 0.15, name
        assert result.large_byte_fraction > 0.90, name
        # Figure 1(d): a large share of reuses fall within one hour.
        assert result.reuse_within_hour_fraction > 0.30, name
        # Figure 1(c): long-tailed access counts (some objects accessed >= 10x).
        assert result.access_count_cdf[-1][0] >= 10, name

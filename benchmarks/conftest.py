"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper:

* the timing numbers reported by pytest-benchmark measure how long the
  reproduction takes to run (useful for tracking the simulator's own
  performance), and
* the regenerated rows/series — the actual figure content — are printed to
  stdout and written to ``benchmarks/results/<name>.txt`` so they can be
  compared against the paper and against EXPERIMENTS.md.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
reports inline).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report_writer():
    """Returns a callable that persists a regenerated figure/table report."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{'=' * 72}\n{text}\n(saved to {path})")

    return write


@pytest.fixture(scope="session")
def production_results():
    """The shared scaled-down production replay used by Figures 13-16 / Table 1.

    Session-scoped so the five benchmarks that project it do not re-run the
    replay five times.
    """
    from repro.experiments import production

    return production.run(production.ProductionScale())

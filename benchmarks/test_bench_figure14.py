"""Benchmark: regenerate Figure 14 — fault-tolerance activity timeline."""

from repro.experiments import figure14


def test_bench_figure14(benchmark, report_writer, production_results):
    result = benchmark.pedantic(
        lambda: figure14.from_production(production_results), rounds=1, iterations=1
    )
    report_writer("figure14", figure14.format_report(result))

    resets_with_backup = result.totals["large only"][0]
    resets_without_backup = result.totals["large no backup"][0]
    availability_with = result.totals["large only"][2]
    availability_without = result.totals["large no backup"][2]

    # The paper's qualitative result: disabling backup multiplies RESETs and
    # lowers availability; with backup the availability stays above ~95%.
    assert resets_without_backup > resets_with_backup
    assert availability_with > availability_without
    assert availability_with > 0.93

    # Recovery and RESET activity exists (the timeline is not empty) for the
    # unprotected configuration.
    assert sum(result.recoveries_per_hour["large no backup"]) > 0

"""Benchmark: regenerate Figure 12 — throughput scalability with clients."""

from repro.experiments import figure12


def test_bench_figure12(benchmark, report_writer):
    result = benchmark.pedantic(
        lambda: figure12.run(client_counts=(1, 2, 4, 6, 8, 10), requests_per_client=15),
        rounds=1,
        iterations=1,
    )
    report_writer("figure12", figure12.format_report(result))

    # Throughput grows close to linearly with the client count (the paper's
    # "scales linearly as long as more Lambda nodes are available").
    assert result.throughput_bps[10] > 5 * result.throughput_bps[1]
    # And it is monotone in the client count.
    ordered = [result.throughput_bps[c] for c in sorted(result.throughput_bps)]
    assert all(b >= a * 0.9 for a, b in zip(ordered, ordered[1:]))

"""Benchmark: regenerate Figure 4 — latency vs number of VM hosts touched."""

from repro.experiments import figure4
from repro.utils.stats import summarize


def test_bench_figure4(benchmark, report_writer):
    result = benchmark.pedantic(
        lambda: figure4.run(pool_sizes=(20, 50, 100, 150, 200), requests_per_pool=25),
        rounds=1,
        iterations=1,
    )
    report_writer("figure4", figure4.format_report(result))

    medians = {
        hosts: summarize(latencies)["p50"]
        for hosts, latencies in result.latency_by_hosts.items()
        if len(latencies) >= 5
    }
    assert len(medians) >= 3, "the sweep must cover several host-spread levels"
    # The paper's trend: requests spread over more VM hosts are faster.
    few = min(medians)
    many = max(medians)
    assert many > few
    assert medians[many] < medians[few]

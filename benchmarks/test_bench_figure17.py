"""Benchmark: regenerate Figure 17 — hourly cost vs access rate crossover."""

from repro.experiments import figure17


def test_bench_figure17(benchmark, report_writer):
    result = benchmark.pedantic(lambda: figure17.run(), rounds=1, iterations=1)
    report_writer("figure17", figure17.format_report(result))

    # InfiniCache's hourly cost increases monotonically with the access rate.
    assert result.infinicache_hourly == sorted(result.infinicache_hourly)
    # It starts far below ElastiCache's flat hourly price...
    assert result.infinicache_hourly[0] < 0.1 * result.elasticache_hourly
    # ...and the crossover lands near the paper's ~312 K requests/hour.
    assert 250_000 < result.crossover_rate < 420_000
    # The ElastiCache line matches the cache.r5.24xlarge hourly price.
    assert abs(result.elasticache_hourly - 10.368) < 1e-6

"""Benchmark: regenerate Figure 13 — cost of InfiniCache vs ElastiCache."""

from repro.experiments import figure13


def test_bench_figure13(benchmark, report_writer, production_results):
    result = benchmark.pedantic(
        lambda: figure13.from_production(production_results), rounds=1, iterations=1
    )
    report_writer("figure13", figure13.format_report(result))

    costs = result.total_costs
    # Figure 13(a): ElastiCache is the most expensive by a wide margin, and
    # the three InfiniCache settings order exactly as in the paper.
    assert costs["ElastiCache"] > costs["IC (all objects)"]
    assert costs["IC (all objects)"] > costs["IC (large only)"]
    assert costs["IC (large only)"] > costs["IC (large no backup)"]
    # The paper reports 31-96x; at the scaled-down pool the factor is larger
    # but must remain an order-of-magnitude-plus win.
    assert result.improvement_over_elasticache["IC (all objects)"] > 30
    assert result.improvement_over_elasticache["IC (large no backup)"] > \
        result.improvement_over_elasticache["IC (all objects)"]

    # Figure 13(c): for the large-object-only workload the maintenance cost
    # (warm-up + backup) dominates serving.
    large_only = result.cost_breakdown["large only"]
    maintenance = large_only.get("warmup", 0.0) + large_only.get("backup", 0.0)
    assert maintenance > large_only.get("serving", 0.0)

    # Figure 13(d): disabling backup eliminates the backup component entirely.
    assert result.cost_breakdown["large no backup"].get("backup", 0.0) == 0.0

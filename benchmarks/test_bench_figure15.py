"""Benchmark: regenerate Figure 15 — latency CDFs vs ElastiCache and S3."""

from repro.experiments import figure15


def _value_at(cdf, fraction):
    return next(value for value, f in cdf if f >= fraction)


def test_bench_figure15(benchmark, report_writer, production_results):
    result = benchmark.pedantic(
        lambda: figure15.from_production(production_results), rounds=1, iterations=1
    )
    report_writer("figure15", figure15.format_report(result))

    # Figure 15(b): for large objects both caches beat S3 by a wide margin at
    # the median, and InfiniCache is competitive with ElastiCache.
    ic_median = _value_at(result.large_objects["InfiniCache"], 0.5)
    ec_median = _value_at(result.large_objects["ElastiCache"], 0.5)
    s3_median = _value_at(result.large_objects["AWS S3"], 0.5)
    assert s3_median > 5 * ic_median
    assert ic_median < 3 * ec_median

    # Figure 15(a): for the all-object mix ElastiCache has the lowest median
    # (small objects dominate counts and the Lambda invocation overhead hurts
    # InfiniCache there).
    ic_all = _value_at(result.all_objects["InfiniCache"], 0.5)
    ec_all = _value_at(result.all_objects["ElastiCache"], 0.5)
    assert ec_all < ic_all

    # A sizeable share of large requests sees a very large speed-up over S3.
    assert result.large_speedup_100x_fraction >= 0.0

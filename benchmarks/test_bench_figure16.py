"""Benchmark: regenerate Figure 16 — normalised latency by object size."""

import math

from repro.experiments import figure16


def test_bench_figure16(benchmark, report_writer, production_results):
    result = benchmark.pedantic(
        lambda: figure16.from_production(production_results), rounds=1, iterations=1
    )
    report_writer("figure16", figure16.format_report(result))

    infinicache = result.normalized_median["InfiniCache"]
    s3 = result.normalized_median["AWS S3"]

    # Small objects: InfiniCache pays the Lambda invocation overhead and is
    # many times slower than ElastiCache (the paper's "significant overhead
    # for objects smaller than 1 MB").
    assert infinicache["<1MB"] > 5.0

    # Large objects: InfiniCache is on par with or faster than ElastiCache
    # thanks to parallel chunk I/O.
    assert infinicache[">=100MB"] < 1.5

    # Mid-size objects sit in between.
    assert infinicache["[10,100)MB"] < infinicache["<1MB"]

    # S3 is slower than InfiniCache in every bucket that contains data.
    for bucket, value in s3.items():
        if not math.isnan(value) and not math.isnan(infinicache[bucket]):
            assert value > infinicache[bucket] * 0.9, bucket

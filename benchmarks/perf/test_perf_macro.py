"""Macro benchmark: the closed-loop fleet sweep plus the arbiter gate.

Runs the same scenarios as ``python -m repro perf`` at CI-friendly sizes.
The load-bearing assertion is fingerprint identity between the incremental
bottleneck-group arbiter and the global-recompute reference: any semantic
drift in the incremental arbitration fails this benchmark regardless of
timing noise.
"""

from repro.experiments import perf


def test_bench_perf_closed_loop_sweep(benchmark, report_writer):
    samples = benchmark.pedantic(
        lambda: [perf.macro_closed_loop(clients) for clients in (8, 64)],
        rounds=1,
        iterations=1,
    )
    lines = ["closed-loop fleet sweep (incremental arbiter):"]
    for sample in samples:
        lines.append(
            f"  {sample.extra['clients']:>4} clients: {sample.wall_s:.3f}s, "
            f"{sample.events_per_s:,.0f} events/s, "
            f"peak {sample.extra['peak_active_flows']} active flows"
        )
    report_writer("perf_closed_loop", "\n".join(lines))
    # Every client keeps d+p chunk flows in flight at peak.
    assert samples[1].extra["peak_active_flows"] > samples[0].extra["peak_active_flows"]
    assert all(sample.events > 0 for sample in samples)


def test_bench_perf_arbiter_fingerprint_gate(benchmark, report_writer):
    comparison = benchmark.pedantic(
        lambda: perf.compare_arbiters(clients=64), rounds=1, iterations=1
    )
    report_writer(
        "perf_arbiter_gate",
        f"arbiter comparison at {comparison['clients']} clients: "
        f"incremental {comparison['incremental_wall_s']:.3f}s vs "
        f"reference {comparison['reference_wall_s']:.3f}s "
        f"({comparison['speedup']:.1f}x); fingerprints "
        + ("identical" if comparison["fingerprints_identical"] else "DIVERGED"),
    )
    assert comparison["fingerprints_identical"], (
        "incremental arbiter diverged from the global-recompute reference"
    )

"""Micro benchmarks: event-queue churn and raw flow-arbitration cost.

Unlike the figure benchmarks (which regenerate paper content), the perf
suite measures the *simulator's own* throughput — events dispatched per
wall-clock second — so regressions in the engine or the flow arbiter show
up as timing deltas here and as events/sec drops in ``BENCH_perf.json``.
"""

from repro.experiments import perf


def test_bench_perf_event_queue(benchmark, report_writer):
    sample = benchmark.pedantic(
        lambda: perf.micro_event_queue(events=20_000), rounds=1, iterations=1
    )
    report_writer(
        "perf_event_queue",
        f"event queue micro: {sample.events} events in {sample.wall_s:.3f}s "
        f"({sample.events_per_s:,.0f} events/s; "
        f"{sample.extra['cancelled']} of {sample.extra['scheduled']} cancelled)",
    )
    # Half the scheduled events are cancelled before dispatch; the live
    # counter must see exactly the surviving half run.
    assert sample.events == sample.extra["scheduled"] - sample.extra["cancelled"]
    assert sample.events_per_s > 0


def test_bench_perf_flow_churn(benchmark, report_writer):
    incremental = benchmark.pedantic(
        lambda: perf.micro_flow_churn(flows=1_000, arbiter="incremental"),
        rounds=1,
        iterations=1,
    )
    reference = perf.micro_flow_churn(flows=1_000, arbiter="reference")
    report_writer(
        "perf_flow_churn",
        "flow churn micro (1000 staggered transfers over 32 NICs / 8 uplinks):\n"
        f"  incremental: {incremental.wall_s:.3f}s "
        f"({incremental.events_per_s:,.0f} events/s)\n"
        f"  reference:   {reference.wall_s:.3f}s "
        f"({reference.events_per_s:,.0f} events/s)",
    )
    # Identical workload, identical event counts — only the arbitration
    # strategy differs.
    assert incremental.events == reference.events
    assert incremental.extra["peak_active_flows"] == reference.extra["peak_active_flows"]

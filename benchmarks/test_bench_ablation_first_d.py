"""Ablation: first-d chunk streaming vs waiting for every chunk.

DESIGN.md calls out the proxy's first-d optimisation (Section 3.2) as a
design choice worth ablating: with stragglers present, completing a GET as
soon as the fastest ``d`` chunks arrive should cut tail latency compared to
waiting for all ``d+p`` chunks, at the cost of sometimes having to run the RS
decoder.  This benchmark measures both policies on the same deployment.
"""

from repro.cache.config import InfiniCacheConfig, StragglerModel
from repro.cache.deployment import InfiniCacheDeployment
from repro.experiments.report import format_table
from repro.utils.stats import summarize
from repro.utils.units import MB, MIB


def _measure(requests: int = 60) -> dict[str, dict[str, float]]:
    config = InfiniCacheConfig(
        lambdas_per_proxy=24,
        lambda_memory_bytes=1024 * MIB,
        data_shards=10,
        parity_shards=2,
        backup_enabled=False,
        straggler=StragglerModel(probability=0.15, min_factor=2.0, max_factor=8.0),
        seed=77,
    )
    deployment = InfiniCacheDeployment(config)
    deployment.start()
    client = deployment.new_client()
    proxy = deployment.proxies[0]
    client.put_sized("ablation/object", 100 * MB)

    first_d: list[float] = []
    wait_all: list[float] = []
    for _ in range(requests):
        deployment.run_until(deployment.simulator.now + 1.0)
        outcome = proxy.get("ablation/object", deployment.simulator.now)
        assert outcome.found and outcome.recoverable
        available_times = sorted(f.time_s for f in outcome.fetches if not f.lost)
        first_d.append(available_times[config.data_shards - 1])
        wait_all.append(available_times[-1])
    deployment.stop()
    return {"first-d": summarize(first_d), "wait-for-all": summarize(wait_all)}


def test_bench_ablation_first_d(benchmark, report_writer):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = [
        [policy, stats["p50"] * 1000, stats["p90"] * 1000, stats["p99"] * 1000]
        for policy, stats in results.items()
    ]
    report_writer(
        "ablation_first_d",
        format_table(
            ["policy", "p50 (ms)", "p90 (ms)", "p99 (ms)"],
            rows,
            title="Ablation — first-d streaming vs waiting for all chunks (100 MB, RS(10+2))",
        ),
    )

    # First-d must never be slower, and with stragglers it must cut the tail.
    assert results["first-d"]["p50"] <= results["wait-for-all"]["p50"] + 1e-9
    assert results["first-d"]["p99"] < results["wait-for-all"]["p99"]
    assert results["first-d"]["p90"] < results["wait-for-all"]["p90"]

"""Benchmark: regenerate Figure 11 — microbenchmark GET latency sweep."""

from repro.experiments import figure11
from repro.utils.units import MB


def test_bench_figure11(benchmark, report_writer):
    result = benchmark.pedantic(
        lambda: figure11.run(
            lambda_memories_mib=(256, 512, 1024, 2048, 3008),
            rs_codes=((10, 0), (10, 1), (10, 2), (10, 4), (4, 2), (5, 1)),
            object_sizes=(10 * MB, 40 * MB, 100 * MB),
            requests_per_cell=12,
        ),
        rounds=1,
        iterations=1,
    )
    report_writer("figure11", figure11.format_report(result))

    # Latency grows with object size (every memory configuration, RS(10+1)).
    for memory in (256, 1024, 3008):
        assert result.median(memory, (10, 1), 100 * MB) > result.median(memory, (10, 1), 10 * MB)

    # Bigger Lambdas are faster for 100 MB objects, with diminishing returns
    # past ~1 GB (the plateau the paper reports).
    assert result.median(256, (10, 1), 100 * MB) > result.median(1024, (10, 1), 100 * MB)
    plateau_ratio = result.median(1024, (10, 1), 100 * MB) / result.median(3008, (10, 1), 100 * MB)
    assert plateau_ratio < 2.0

    # (10+1) does not lose to the no-parity (10+0) baseline — under the
    # event-driven first-d race a straggler among (10+0)'s chunks always
    # lands on the critical path, while (10+1) abandons it (compare the
    # larger Lambda sizes where transfer time no longer dominates).  The
    # median is the robust statistic here: per-cell sample counts are small
    # and the race makes individual tail samples noisy.
    cell_10_0 = result.cell(3008, (10, 0), 100 * MB)
    cell_10_1 = result.cell(3008, (10, 1), 100 * MB)
    median_10_0 = sorted(cell_10_0.latencies_s)[len(cell_10_0.latencies_s) // 2]
    median_10_1 = sorted(cell_10_1.latencies_s)[len(cell_10_1.latencies_s) // 2]
    assert median_10_1 <= median_10_0 * 1.1

    # Figure 11(f): InfiniCache on 3008 MB Lambdas beats 1-node ElastiCache
    # for 100 MB objects.
    assert result.median(3008, (10, 1), 100 * MB) < result.elasticache[
        ("ElastiCache(1-node)", 100 * MB)
    ]

"""Ablation: anticipatory billed-duration control vs naive always-on windows.

DESIGN.md calls out the billed-duration control (Section 3.3) as a design
choice worth ablating.  The comparison: InfiniCache's controller, which
returns a few milliseconds before the 100 ms cycle boundary and only extends
when traffic warrants it, versus a naive runtime that stays resident for a
fixed multi-cycle window after every request "just in case".
"""

from repro.cache.billed_duration import BilledDurationController
from repro.experiments.report import format_table
from repro.faas.billing import BILLING_CYCLE_SECONDS, BillingModel
from repro.utils.rng import SeededRNG
from repro.utils.units import GIB


def _simulate_policies(requests: int = 2000, mean_gap_s: float = 2.0):
    """Drive both policies with the same Poisson request stream."""
    rng = SeededRNG(404)
    arrival = 0.0
    arrivals = []
    for _ in range(requests):
        arrival += rng.exponential(mean_gap_s)
        arrivals.append(arrival)
    service_time = 0.02  # 20 ms per chunk request

    # InfiniCache's anticipatory controller.
    anticipatory = BilledDurationController()
    for timestamp in arrivals:
        anticipatory.expire_if_due(timestamp)
        anticipatory.record_request(timestamp, service_time)
    anticipatory.flush()

    # Naive policy: every request keeps the function alive for a fixed
    # 10-cycle (1 s) window; overlapping windows merge.
    naive_billed = 0.0
    window_end = None
    window_start = None
    hold = 10 * BILLING_CYCLE_SECONDS
    for timestamp in arrivals:
        if window_end is None or timestamp > window_end:
            if window_end is not None:
                naive_billed += window_end - window_start
            window_start = timestamp
        window_end = timestamp + hold
    if window_end is not None:
        naive_billed += window_end - window_start

    memory = int(1.5 * GIB)
    anticipatory_bill = BillingModel()
    for charge in anticipatory.closed_sessions:
        anticipatory_bill.charge_invocation(memory, charge.duration_s)
    naive_bill = BillingModel()
    naive_bill.charge_invocation(memory, naive_billed)

    return {
        "anticipatory": {
            "billed_seconds": anticipatory.total_billed_seconds(),
            "cost": anticipatory_bill.total_cost,
            "sessions": anticipatory.session_count(),
        },
        "naive-1s-hold": {
            "billed_seconds": naive_billed,
            "cost": naive_bill.total_cost,
            "sessions": 1,
        },
    }


def test_bench_ablation_billing(benchmark, report_writer):
    results = benchmark.pedantic(_simulate_policies, rounds=1, iterations=1)

    rows = [
        [name, stats["billed_seconds"], stats["cost"]]
        for name, stats in results.items()
    ]
    report_writer(
        "ablation_billing",
        format_table(
            ["policy", "billed seconds", "duration cost ($)"],
            rows,
            title="Ablation — anticipatory billed-duration control vs naive 1 s hold",
        ),
    )

    # The anticipatory policy bills a small fraction of the naive policy's
    # duration for the same request stream.
    assert results["anticipatory"]["billed_seconds"] < 0.5 * results["naive-1s-hold"]["billed_seconds"]
    assert results["anticipatory"]["cost"] < results["naive-1s-hold"]["cost"]

"""Benchmark: regenerate the Section 4.3 availability analysis."""

from repro.experiments import availability


def test_bench_availability(benchmark, report_writer):
    result = benchmark.pedantic(lambda: availability.run(), rounds=1, iterations=1)
    report_writer("availability", availability.format_report(result))

    # The paper's quoted approximation ratio p_3/p_4 = 18.8 at r = 12.
    assert abs(result.approximation_ratio_r12 - 18.8) < 0.3

    for label, (loss, avail_minute, avail_hour) in result.per_fit.items():
        # Per-minute loss in (or near) the paper's 0.0039%-0.11% band.
        assert loss < 0.003, label
        assert avail_minute > 0.997, label
        # Hourly availability comparable to the paper's 93.36%-99.76% band.
        assert avail_hour > 0.85, label

    # The Eq. 3 simplification is accurate for the Poisson-fit regime.
    assert result.simplification_error["Poisson fit (Oct/Dec/Jan)"] < 0.05

"""Ablation: backup interval T_bak — the cost vs availability trade-off.

Section 4.2 describes T_bak as "a trade-off between availability, runtime
overhead, and cost effectiveness".  This benchmark sweeps the backup interval
(including "disabled") under a bursty reclamation regime and reports both the
hourly backup cost and the fraction of objects that survive.
"""

from repro.cache.config import InfiniCacheConfig, StragglerModel
from repro.cache.deployment import InfiniCacheDeployment
from repro.experiments.report import format_table
from repro.faas.reclamation import ZipfBurstReclamationPolicy
from repro.utils.rng import SeededRNG
from repro.utils.units import HOUR, MB, MIB, MINUTE


def _run_interval(backup_interval_s: float | None, hours: float = 3.0, objects: int = 30):
    config = InfiniCacheConfig(
        lambdas_per_proxy=30,
        lambda_memory_bytes=1536 * MIB,
        data_shards=10,
        parity_shards=2,
        backup_enabled=backup_interval_s is not None,
        backup_interval_s=backup_interval_s or 300.0,
        straggler=StragglerModel(probability=0.0),
        seed=2024,
    )
    policy = ZipfBurstReclamationPolicy(
        SeededRNG(99), burst_probability=0.2, max_burst=8, sibling_correlation=0.6
    )
    deployment = InfiniCacheDeployment(config, reclamation_policy=policy)
    deployment.start()
    client = deployment.new_client()
    for index in range(objects):
        client.put_sized(f"ablation/{index}", 20 * MB)

    survived = 0
    probes = 0
    for checkpoint in range(1, int(hours * 4) + 1):
        deployment.run_until(checkpoint * 15 * MINUTE)
        for index in range(objects):
            probes += 1
            result = client.get(f"ablation/{index}")
            if result.hit:
                survived += 1
            else:
                client.put_sized(f"ablation/{index}", 20 * MB)
    deployment.stop()
    breakdown = deployment.cost_breakdown()
    return {
        "availability": survived / probes,
        "backup_cost_per_hour": breakdown.get("backup", 0.0) / hours,
        "total_cost_per_hour": breakdown.get("total", 0.0) / hours,
    }


def test_bench_ablation_backup_interval(benchmark, report_writer):
    def sweep():
        return {
            "disabled": _run_interval(None),
            "T_bak=10min": _run_interval(10 * MINUTE),
            "T_bak=5min": _run_interval(5 * MINUTE),
            "T_bak=2min": _run_interval(2 * MINUTE),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [label, f"{stats['availability']:.2%}", stats["backup_cost_per_hour"],
         stats["total_cost_per_hour"]]
        for label, stats in results.items()
    ]
    report_writer(
        "ablation_backup",
        format_table(
            ["backup interval", "availability", "backup $/h", "total $/h"],
            rows,
            title="Ablation — backup interval: availability vs cost",
        ),
    )

    # Backup costs money: any enabled interval costs more than disabled, and
    # shorter intervals cost more than longer ones.
    assert results["disabled"]["backup_cost_per_hour"] == 0.0
    assert results["T_bak=2min"]["backup_cost_per_hour"] > results["T_bak=10min"]["backup_cost_per_hour"]
    # Backup buys availability: enabling it beats disabling it under churn.
    assert results["T_bak=5min"]["availability"] > results["disabled"]["availability"]

"""Benchmark: regenerate Figure 8 — functions reclaimed over 24 hours."""

from repro.experiments import figure8


def test_bench_figure8(benchmark, report_writer):
    result = benchmark.pedantic(
        lambda: figure8.run(fleet_size=300, hours=24), rounds=1, iterations=1
    )
    report_writer("figure8", figure8.format_report(result))

    spike_label = "9 min (08/21/19)"
    spike_hours = result.reclaims_per_hour[spike_label]
    # The 9-minute warm-up regime shows ~6-hourly spikes that take most of the
    # fleet; the peak hour dwarfs the median hour.
    assert max(spike_hours) > 0.4 * result.fleet_size
    assert max(spike_hours) > 5 * sorted(spike_hours)[len(spike_hours) // 2]

    # The 1-minute regimes reclaim continuously at a much lower peak rate.
    for label, per_hour in result.reclaims_per_hour.items():
        if label == spike_label:
            continue
        assert max(per_hour) < 0.4 * result.fleet_size, label

"""Benchmark: regenerate Table 1 — working sets, throughput, hit ratios."""

from repro.experiments import table1


def test_bench_table1(benchmark, report_writer, production_results):
    result = benchmark.pedantic(
        lambda: table1.from_production(production_results), rounds=1, iterations=1
    )
    report_writer("table1", table1.format_report(result))

    all_objects = result.rows["All objects"]
    large_only = result.rows["Large obj. only"]

    # The working sets are non-trivial and the large-only working set is a
    # large fraction of the total (the paper: 1036 GB of 1169 GB).
    assert large_only["wss_gb"] > 0.7 * all_objects["wss_gb"]
    # The large-object request rate is well below the all-object rate.
    assert large_only["gets_per_hour"] < all_objects["gets_per_hour"]

    # Hit-ratio ordering of the paper: ElastiCache >= InfiniCache >= IC w/o backup.
    assert all_objects["ec_hit"] >= all_objects["ic_hit"] - 0.02
    assert large_only["ec_hit"] >= large_only["ic_hit"] - 0.02
    assert large_only["ic_hit"] >= large_only["ic_no_backup_hit"] - 0.02
    # All hit ratios are meaningful (the cache is actually doing its job).
    assert large_only["ic_hit"] > 0.4

#!/usr/bin/env python3
"""Cost explorer: when is a serverless cache cheaper than a provisioned one?

The paper's economic argument (Sections 4.3, 5.2 and Figure 17) is that a
pay-per-request cache wins for large, infrequently accessed objects and loses
for small-object-intensive traffic.  This example uses the analytical cost
model to let an operator explore that boundary for their own workload:

1. prints the hourly cost breakdown (serving / warm-up / backup) of the
   paper's 400-node deployment across a range of access rates;
2. locates the crossover access rate against several ElastiCache instance
   choices;
3. shows how the crossover moves with the erasure-code width and the backup
   interval — the knobs a tenant actually controls.

Run:  python examples/cost_explorer.py
"""

from __future__ import annotations

from repro.analysis import CostModel, CostModelParams
from repro.baselines.pricing import ELASTICACHE_INSTANCES
from repro.utils.units import MIB


def hourly_cost_table() -> None:
    model = CostModel(CostModelParams(total_nodes=400, memory_bytes=1536 * MIB))
    print("Hourly cost of the paper's deployment (400 x 1.5 GB Lambdas, RS(10+2)):\n")
    print(f"{'object GETs/hour':>18} {'serving $/h':>12} {'warm-up $/h':>12} "
          f"{'backup $/h':>11} {'total $/h':>10}")
    for rate in (0, 1_000, 10_000, 50_000, 100_000, 200_000, 312_000, 400_000):
        serving = model.serving_cost_for_object_rate(rate, chunks_per_object=12)
        warmup = model.warmup_cost_per_hour()
        backup = model.backup_cost_per_hour()
        print(f"{rate:>18,} {serving:>12.4f} {warmup:>12.4f} {backup:>11.4f} "
              f"{serving + warmup + backup:>10.4f}")
    print(f"\nElastiCache cache.r5.24xlarge for comparison: "
          f"${model.elasticache_hourly_cost('cache.r5.24xlarge'):.3f}/hour, "
          "whether or not it serves a single request.")


def crossover_per_instance() -> None:
    model = CostModel(CostModelParams(total_nodes=400, memory_bytes=1536 * MIB))
    print("\nCrossover access rate (object GETs/hour) by ElastiCache instance:\n")
    for name in sorted(ELASTICACHE_INSTANCES):
        crossover = model.crossover_access_rate(name, chunks_per_object=12)
        print(f"  {name:<22} {crossover:>12,.0f} GETs/hour "
              f"({crossover / 3600:,.0f} GETs/second)")


def sensitivity() -> None:
    print("\nSensitivity of the crossover to tenant-controlled knobs:\n")
    baseline = CostModelParams(total_nodes=400, memory_bytes=1536 * MIB)
    scenarios = {
        "baseline: RS(10+2), T_bak=5min": (baseline, 12),
        "narrower code RS(4+2)": (baseline, 6),
        "no backup": (
            CostModelParams(total_nodes=400, memory_bytes=1536 * MIB, backup_enabled=False),
            12,
        ),
        "smaller functions (512 MB)": (
            CostModelParams(total_nodes=400, memory_bytes=512 * MIB), 12,
        ),
    }
    for label, (params, chunks) in scenarios.items():
        crossover = CostModel(params).crossover_access_rate(
            "cache.r5.24xlarge", chunks_per_object=chunks
        )
        print(f"  {label:<34} crossover at {crossover:>10,.0f} GETs/hour")
    print("\nReading: wider codes fan each GET into more billed invocations and pull "
          "the crossover down; trimming backups or memory pushes it up.")


def main() -> None:
    print("== InfiniCache cost explorer ==\n")
    hourly_cost_table()
    crossover_per_instance()
    sensitivity()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Cluster orchestration demo: autoscaling, tenants, membership, failures.

This walks the :mod:`repro.cluster` subsystem end to end:

1. start an :class:`~repro.cluster.InfiniCacheCluster` with a deliberately
   small Lambda pool and autoscaling bounds;
2. register two tenants — an unconstrained ``media`` tenant and a
   rate-limited ``api`` tenant — and show namespace isolation;
3. drive a rising flood of ``media`` PUTs and watch the autoscaler grow the
   pool under memory pressure, then let the load drain away and watch the
   pool shrink back;
4. add a third proxy at runtime: the rebalancer migrates the keys the
   consistent-hash ring re-assigns, without a restart;
5. reclaim some Lambda functions and let the failure detector repair the
   damaged stripes before any client notices.

Run:  python examples/cluster_autoscale.py
"""

from __future__ import annotations

from repro.cache import InfiniCacheConfig
from repro.cluster import AutoscalerConfig, InfiniCacheCluster, TenantQuota
from repro.exceptions import RateLimitedError
from repro.utils.units import MB, MIB, format_bytes


def main() -> None:
    config = InfiniCacheConfig(
        num_proxies=2,
        lambdas_per_proxy=8,          # start small on purpose
        lambda_memory_bytes=192 * MIB,
        data_shards=4,
        parity_shards=2,
        min_lambdas_per_proxy=8,      # floor keeps spare nodes for EC repair
        max_lambdas_per_proxy=40,     # autoscaler ceiling
    )
    cluster = InfiniCacheCluster(
        config,
        autoscaler_config=AutoscalerConfig(interval_s=15.0),
        failure_detector_interval_s=30.0,
    )
    cluster.start()

    print("== InfiniCache cluster demo ==")
    print(f"initial pools: {cluster.pool_sizes()}")

    # --- tenants and isolation ----------------------------------------------------
    media = cluster.register_tenant("media")
    api = cluster.register_tenant(
        "api", TenantQuota(max_requests_per_s=5.0, burst_requests=10)
    )
    media.put("shared-name", b"media bytes" * 1000)
    assert not api.exists("shared-name"), "namespaces must be isolated"
    print("tenant isolation: 'media' and 'api' cannot see each other's keys")

    throttled = 0
    for index in range(40):
        try:
            api.put_sized(f"burst-{index}", 1 * MB)
        except RateLimitedError:
            throttled += 1
    print(f"rate quota: {throttled}/40 of api's burst throttled\n")

    # --- load surge: the pool grows -----------------------------------------------
    print("PUT flood from 'media' (memory pressure rises)...")
    now = 1.0
    for index in range(150):
        cluster.run_until(now)
        media.put_sized(f"video-{index:04d}", 10 * MB)
        now += 1.0
    surge_pools = cluster.pool_sizes()
    print(f"pools after surge:  {surge_pools}")
    print(f"bytes cached: {format_bytes(cluster.deployment.pool_bytes_used())}")

    # --- load drains: the pool shrinks --------------------------------------------
    for index in range(150):
        media.invalidate(f"video-{index:04d}")
    cluster.run_until(now + 120.0)
    idle_pools = cluster.pool_sizes()
    print(f"pools after drain:  {idle_pools}")
    assert sum(surge_pools.values()) > config.num_proxies * config.lambdas_per_proxy, \
        "the surge must have grown the pool"
    assert sum(idle_pools.values()) < sum(surge_pools.values()), \
        "draining the load must shrink the pool"

    # --- live membership change ---------------------------------------------------
    print("\nAdding a third proxy at runtime...")
    working_set = [f"doc-{index:03d}" for index in range(30)]
    for key in working_set:
        media.put_sized(key, 2 * MB)
    before = {proxy.proxy_id: proxy.object_count() for proxy in cluster.deployment.proxies}
    new_proxy = cluster.add_proxy()
    migrated = cluster.metrics.counters().get("cluster.rebalance.migrated", 0.0)
    print(f"objects per proxy before join: {before}")
    print(f"{new_proxy.proxy_id} joined; {migrated:g} objects migrated to it")
    hits = sum(media.get(key).hit for key in working_set)
    print(f"working set after rebalance: {hits}/{len(working_set)} still hit")
    assert hits == len(working_set), "data must survive the membership change"

    # --- failure detection and repair ----------------------------------------------
    print(f"\nReclaiming {config.parity_shards} Lambda nodes out from under the cluster...")
    victim_proxy = cluster.deployment.proxies[0]
    for node in victim_proxy.nodes[: config.parity_shards]:
        for instance in (node.primary, node.backup_peer):
            if instance is not None and instance.is_alive:
                cluster.deployment.platform.reclaim_instance(instance)
    repaired, lost = cluster.failure_detector.sweep_once()
    print(f"failure detector: repaired {repaired} objects, lost {lost}")
    assert lost == 0, "losing only p nodes must be survivable"

    cluster.stop()
    print("\nCost breakdown:")
    for category, dollars in sorted(cluster.cost_breakdown().items()):
        print(f"  {category:>10}: ${dollars:.6f}")
    print("\nPer-tenant usage:")
    for tenant_id, row in cluster.tenant_report().items():
        print(f"  {tenant_id:>6}: puts={row['puts']:g} gets={row['gets']:g} "
              f"throttled={row['throttled']:g} cached={format_bytes(int(row['bytes_stored']))}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Docker-registry scenario: cache a registry's large blobs in InfiniCache.

This is the workload that motivates the paper: a container registry stores
image layers (many of them tens to hundreds of megabytes) in an object store,
and a look-aside in-memory cache absorbs the hot reads.  The example:

1. synthesises a Dallas-style registry trace (object sizes and locality
   matched to the published characteristics of the IBM trace);
2. replays three hours of it open-loop against an InfiniCache deployment —
   every record injected at its arrival timestamp on the event loop, with
   an S3-style object store behind it serving misses (RESET path);
3. replays the same trace against an ElastiCache-style cluster and directly
   against the object store, through the same open-loop arrival path;
4. prints the hit ratios, latency distributions, and what each option costs.

Run:  python examples/docker_registry_cache.py
"""

from __future__ import annotations

from repro.baselines.elasticache import ElastiCacheCluster
from repro.baselines.s3 import ObjectStore
from repro.cache import InfiniCacheConfig, InfiniCacheDeployment
from repro.faas.reclamation import ZipfBurstReclamationPolicy
from repro.utils.rng import SeededRNG
from repro.utils.units import GB, MB, MIB
from repro.workload.docker_registry import DockerRegistryTraceGenerator, RegistryTraceConfig
from repro.workload.replay import (
    ElastiCacheTarget,
    ObjectStoreTarget,
    OpenLoopBaselineDriver,
    OpenLoopDriver,
)


def build_trace():
    """A three-hour, scaled-down Dallas trace (large objects only)."""
    config = RegistryTraceConfig(
        name="dallas",
        duration_hours=3.0,
        catalogue_size=900,
        base_requests_per_hour=1_500.0,
        seed=42,
    )
    trace = DockerRegistryTraceGenerator(config).generate()
    return trace.large_objects_only(10 * MB)


def build_infinicache() -> InfiniCacheDeployment:
    config = InfiniCacheConfig(
        num_proxies=1,
        lambdas_per_proxy=48,
        lambda_memory_bytes=1536 * MIB,
        data_shards=10,
        parity_shards=2,
    )
    # A bursty reclamation regime, as observed in the paper's measurement study.
    policy = ZipfBurstReclamationPolicy(SeededRNG(7), burst_probability=0.12, max_burst=8)
    return InfiniCacheDeployment(config, reclamation_policy=policy)


def main() -> None:
    trace = build_trace()
    print("== Docker-registry caching scenario ==")
    print(f"trace: {trace.request_count()} GETs over {trace.duration_s() / 3600:.1f} h, "
          f"working set {trace.working_set_bytes() / GB:.1f} GB "
          f"({len(trace.unique_objects())} blobs > 10 MB)\n")

    # --- InfiniCache -------------------------------------------------------------
    infinicache_report = OpenLoopDriver(
        build_infinicache(), backing_store=ObjectStore()
    ).run(trace)
    # --- ElastiCache -------------------------------------------------------------
    elasticache_report = OpenLoopBaselineDriver(
        ElastiCacheTarget(ElastiCacheCluster("cache.r5.24xlarge"))
    ).run(trace)
    # --- plain object store -------------------------------------------------------
    s3_store = ObjectStore()
    s3_report = OpenLoopBaselineDriver(
        ObjectStoreTarget(s3_store), backing_store=s3_store
    ).run(trace)

    print(f"{'system':<14} {'hit ratio':>9} {'p50 (ms)':>10} {'p99 (s)':>9} {'cost ($)':>9}")
    for report in (infinicache_report, elasticache_report, s3_report):
        summary = report.latency_summary()
        print(f"{report.system:<14} {report.hit_ratio:>9.1%} "
              f"{summary['p50'] * 1000:>10.1f} {summary['p99']:>9.2f} "
              f"{report.total_cost:>9.2f}")

    print("\nInfiniCache fault-tolerance activity during the replay:")
    print(f"  RESETs (objects lost to reclamation): {infinicache_report.resets}")
    print(f"  degraded reads repaired via erasure coding: {infinicache_report.recoveries}")
    saving = elasticache_report.total_cost / max(infinicache_report.total_cost, 1e-9)
    print(f"\nTenant-side cost saving vs ElastiCache: {saving:.0f}x")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fault-tolerance walkthrough: erasure coding, warm-up, and delta-sync backup.

The paper's Section 4 is about keeping data alive on functions the provider
can take away at any moment.  This example makes each layer of the defence
visible:

1. an object coded RS(10+2) survives the loss of up to two chunk-holding
   functions, and a degraded read repairs the missing chunks;
2. losing more than ``p`` chunks *without* backup loses the object (a RESET);
3. with periodic delta-sync backup, even reclaiming every primary instance
   leaves the data reachable through the peer replicas;
4. the analytical model of Section 4.3 puts numbers on how likely those
   events are for the paper's full-scale deployment.

Run:  python examples/fault_tolerance_demo.py
"""

from __future__ import annotations

from repro.analysis import AvailabilityModel
from repro.cache import InfiniCacheConfig, InfiniCacheDeployment
from repro.utils.units import MB, MIB, MINUTE


def build(backup_enabled: bool) -> InfiniCacheDeployment:
    config = InfiniCacheConfig(
        num_proxies=1,
        lambdas_per_proxy=24,
        lambda_memory_bytes=1536 * MIB,
        data_shards=10,
        parity_shards=2,
        backup_enabled=backup_enabled,
        backup_interval_s=5 * MINUTE,
    )
    deployment = InfiniCacheDeployment(config)
    deployment.start()
    return deployment


def reclaim_nodes(deployment: InfiniCacheDeployment, node_ids: list[str]) -> None:
    """Reclaim the primary instance of each named cache node."""
    for node_id in node_ids:
        node = deployment.proxies[0].node(node_id)
        if node.primary is not None:
            deployment.platform.reclaim_instance(node.primary)


def demo_erasure_coding() -> None:
    print("-- 1. Erasure coding absorbs up to p chunk losses --")
    deployment = build(backup_enabled=False)
    client = deployment.new_client()
    payload = bytes(i % 256 for i in range(8 * MB))
    placement = client.put("demo/ec", payload).node_ids
    reclaim_nodes(deployment, placement[:2])          # lose exactly p = 2 chunks
    result = client.get("demo/ec")
    print(f"   lost 2 of 12 chunks -> hit={result.hit}, bytes intact="
          f"{result.value == payload}, repaired={result.recovery_performed}")
    deployment.stop()


def demo_object_loss_without_backup() -> None:
    print("\n-- 2. Losing more than p chunks without backup is a RESET --")
    deployment = build(backup_enabled=False)
    client = deployment.new_client()
    placement = client.put_sized("demo/loss", 20 * MB).node_ids
    reclaim_nodes(deployment, placement[:3])          # p + 1 chunks gone
    result = client.get("demo/loss")
    print(f"   lost 3 of 12 chunks -> hit={result.hit}, data_lost={result.data_lost} "
          "(the application must re-fetch from the backing store)")
    deployment.stop()


def demo_backup_failover() -> None:
    print("\n-- 3. Delta-sync backup survives losing every primary instance --")
    deployment = build(backup_enabled=True)
    client = deployment.new_client()
    payload = bytes((7 * i) % 256 for i in range(6 * MB))
    placement = client.put("demo/backup", payload).node_ids
    deployment.run_until(6 * MINUTE)                  # let one backup round run
    reclaim_nodes(deployment, placement)              # take down all 12 primaries
    result = client.get("demo/backup")
    print(f"   reclaimed all 12 primaries after a backup round -> hit={result.hit}, "
          f"bytes intact={result.value == payload}")
    breakdown = deployment.cost_breakdown()
    print(f"   backup cost so far: ${breakdown.get('backup', 0.0):.6f}")
    deployment.stop()


def demo_analytical_model() -> None:
    print("\n-- 4. Section 4.3 availability model (400 nodes, RS(10+2)) --")
    model = AvailabilityModel(total_nodes=400, data_shards=10, parity_shards=2)
    print(f"   p_m/p_(m+1) at r=12 reclaims: {model.approximation_ratio(12):.1f} "
          "(paper: 18.8)")
    for label, distribution in {
        "Poisson reclaim fit": AvailabilityModel.poisson_reclaim_distribution(0.6, 40),
        "Zipf-burst reclaim fit": AvailabilityModel.zipf_reclaim_distribution(2.2, 40),
    }.items():
        per_minute = model.availability(distribution)
        per_hour = model.availability_over(distribution, intervals=60)
        print(f"   {label}: availability {per_minute:.4%} per minute, "
              f"{per_hour:.2%} per hour")


def main() -> None:
    print("== InfiniCache fault-tolerance demo ==\n")
    demo_erasure_coding()
    demo_object_loss_without_backup()
    demo_backup_failover()
    demo_analytical_model()


if __name__ == "__main__":
    main()

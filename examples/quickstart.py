#!/usr/bin/env python3
"""Quickstart: build an InfiniCache deployment, PUT and GET real objects.

This walks through the library's core API in a couple of minutes of simulated
time:

1. configure and start a small deployment (one proxy, 20 Lambda cache nodes,
   RS(10+2) erasure coding);
2. PUT a few multi-megabyte objects through the client library — the bytes
   are Reed-Solomon encoded and the chunks spread over distinct Lambda nodes;
3. GET them back (first-d reconstruction) and verify the bytes round-trip;
4. simulate the provider reclaiming some of the functions that hold chunks
   and show that the object still decodes;
5. print what the deployment cost, split into serving / warm-up / backup.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.cache import InfiniCacheConfig, InfiniCacheDeployment
from repro.utils.units import MB, MIB, MINUTE, format_bytes, format_duration


def main() -> None:
    config = InfiniCacheConfig(
        num_proxies=1,
        lambdas_per_proxy=20,
        lambda_memory_bytes=1536 * MIB,   # 1.5 GB functions: one per VM host
        data_shards=10,
        parity_shards=2,                  # tolerate up to 2 lost chunks
        warmup_interval_s=1 * MINUTE,
        backup_interval_s=5 * MINUTE,
    )
    deployment = InfiniCacheDeployment(config)
    deployment.start()
    client = deployment.new_client()

    print("== InfiniCache quickstart ==")
    print(f"pool: {config.total_lambda_nodes} Lambda nodes, "
          f"{format_bytes(deployment.pool_capacity_bytes())} usable cache capacity")
    print(f"erasure code: RS({config.data_shards}+{config.parity_shards})\n")

    # --- PUT a few objects -----------------------------------------------------
    objects = {
        f"images/layer-{index}": bytes((index * 31 + i) % 256 for i in range(4 * MB))
        for index in range(3)
    }
    for key, payload in objects.items():
        result = client.put(key, payload)
        print(f"PUT {key}: {format_bytes(len(payload))} -> "
              f"{len(result.node_ids)} chunks on {result.hosts_touched} VM hosts, "
              f"{format_duration(result.latency_s)}")

    # --- GET them back ----------------------------------------------------------
    print()
    for key, payload in objects.items():
        result = client.get(key)
        assert result.hit and result.value == payload, "round-trip must be exact"
        print(f"GET {key}: hit in {format_duration(result.latency_s)} "
              f"(decoded={result.decoded})")

    # --- survive function reclamation -------------------------------------------
    print("\nReclaiming 2 of the Lambda nodes that hold 'images/layer-0' ...")
    victim_key = "images/layer-0"
    placement = client.put(victim_key, objects[victim_key]).node_ids
    for node_id in placement[: config.parity_shards]:
        node = deployment.proxies[0].node(node_id)
        deployment.platform.reclaim_instance(node.primary)
    result = client.get(victim_key)
    assert result.hit and result.value == objects[victim_key]
    print(f"GET {victim_key}: still a hit ({result.chunks_lost} chunks lost, "
          f"reconstructed from the surviving {config.data_shards}; "
          f"repair re-inserted the missing chunks: {result.recovery_performed})")

    # --- run some simulated time and look at the bill ----------------------------
    deployment.run_until(30 * MINUTE)
    deployment.stop()
    print("\nCost after 30 simulated minutes:")
    for category, dollars in deployment.cost_breakdown().items():
        print(f"  {category:>8}: ${dollars:.6f}")
    print("\n(An always-on cache.r5.24xlarge ElastiCache instance would have "
          "cost $10.37 for the same hour.)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Hybrid tiering: small objects on a conventional IMOC, large ones on InfiniCache.

The paper's introduction describes the tension a registry-style workload puts
on a single cache: image manifests are a few kilobytes and need
sub-millisecond latency, image layers are tens to hundreds of megabytes and
would evict thousands of manifests each.  Section 6 concludes that
small-object-intensive traffic should stay on a conventional cache while the
large objects move to the pay-per-use serverless tier.

This example builds exactly that deployment with the library's
:class:`~repro.cache.admission.HybridCacheRouter` extension:

* manifests (≤ 10 MB) are served by an ElastiCache-style node;
* layers (> 10 MB) are erasure-coded into an InfiniCache pool;
* one GET/PUT front-end routes by size and reports per-tier statistics.

Run:  python examples/hybrid_tiering.py
"""

from __future__ import annotations

from repro.baselines.elasticache import ElastiCacheCluster
from repro.cache import HybridCacheRouter, InfiniCacheConfig, InfiniCacheDeployment
from repro.utils.rng import SeededRNG
from repro.utils.units import KB, MB, MIB, format_bytes, format_duration


def main() -> None:
    deployment = InfiniCacheDeployment(
        InfiniCacheConfig(
            lambdas_per_proxy=32,
            lambda_memory_bytes=1536 * MIB,
            data_shards=10,
            parity_shards=2,
        )
    )
    deployment.start()
    router = HybridCacheRouter(
        infinicache_client=deployment.new_client("hybrid-frontend"),
        small_object_cache=ElastiCacheCluster("cache.r5.xlarge"),
    )

    print("== Hybrid small/large-object tiering ==\n")

    # --- a registry-like catalogue -------------------------------------------------
    rng = SeededRNG(99)
    manifests = {f"manifests/{i:04d}": rng.integers(2 * KB, 200 * KB) for i in range(200)}
    layers = {f"layers/{i:03d}": rng.integers(15 * MB, 400 * MB) for i in range(25)}

    for key, size in {**manifests, **layers}.items():
        router.put_sized(key, size)

    description = router.describe()
    print(f"catalogue: {len(manifests)} manifests + {len(layers)} layers")
    print(f"objects routed to the large tier: "
          f"{description['large_tier_object_share']:.1%} of objects, "
          f"{description['large_tier_byte_share']:.1%} of bytes\n")

    # --- serve a read mix -----------------------------------------------------------
    manifest_latencies, layer_latencies = [], []
    for i in range(600):
        deployment.run_until(deployment.simulator.now + 1.0)
        if i % 10 == 0:  # one layer read per ten manifest reads
            key = f"layers/{rng.integers(0, len(layers)):03d}"
            result = router.get(key)
            layer_latencies.append(result.latency_s)
        else:
            key = f"manifests/{rng.integers(0, len(manifests)):04d}"
            result = router.get(key, size_hint=manifests[key])
            manifest_latencies.append(result.latency_s)

    def median(values):
        return sorted(values)[len(values) // 2]

    print("read mix results (540 manifest reads, 60 layer reads):")
    print(f"  manifest (small tier) median latency: "
          f"{format_duration(median(manifest_latencies))}")
    print(f"  layer (InfiniCache tier) median latency: "
          f"{format_duration(median(layer_latencies))}")
    print(f"  overall hit ratio: {router.stats.overall_hit_ratio:.1%}")

    deployment.run_until(deployment.simulator.now + 600)
    deployment.stop()
    breakdown = deployment.cost_breakdown()
    layer_bytes = sum(layers.values())
    print(f"\nInfiniCache tier held {format_bytes(layer_bytes)} of layers and cost "
          f"${breakdown.get('total', 0.0):.4f} for the whole run; the small tier "
          "keeps its sub-millisecond latency because no layer ever evicts a manifest.")


if __name__ == "__main__":
    main()

"""Deterministic fault injection for the simulated InfiniCache deployment.

``repro.faults`` is the chaos side of the reproduction: declarative
:mod:`fault specs <repro.faults.spec>` sequenced by a
:class:`~repro.faults.spec.FaultSchedule`, injected as clock events by the
:class:`~repro.faults.engine.ChaosEngine`, and accounted for by the
:class:`~repro.faults.report.ResilienceReport`.  See ``docs/robustness.md``
for the full model and the request-path hardening it exercises.
"""

from repro.faults.engine import ChaosEngine
from repro.faults.report import (
    FaultWindow,
    ResilienceReport,
    WindowStats,
    build_resilience_report,
)
from repro.faults.scenario import (
    ChaosRunResult,
    demo_config,
    demo_resilience,
    demo_schedule,
    run_chaos_scenario,
)
from repro.faults.spec import (
    BLACKHOLE_FACTOR,
    FaultSchedule,
    FaultSpec,
    InvocationFaults,
    LinkBlackhole,
    LinkDegradation,
    ProxyCrash,
    ReclamationStorm,
    StragglerInflation,
)

__all__ = [
    "BLACKHOLE_FACTOR",
    "ChaosEngine",
    "ChaosRunResult",
    "FaultSchedule",
    "FaultSpec",
    "FaultWindow",
    "InvocationFaults",
    "LinkBlackhole",
    "LinkDegradation",
    "ProxyCrash",
    "ReclamationStorm",
    "ResilienceReport",
    "StragglerInflation",
    "WindowStats",
    "build_resilience_report",
    "demo_config",
    "demo_resilience",
    "demo_schedule",
    "run_chaos_scenario",
]

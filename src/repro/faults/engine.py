"""The deterministic chaos engine: fault specs become clock events.

The engine composes with the discrete-event substrate instead of sitting
beside it: :meth:`ChaosEngine.install` schedules one activation event per
fault (plus a reversion event for window faults) on the deployment's event
loop, so faults interleave with requests, warm-ups, backups, and
reclamation sweeps in exact virtual-time order.

Determinism contract:

* every random choice (which instances a storm hits, which hosts a link
  fault degrades, which invocations fail) draws from a per-spec child of
  the engine's seeded RNG — ``rng.child("fault", index)`` — so adding or
  reordering faults never perturbs another fault's draws;
* with an *empty* schedule the engine schedules nothing and draws nothing:
  installing it on a deployment leaves the run event-for-event identical
  to one without a chaos engine at all.

Every injected fault is stamped as a ``fault.<kind>`` span through the
request-path tracer (when one is attached) and recorded as a
:class:`~repro.faults.report.FaultWindow` for the resilience report.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cache.config import StragglerModel
from repro.cache.deployment import InfiniCacheDeployment
from repro.exceptions import SimulationError
from repro.faults.report import FaultWindow
from repro.faults.spec import (
    BLACKHOLE_FACTOR,
    FaultSchedule,
    InvocationFaults,
    LinkBlackhole,
    LinkDegradation,
    ProxyCrash,
    ReclamationStorm,
    StragglerInflation,
)
from repro.utils.rng import SeededRNG


class ChaosEngine:
    """Injects a :class:`FaultSchedule` into a running deployment."""

    def __init__(
        self,
        deployment: InfiniCacheDeployment,
        schedule: FaultSchedule,
        rng: Optional[SeededRNG] = None,
    ):
        self.deployment = deployment
        self.schedule = schedule
        #: Derived off the deployment seed by default, so one experiment seed
        #: determines the workload *and* the chaos.
        self.rng = rng or deployment.rng.child("chaos")
        #: Every fault's active interval, appended as faults activate/revert.
        self.windows: list[FaultWindow] = []
        self._installed = False
        #: Open windows by spec index (activated, not yet reverted).
        self._active: dict[int, FaultWindow] = {}

    # ------------------------------------------------------------------ install
    def install(self) -> None:
        """Schedule every fault's activation (and reversion) event."""
        if self._installed:
            raise SimulationError("chaos engine is already installed")
        self._installed = True
        loop = self.deployment.simulator
        for index, spec in enumerate(self.schedule):
            if isinstance(spec, ReclamationStorm):
                loop.schedule_at(
                    spec.at_s,
                    lambda s=spec, i=index: self._storm(s, i),
                    label=f"chaos.storm.{index}",
                )
            elif isinstance(spec, (LinkDegradation, LinkBlackhole)):
                loop.schedule_at(
                    spec.at_s,
                    lambda s=spec, i=index: self._degrade_links(s, i),
                    label=f"chaos.link.{index}",
                )
            elif isinstance(spec, InvocationFaults):
                loop.schedule_at(
                    spec.at_s,
                    lambda s=spec, i=index: self._arm_invocation_faults(s, i),
                    label=f"chaos.invoke.{index}",
                )
            elif isinstance(spec, StragglerInflation):
                loop.schedule_at(
                    spec.at_s,
                    lambda s=spec, i=index: self._inflate_stragglers(s, i),
                    label=f"chaos.straggler.{index}",
                )
            elif isinstance(spec, ProxyCrash):
                loop.schedule_at(
                    spec.at_s,
                    lambda s=spec, i=index: self._crash_proxy(s, i),
                    label=f"chaos.proxy.{index}",
                )

    # ------------------------------------------------------------------ bookkeeping
    def _spec_rng(self, index: int) -> SeededRNG:
        return self.rng.child("fault", index)

    def _record(
        self, kind: str, index: int, started_at: float, ended_at: float,
        **details: object,
    ) -> FaultWindow:
        window = FaultWindow(
            kind=kind, index=index, started_at=started_at, ended_at=ended_at,
            details=dict(details),
        )
        self.windows.append(window)
        tracer = self.deployment.request_env.tracer
        tracer.record(f"fault.{kind}", started_at, ended_at, **details)
        self.deployment.metrics.counter("chaos.faults_injected").increment()
        return window

    # ------------------------------------------------------------------ storms
    def _storm(self, spec: ReclamationStorm, index: int) -> None:
        platform = self.deployment.platform
        now = self.deployment.simulator.now
        rng = self._spec_rng(index)
        alive = platform.alive_instances()
        by_id = {instance.instance_id: instance for instance in alive}
        victims: list[str] = []
        if spec.correlated:
            residents = platform.host_manager.residents_by_host()
            hosts = list(residents)
            count = max(1, math.ceil(spec.fraction * len(hosts))) if hosts else 0
            if count:
                picked = rng.sample_without_replacement(len(hosts), count)
                for host_index in sorted(picked):
                    victims.extend(residents[hosts[host_index]])
        else:
            ids = sorted(by_id)
            count = max(1, math.ceil(spec.fraction * len(ids))) if ids else 0
            if count:
                picked = rng.sample_without_replacement(len(ids), count)
                victims = [ids[i] for i in sorted(picked)]
        reclaimed = 0
        for instance_id in victims:
            instance = by_id.get(instance_id)
            if instance is not None and instance.is_alive:
                platform.reclaim_instance(instance)
                reclaimed += 1
        self._record(
            "storm", index, now, now,
            reclaimed=reclaimed, correlated=spec.correlated,
        )

    # ------------------------------------------------------------------ link faults
    def _degrade_links(self, spec: LinkDegradation | LinkBlackhole, index: int) -> None:
        deployment = self.deployment
        now = deployment.simulator.now
        rng = self._spec_rng(index)
        factor = (
            BLACKHOLE_FACTOR if isinstance(spec, LinkBlackhole) else spec.factor
        )
        kind = "blackhole" if isinstance(spec, LinkBlackhole) else "degradation"
        fabric = deployment.transfer_model.fabric
        host_ids = sorted(deployment.platform.host_manager.hosts)
        count = max(1, math.ceil(spec.host_fraction * len(host_ids))) if host_ids else 0
        picked: list[str] = []
        if count:
            indices = rng.sample_without_replacement(len(host_ids), count)
            picked = [host_ids[i] for i in sorted(indices)]
        capacity = deployment.platform.limits.host_nic_bandwidth
        for host_id in picked:
            nic = fabric.host(host_id, capacity)
            nic.degradation_factor = factor
            deployment.flows.reassess_host(host_id)
        window = self._record(
            kind, index, now, now + spec.duration_s,
            hosts=len(picked), factor=factor,
        )
        self._active[index] = window
        deployment.simulator.schedule_at(
            now + spec.duration_s,
            lambda: self._restore_links(picked, index),
            label=f"chaos.link_restore.{index}",
        )

    def _restore_links(self, host_ids: list[str], index: int) -> None:
        deployment = self.deployment
        capacity = deployment.platform.limits.host_nic_bandwidth
        fabric = deployment.transfer_model.fabric
        for host_id in host_ids:
            nic = fabric.host(host_id, capacity)
            nic.degradation_factor = 1.0
            deployment.flows.reassess_host(host_id)
        self._active.pop(index, None)

    # ------------------------------------------------------------------ invocation faults
    def _arm_invocation_faults(self, spec: InvocationFaults, index: int) -> None:
        platform = self.deployment.platform
        now = self.deployment.simulator.now
        platform.set_invocation_faults(
            failure_probability=spec.failure_probability,
            extra_overhead_s=spec.extra_overhead_s,
            rng=self._spec_rng(index) if spec.failure_probability > 0 else None,
        )
        window = self._record(
            "invocation", index, now, now + spec.duration_s,
            failure_probability=spec.failure_probability,
            extra_overhead_s=spec.extra_overhead_s,
        )
        self._active[index] = window
        self.deployment.simulator.schedule_at(
            now + spec.duration_s,
            lambda: self._disarm_invocation_faults(index),
            label=f"chaos.invoke_clear.{index}",
        )

    def _disarm_invocation_faults(self, index: int) -> None:
        self.deployment.platform.clear_invocation_faults()
        self._active.pop(index, None)

    # ------------------------------------------------------------------ stragglers
    def _inflate_stragglers(self, spec: StragglerInflation, index: int) -> None:
        now = self.deployment.simulator.now
        override = StragglerModel(
            probability=spec.probability,
            min_factor=spec.min_factor,
            max_factor=spec.max_factor,
        )
        affected = list(self.deployment.proxies)
        for proxy in affected:
            proxy.straggler_override = override
        window = self._record(
            "straggler", index, now, now + spec.duration_s,
            probability=spec.probability, proxies=len(affected),
        )
        self._active[index] = window
        self.deployment.simulator.schedule_at(
            now + spec.duration_s,
            lambda: self._deflate_stragglers(affected, index),
            label=f"chaos.straggler_clear.{index}",
        )

    def _deflate_stragglers(self, proxies: list, index: int) -> None:
        for proxy in proxies:
            proxy.straggler_override = None
        self._active.pop(index, None)

    # ------------------------------------------------------------------ proxy crash
    def _crash_proxy(self, spec: ProxyCrash, index: int) -> None:
        deployment = self.deployment
        now = deployment.simulator.now
        if len(deployment.proxies) <= 1:
            # Refusing to kill the last proxy: record a zero-impact window so
            # the schedule's accounting still lines up.
            self._record("proxy_crash", index, now, now, skipped=True)
            return
        position = min(spec.proxy_index, len(deployment.proxies) - 1)
        proxy_id = deployment.proxies[position].proxy_id
        deployment.remove_proxy(proxy_id)
        window = self._record(
            "proxy_crash", index, now, now + spec.down_s, proxy_id=proxy_id,
        )
        self._active[index] = window
        deployment.simulator.schedule_at(
            now + spec.down_s,
            lambda: self._recover_proxy(index),
            label=f"chaos.proxy_recover.{index}",
        )

    def _recover_proxy(self, index: int) -> None:
        self.deployment.add_proxy()
        self._active.pop(index, None)

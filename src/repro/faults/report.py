"""The resilience report: what a chaos run did to the request path.

Built from two inputs after a replay: the
:class:`~repro.workload.replay.ConcurrentReplayReport` (per-request samples,
degraded-hit accounting, harvested resilience counters) and the list of
:class:`FaultWindow` records the chaos engine stamped while injecting.

Per fault window the report answers the questions an operator would ask of a
real incident: what fraction of in-flight requests the cache still served
(availability), how many were degraded to the backing store, and how long
after the fault cleared the first fully-healthy request completed (recovery
time).  Across the whole run it compares latency percentiles inside and
outside fault windows — the SLO deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.stats import summarize
from repro.workload.replay import ConcurrentReplayReport, RequestSample


@dataclass(frozen=True)
class FaultWindow:
    """One injected fault's active interval on the virtual clock.

    Point faults (reclamation storms) have ``started_at == ended_at``; their
    blast radius is still measurable through the requests in flight at that
    instant and the recovery time after it.
    """

    kind: str
    #: Index of the spec in its :class:`~repro.faults.spec.FaultSchedule`.
    index: int
    started_at: float
    ended_at: float
    details: dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.ended_at - self.started_at

    def covers(self, sample: RequestSample) -> bool:
        """Whether the request was in flight at any instant of the window."""
        return (
            sample.started_at <= self.ended_at
            and sample.finished_at >= self.started_at
        )


@dataclass
class WindowStats:
    """Availability accounting for one fault window."""

    window: FaultWindow
    requests: int = 0
    healthy_hits: int = 0
    degraded_hits: int = 0
    resets: int = 0
    misses: int = 0
    #: Seconds after the window cleared until the first fully-healthy request
    #: (cache hit, neither degraded nor RESET) completed; ``None`` when the
    #: run ended before one did.
    recovery_s: float | None = None

    @property
    def availability(self) -> float:
        """Fraction of in-window requests served from the cache itself."""
        return self.healthy_hits / self.requests if self.requests else 1.0

    @property
    def served_ratio(self) -> float:
        """Fraction of in-window requests answered at all (cache or fallback)."""
        if not self.requests:
            return 1.0
        return (self.healthy_hits + self.degraded_hits + self.resets + self.misses) / self.requests


@dataclass
class ResilienceReport:
    """Fault-window availability, degradation counts, and SLO deltas."""

    windows: list[WindowStats] = field(default_factory=list)
    requests: int = 0
    degraded_hits: int = 0
    resets: int = 0
    #: Harvested deployment counters (retries, hedges, breaker trips, ...).
    counters: dict[str, float] = field(default_factory=dict)
    #: Latency percentiles of requests overlapping any fault window.
    faulted_latency: dict[str, float] = field(default_factory=dict)
    #: Latency percentiles of requests entirely outside fault windows.
    clean_latency: dict[str, float] = field(default_factory=dict)

    def slo_delta(self, percentile: str = "p99") -> float:
        """How much a percentile degraded inside fault windows (seconds).

        Zero when either population is empty — a fault-free run has no
        faulted samples and therefore no delta.
        """
        if not self.faulted_latency or not self.clean_latency:
            return 0.0
        return self.faulted_latency[percentile] - self.clean_latency[percentile]

    def worst_availability(self) -> float:
        """The lowest per-window availability (1.0 with no windows)."""
        return min((stats.availability for stats in self.windows), default=1.0)

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form for experiment artifacts and the CLI."""
        return {
            "requests": self.requests,
            "degraded_hits": self.degraded_hits,
            "resets": self.resets,
            "counters": dict(self.counters),
            "faulted_latency": dict(self.faulted_latency),
            "clean_latency": dict(self.clean_latency),
            "windows": [
                {
                    "kind": stats.window.kind,
                    "index": stats.window.index,
                    "started_at": stats.window.started_at,
                    "ended_at": stats.window.ended_at,
                    "requests": stats.requests,
                    "availability": stats.availability,
                    "degraded_hits": stats.degraded_hits,
                    "resets": stats.resets,
                    "recovery_s": stats.recovery_s,
                    "details": dict(stats.window.details),
                }
                for stats in self.windows
            ],
        }

    def format_lines(self) -> list[str]:
        """Human-readable summary lines (the ``repro chaos`` output)."""
        lines = [
            f"requests={self.requests} degraded_hits={self.degraded_hits} "
            f"resets={self.resets}",
        ]
        for name in sorted(self.counters):
            value = self.counters[name]
            if value:
                lines.append(f"  counter {name} = {value:g}")
        for stats in self.windows:
            window = stats.window
            recovery = (
                f"{stats.recovery_s:.3f}s" if stats.recovery_s is not None else "n/a"
            )
            lines.append(
                f"  fault {window.kind}[{window.index}] "
                f"@{window.started_at:.1f}s..{window.ended_at:.1f}s: "
                f"availability={stats.availability:.3f} "
                f"({stats.healthy_hits}/{stats.requests} healthy, "
                f"{stats.degraded_hits} degraded, {stats.resets} resets), "
                f"recovery={recovery}"
            )
        p99 = self.slo_delta("p99")
        p50 = self.slo_delta("p50")
        lines.append(
            f"  SLO delta (faulted - clean): p50 {p50 * 1000:+.1f} ms, "
            f"p99 {p99 * 1000:+.1f} ms"
        )
        return lines


def build_resilience_report(
    replay: ConcurrentReplayReport, windows: list[FaultWindow]
) -> ResilienceReport:
    """Fold a replay's samples and the engine's fault windows into a report."""
    report = ResilienceReport(
        requests=replay.requests,
        degraded_hits=replay.degraded_hits,
        resets=replay.resets,
        counters=dict(replay.resilience),
    )
    faulted: list[float] = []
    clean: list[float] = []
    ordered = sorted(replay.samples, key=lambda s: s.finished_at)
    for window in windows:
        stats = WindowStats(window=window)
        for sample in ordered:
            if window.covers(sample):
                stats.requests += 1
                if sample.degraded:
                    stats.degraded_hits += 1
                elif sample.hit:
                    stats.healthy_hits += 1
                elif sample.reset:
                    stats.resets += 1
                else:
                    stats.misses += 1
        for sample in ordered:
            if sample.started_at < window.ended_at:
                continue
            if sample.hit and not sample.degraded and not sample.reset:
                stats.recovery_s = sample.finished_at - window.ended_at
                break
        report.windows.append(stats)
    for sample in replay.samples:
        if any(window.covers(sample) for window in windows):
            faulted.append(sample.latency_s)
        else:
            clean.append(sample.latency_s)
    if faulted:
        report.faulted_latency = summarize(faulted)
    if clean:
        report.clean_latency = summarize(clean)
    return report

"""Canonical chaos scenarios shared by the CLI, tests, and experiments.

One place defines the demo storm — a hardened deployment, a closed-loop
workload, and a :class:`~repro.faults.spec.FaultSchedule` walking through
every fault kind — so ``repro chaos``, the chaos-availability experiment,
and the regression tests all replay the *same* scenario and can compare
fingerprints across invocations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.s3 import ObjectStore
from repro.cache.config import (
    CircuitBreakerPolicy,
    InfiniCacheConfig,
    ResilienceConfig,
    RetryPolicy,
)
from repro.cache.deployment import InfiniCacheDeployment
from repro.faults.engine import ChaosEngine
from repro.faults.report import ResilienceReport, build_resilience_report
from repro.faults.spec import (
    FaultSchedule,
    InvocationFaults,
    LinkBlackhole,
    ProxyCrash,
    ReclamationStorm,
    StragglerInflation,
)
from repro.utils.units import MIB
from repro.workload.replay import ClientOp, ClosedLoopDriver, ConcurrentReplayReport


def demo_resilience() -> ResilienceConfig:
    """The hardening profile chaos scenarios run with: everything on."""
    return ResilienceConfig(
        retry=RetryPolicy(max_attempts=3),
        chunk_timeout_s=1.0,
        circuit_breaker=CircuitBreakerPolicy(failure_threshold=3, reset_timeout_s=15.0),
        degraded_fallback=True,
    )


def demo_config(seed: int = 2020, hardened: bool = True) -> InfiniCacheConfig:
    """A small two-proxy deployment sized for a fast, fault-rich replay."""
    return InfiniCacheConfig(
        num_proxies=2,
        lambdas_per_proxy=16,
        lambda_memory_bytes=1536 * MIB,
        data_shards=4,
        parity_shards=2,
        warmup_interval_s=60.0,
        backup_interval_s=60.0,
        resilience=demo_resilience() if hardened else None,
        seed=seed,
    )


def demo_schedule() -> FaultSchedule:
    """The demo storm: one window of every fault kind across a ~200 s run."""
    return FaultSchedule((
        ReclamationStorm(at_s=30.0, fraction=0.5, correlated=True),
        LinkBlackhole(at_s=60.0, duration_s=20.0, host_fraction=0.3),
        InvocationFaults(at_s=90.0, duration_s=20.0, failure_probability=0.3),
        StragglerInflation(at_s=120.0, duration_s=20.0, probability=0.6,
                           min_factor=4.0, max_factor=10.0),
        ProxyCrash(at_s=150.0, down_s=20.0, proxy_index=0),
        ReclamationStorm(at_s=180.0, fraction=0.3, correlated=False),
    ))


def demo_plans(
    clients: int = 6, keys: int = 12, rounds: int = 70,
    object_bytes: int = 2_000_000, think_s: float = 3.0,
) -> list[list[ClientOp]]:
    """Closed-loop plans: each client cycles over a shared key set with
    think time between requests, spanning the full fault schedule."""
    plans: list[list[ClientOp]] = []
    for client in range(clients):
        ops: list[ClientOp] = []
        for round_index in range(rounds):
            key = f"obj-{(client + round_index) % keys:03d}"
            ops.append(ClientOp("GET", key=key, size=object_bytes))
            ops.append(ClientOp("SLEEP", delay_s=think_s))
        plans.append(ops)
    return plans


@dataclass
class ChaosRunResult:
    """Everything one chaos-scenario replay produced."""

    replay: ConcurrentReplayReport
    resilience: ResilienceReport
    fingerprint: str


def run_chaos_scenario(
    seed: int = 2020,
    schedule: FaultSchedule | None = None,
    config: InfiniCacheConfig | None = None,
    clients: int = 6,
    rounds: int = 70,
) -> ChaosRunResult:
    """Replay the demo workload under a fault schedule and report resilience.

    Fully deterministic in ``(seed, schedule)``: running it twice yields the
    same replay fingerprint byte for byte, which is what ``repro chaos``
    asserts.  Passing an empty schedule gives the fault-free control run for
    availability comparisons.
    """
    config = config or demo_config(seed)
    schedule = schedule if schedule is not None else demo_schedule()
    deployment = InfiniCacheDeployment(config)
    engine = ChaosEngine(deployment, schedule)
    engine.install()
    driver = ClosedLoopDriver(deployment, backing_store=ObjectStore(), warm_pool=True)
    replay = driver.run(demo_plans(clients=clients, rounds=rounds))
    resilience = build_resilience_report(replay, engine.windows)
    return ChaosRunResult(
        replay=replay,
        resilience=resilience,
        fingerprint=replay.fingerprint(),
    )

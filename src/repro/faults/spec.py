"""Declarative fault specifications and the schedule that sequences them.

A :class:`FaultSchedule` is a plain, validated list of fault specs — *what*
goes wrong and *when*, with no behaviour of its own.  The
:class:`~repro.faults.engine.ChaosEngine` turns each spec into clock events
on the deployment's event loop: one activation event at ``at_s`` and, for
window faults, one reversion event at ``at_s + duration_s``.

Every spec is frozen and fully determined by its fields plus the engine's
seeded RNG, so the same ``(seed, schedule)`` pair always injects the same
faults at the same virtual instants — the property the ``repro chaos``
command asserts by replaying a scenario twice and diffing fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 < value <= 1.0:
        raise ConfigurationError(f"{name} must be in (0, 1], got {value}")


@dataclass(frozen=True)
class ReclamationStorm:
    """A burst of correlated reclamations bypassing the periodic sweep.

    At ``at_s`` the engine forcibly reclaims ``fraction`` of the platform's
    alive function instances in one instant — the provider purging capacity,
    which no reclamation-policy sweep models.  With ``correlated=True`` the
    storm picks whole VM *hosts* and reclaims every instance on them (an AZ
    or rack event), which is strictly harsher on erasure stripes whose
    chunks shared a host.
    """

    at_s: float
    fraction: float = 0.1
    correlated: bool = False

    def __post_init__(self):
        if self.at_s < 0:
            raise ConfigurationError("fault time must be non-negative")
        _check_fraction("storm fraction", self.fraction)


@dataclass(frozen=True)
class LinkDegradation:
    """Bandwidth degradation of a fraction of VM-host uplinks for a window.

    Each selected host's NIC capacity is multiplied by ``factor`` from
    ``at_s`` to ``at_s + duration_s``; in-flight flows are re-arbitrated at
    both edges of the window.
    """

    at_s: float
    duration_s: float
    host_fraction: float = 0.25
    factor: float = 0.1

    def __post_init__(self):
        if self.at_s < 0:
            raise ConfigurationError("fault time must be non-negative")
        if self.duration_s <= 0:
            raise ConfigurationError("fault window duration must be positive")
        _check_fraction("host fraction", self.host_fraction)
        if not 0.0 < self.factor < 1.0:
            raise ConfigurationError(
                f"degradation factor must be in (0, 1), got {self.factor}"
            )


#: Residual bandwidth factor of a blackholed link.  Never zero: flow finish
#: times divide by the rate, so a true zero would schedule events at
#: infinity; at one millionth of capacity any realistic chunk transfer
#: outlives its chunk deadline, which is what the hedging path needs.
BLACKHOLE_FACTOR = 1e-6


@dataclass(frozen=True)
class LinkBlackhole:
    """A window during which a fraction of host uplinks deliver ~nothing.

    Modelled as a :data:`BLACKHOLE_FACTOR` bandwidth multiplier rather than a
    disconnect, so in-flight flows stall (and trip chunk deadlines) instead
    of erroring out of the arbiter.
    """

    at_s: float
    duration_s: float
    host_fraction: float = 0.1

    def __post_init__(self):
        if self.at_s < 0:
            raise ConfigurationError("fault time must be non-negative")
        if self.duration_s <= 0:
            raise ConfigurationError("fault window duration must be positive")
        _check_fraction("host fraction", self.host_fraction)


@dataclass(frozen=True)
class InvocationFaults:
    """A window of Lambda invocation failures and/or inflated overheads.

    While active, every platform invocation independently fails with
    ``failure_probability`` (raising the retryable
    :class:`~repro.exceptions.InvocationFaultError`) and successful
    invocations pay ``extra_overhead_s`` on top of their cold/warm overhead.
    """

    at_s: float
    duration_s: float
    failure_probability: float = 0.2
    extra_overhead_s: float = 0.0

    def __post_init__(self):
        if self.at_s < 0:
            raise ConfigurationError("fault time must be non-negative")
        if self.duration_s <= 0:
            raise ConfigurationError("fault window duration must be positive")
        if not 0.0 <= self.failure_probability <= 1.0:
            raise ConfigurationError("failure probability must be in [0, 1]")
        if self.extra_overhead_s < 0:
            raise ConfigurationError("extra overhead must be non-negative")
        if self.failure_probability == 0.0 and self.extra_overhead_s == 0.0:
            raise ConfigurationError(
                "an invocation-fault window needs a failure probability or "
                "an extra overhead"
            )


@dataclass(frozen=True)
class StragglerInflation:
    """A window during which chunk transfers straggle far more often.

    Overrides every proxy's straggler model (probability and slowdown range)
    between ``at_s`` and ``at_s + duration_s`` — transient grey failure, as
    opposed to the steady-state straggler rate the paper measures.
    """

    at_s: float
    duration_s: float
    probability: float = 0.5
    min_factor: float = 4.0
    max_factor: float = 16.0

    def __post_init__(self):
        if self.at_s < 0:
            raise ConfigurationError("fault time must be non-negative")
        if self.duration_s <= 0:
            raise ConfigurationError("fault window duration must be positive")
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError("straggler probability must be in (0, 1]")
        if self.min_factor < 1.0 or self.max_factor < self.min_factor:
            raise ConfigurationError("straggler factors must satisfy 1 <= min <= max")


@dataclass(frozen=True)
class ProxyCrash:
    """Crash one proxy at ``at_s`` and bring a replacement up ``down_s`` later.

    The crash goes through the deployment's ordinary membership path, so the
    rebalancer evacuates what it can, clients re-route over the surviving
    ring, and the recovery join triggers the usual rebalance — the fault
    tests the membership machinery rather than bypassing it.
    """

    at_s: float
    down_s: float = 60.0
    #: Index into the deployment's proxy list at crash time (clamped).
    proxy_index: int = 0

    def __post_init__(self):
        if self.at_s < 0:
            raise ConfigurationError("fault time must be non-negative")
        if self.down_s <= 0:
            raise ConfigurationError("proxy down time must be positive")
        if self.proxy_index < 0:
            raise ConfigurationError("proxy index must be non-negative")


#: Every concrete fault spec type (for isinstance dispatch and docs).
FaultSpec = (
    ReclamationStorm
    | LinkDegradation
    | LinkBlackhole
    | InvocationFaults
    | StragglerInflation
    | ProxyCrash
)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, validated collection of fault specs for one scenario."""

    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self):
        allowed = (
            ReclamationStorm, LinkDegradation, LinkBlackhole,
            InvocationFaults, StragglerInflation, ProxyCrash,
        )
        for fault in self.faults:
            if not isinstance(fault, allowed):
                raise ConfigurationError(
                    f"unsupported fault spec {type(fault).__name__}"
                )
        object.__setattr__(
            self, "faults", tuple(sorted(self.faults, key=lambda f: f.at_s))
        )

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    @property
    def horizon_s(self) -> float:
        """Virtual time by which every scheduled fault has fully reverted."""
        horizon = 0.0
        for fault in self.faults:
            end = fault.at_s + getattr(fault, "duration_s", 0.0)
            end = max(end, fault.at_s + getattr(fault, "down_s", 0.0))
            horizon = max(horizon, end)
        return horizon

    def describe(self) -> list[dict[str, object]]:
        """One summary dict per fault, in activation order (for reports)."""
        out: list[dict[str, object]] = []
        for fault in self.faults:
            entry: dict[str, object] = {"kind": type(fault).__name__, "at_s": fault.at_s}
            for attr in ("duration_s", "down_s", "fraction", "host_fraction",
                         "factor", "failure_probability", "extra_overhead_s",
                         "probability", "min_factor", "max_factor",
                         "correlated", "proxy_index"):
                if hasattr(fault, attr):
                    entry[attr] = getattr(fault, attr)
            out.append(entry)
        return out

"""Per-request transfer-time estimation.

:class:`TransferModel` answers one question for the cache simulation: given a
chunk of B bytes moving between a Lambda node (on some VM host, with some
memory-dependent bandwidth cap) and the proxy, while K sibling chunks of the
same request are in flight and the chunk's host carries C co-located flows,
how long does the transfer take?

The model is deliberately simple — fixed latency plus the bottleneck of three
bandwidth caps (function cap, shared host NIC share, shared proxy uplink
share) — because that is sufficient to reproduce the *shapes* in Figures 4,
11, and 12: bigger functions are faster up to a plateau, spreading chunks
over more hosts is faster, and throughput scales with clients until the
proxies saturate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.topology import NetworkFabric
from repro.utils.rng import SeededRNG
from repro.utils.units import MB, MILLISECOND


@dataclass(frozen=True)
class TransferTiming:
    """Breakdown of one chunk transfer's timing."""

    latency_s: float
    bandwidth_bps: float
    transfer_s: float

    @property
    def total_s(self) -> float:
        """End-to-end time for this chunk."""
        return self.latency_s + self.transfer_s


class TransferModel:
    """Estimates chunk transfer times over the simulated fabric."""

    def __init__(
        self,
        fabric: NetworkFabric | None = None,
        base_latency_s: float = 1.0 * MILLISECOND,
        jitter_fraction: float = 0.0,
        rng: SeededRNG | None = None,
    ) -> None:
        """Create a transfer model.

        Args:
            fabric: shared NIC registry; a fresh one is created if omitted.
            base_latency_s: fixed per-chunk latency (TCP + proxy forwarding).
            jitter_fraction: if non-zero, every chunk transfer is scaled by a
                factor drawn uniformly from ``[1, 1 + jitter_fraction]`` to
                model stragglers.
            rng: the seeded stream the jitter factors are drawn from, so runs
                are exactly reproducible per seed.  Required when
                ``jitter_fraction`` is non-zero.
        """
        if jitter_fraction < 0:
            raise ValueError(f"jitter fraction must be non-negative, got {jitter_fraction}")
        if jitter_fraction > 0 and rng is None:
            raise ValueError("a seeded rng is required when jitter_fraction is non-zero")
        self.fabric = fabric or NetworkFabric()
        self.base_latency_s = base_latency_s
        self.jitter_fraction = jitter_fraction
        self.rng = rng

    def draw_jitter(self) -> float:
        """One straggler factor in ``[1, 1 + jitter_fraction]`` from the seeded stream."""
        if self.jitter_fraction <= 0 or self.rng is None:
            return 1.0
        return self.rng.uniform(1.0, 1.0 + self.jitter_fraction)

    def chunk_transfer_timing(
        self,
        chunk_bytes: int,
        function_bandwidth_bps: float,
        host_capacity_bps: float,
        host_id: str,
        flows_on_host: int,
        concurrent_request_streams: int,
    ) -> TransferTiming:
        """Timing for one chunk moving between a Lambda node and the proxy.

        Args:
            chunk_bytes: payload size.
            function_bandwidth_bps: the function's own bandwidth cap (memory
                dependent, see :mod:`repro.faas.limits`).
            host_capacity_bps: total NIC capacity of the function's VM host.
            host_id: identifier of the VM host (for the shared-NIC registry).
            flows_on_host: number of chunk flows sharing that host NIC right
                now, including this one.
            concurrent_request_streams: number of chunk streams sharing the
                proxy uplink right now, including this one.

        Returns:
            A :class:`TransferTiming` whose ``bandwidth_bps`` is the binding
            bottleneck among the three caps.
        """
        nic = self.fabric.host(host_id, host_capacity_bps)
        host_share = nic.effective_bandwidth(max(flows_on_host, 1))
        proxy_share = self.fabric.proxy_share(max(concurrent_request_streams, 1))
        bandwidth = min(function_bandwidth_bps, host_share, proxy_share)
        transfer_s = chunk_bytes / bandwidth * self.draw_jitter()
        return TransferTiming(
            latency_s=self.base_latency_s,
            bandwidth_bps=bandwidth,
            transfer_s=transfer_s,
        )

    def object_store_get_time(
        self, object_bytes: int, first_byte_latency_s: float, bandwidth_bps: float
    ) -> float:
        """Time to fetch an object from a backing store (S3-style)."""
        return first_byte_latency_s + object_bytes / bandwidth_bps

    def describe(self) -> dict[str, float]:
        """Model parameters, for experiment reports."""
        return {
            "base_latency_ms": self.base_latency_s / MILLISECOND,
            "proxy_uplink_MBps": self.fabric.proxy_uplink_bps / MB,
            "jitter_fraction": self.jitter_fraction,
        }

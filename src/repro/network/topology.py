"""Host-level network topology: shared NICs and the proxy-side fabric.

The key effect reproduced here is Figure 4 of the paper: when several
network-hungry Lambda functions land on the same VM host, they contend for
that host's uplink, so a GET that touches fewer distinct hosts is slower than
one whose chunks are spread across many hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.utils.units import GB


@dataclass
class HostNic:
    """The shared network interface of one Lambda-hosting VM.

    ``concurrent_flows`` counts how many chunk transfers are in flight through
    this NIC at the same instant; the effective per-flow bandwidth is the NIC
    capacity divided by that count (a standard processor-sharing approximation
    that captures the contention trend without packet-level simulation).
    """

    host_id: str
    capacity_bps: float
    concurrent_flows: int = 0
    #: Fault-injection hook: multiplies the NIC capacity.  ``1.0`` is the
    #: healthy link; a link-degradation fault lowers it and a blackhole sets
    #: it to a tiny epsilon (never zero — flow finish times divide by the
    #: rate).  Flipping it only changes bandwidth from the *next* arbiter
    #: transition, so the chaos engine re-arbitrates the host after a flip.
    degradation_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise ConfigurationError(f"NIC capacity must be positive, got {self.capacity_bps}")

    def effective_bandwidth(self, flows: int | None = None) -> float:
        """Per-flow bandwidth when ``flows`` transfers share the NIC."""
        active = flows if flows is not None else max(self.concurrent_flows, 1)
        active = max(active, 1)
        return self.capacity_bps * self.degradation_factor / active

    def acquire(self) -> None:
        """Register one in-flight transfer."""
        self.concurrent_flows += 1

    def release(self) -> None:
        """Unregister one in-flight transfer."""
        if self.concurrent_flows <= 0:
            raise ConfigurationError(f"NIC {self.host_id} released with no active flows")
        self.concurrent_flows -= 1


@dataclass
class NetworkFabric:
    """Registry of host NICs plus the client/proxy side uplink capacity.

    The proxy runs on a ``c5n.4xlarge``-class instance in the paper, so the
    proxy-side uplink is far larger than any single Lambda's bandwidth and is
    rarely the bottleneck; it still matters when dozens of chunks stream
    concurrently (Figure 12's scalability experiment).
    """

    proxy_uplink_bps: float = 25 * GB / 8 * 1.0  # 25 Gbps in bytes/s
    hosts: dict[str, HostNic] = field(default_factory=dict)

    def host(self, host_id: str, capacity_bps: float) -> HostNic:
        """Get or create the NIC for ``host_id`` with the given capacity."""
        nic = self.hosts.get(host_id)
        if nic is None:
            nic = HostNic(host_id=host_id, capacity_bps=capacity_bps)
            self.hosts[host_id] = nic
        return nic

    def proxy_share(self, concurrent_streams: int) -> float:
        """Per-stream proxy-side bandwidth when ``concurrent_streams`` share it."""
        return self.proxy_uplink_bps / max(concurrent_streams, 1)

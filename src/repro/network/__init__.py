"""Network model for the simulated AWS substrate.

The paper's performance results hinge on a few network facts:

* Lambda functions only make *outbound* TCP connections; the proxy accepts
  them (this constraint shapes the whole architecture but not the timing
  model).
* A Lambda function's bandwidth grows with its configured memory — the
  authors measured roughly 50-160 MB/s from 128 MB to 3008 MB functions.
* Multiple functions packed on one VM host *share* that host's NIC, which is
  the contention effect behind Figure 4.

:class:`~repro.network.link.Link` models a single bandwidth/latency pipe;
:class:`~repro.network.topology.HostNic` models the shared per-host uplink;
:func:`~repro.network.transfer.transfer_time` combines them into per-request
timings used by the cache simulation.
"""

from repro.network.flows import FlowInterval, FlowNetwork, ReferenceFlowNetwork
from repro.network.link import Link
from repro.network.topology import HostNic, NetworkFabric
from repro.network.transfer import TransferModel

__all__ = [
    "FlowInterval",
    "FlowNetwork",
    "HostNic",
    "Link",
    "NetworkFabric",
    "ReferenceFlowNetwork",
    "TransferModel",
]

"""Flow-level network model: transfers as intervals on the virtual clock.

The synchronous request path estimates a chunk's transfer time once, from a
static snapshot of how many flows share each NIC (``flows_on_host`` /
``concurrent_request_streams``).  That cannot express the paper's headline
phenomena — throughput scaling with concurrent clients, first-d-of-n
straggler abandonment — because those are effects of flows *joining and
leaving while other flows are still in progress*.

:class:`FlowNetwork` models exactly that.  A transfer is an *interval* on
the shared :class:`~repro.sim.loop.EventLoop` clock: it starts, progresses
at the current fair-share rate, and finishes when its bytes run out.  Every
time a flow starts, finishes, or is cancelled, the network

1. **settles** every active flow's progress at the rates that held since the
   last change,
2. **recomputes** each flow's rate as the bottleneck of its three caps —
   the function's own bandwidth, its VM host's NIC fair share, and its
   proxy's uplink fair share — and
3. **reschedules** each flow's completion event for the new finish time.

Host-NIC sharing uses the same :class:`~repro.network.topology.HostNic`
registry as the static model — ``acquire``/``release`` now track live flow
membership, so the shared-NIC accounting responds to flows that join and
leave mid-transfer.

Every finished or abandoned flow leaves a :class:`FlowInterval` in
:attr:`FlowNetwork.trace`; the drivers surface that trace so experiments
(and tests) can assert genuine overlap between concurrent transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import SimulationError
from repro.network.topology import HostNic, NetworkFabric
from repro.sim.loop import Event, EventLoop
from repro.sim.process import SimFuture


def peak_concurrency(intervals: list[tuple[float, float]]) -> int:
    """Peak number of ``(start, end)`` intervals alive at one instant.

    Boundary sweep with departures ordered before arrivals at equal
    timestamps, so back-to-back intervals do not count as overlapping.
    """
    boundaries: list[tuple[float, int]] = []
    for started_at, ended_at in intervals:
        boundaries.append((started_at, 1))
        boundaries.append((ended_at, -1))
    boundaries.sort(key=lambda item: (item[0], item[1]))
    live = peak = 0
    for _time, delta in boundaries:
        live += delta
        peak = max(peak, live)
    return peak


@dataclass(frozen=True)
class FlowInterval:
    """One completed (or abandoned) transfer, as recorded in the trace."""

    flow_id: int
    label: str
    host_id: str
    proxy_id: str
    size_bytes: int
    started_at: float
    ended_at: float
    #: ``False`` when the flow was cancelled mid-transfer (an abandoned
    #: straggler); ``bytes_moved`` then reports the partial progress.
    completed: bool
    bytes_moved: float

    @property
    def duration_s(self) -> float:
        """Wall-clock span of the transfer."""
        return self.ended_at - self.started_at

    def overlaps(self, other: "FlowInterval") -> bool:
        """Whether two transfer intervals were in flight at the same instant."""
        return self.started_at < other.ended_at and other.started_at < self.ended_at


class Flow:
    """One in-flight transfer between a Lambda node and its proxy."""

    def __init__(
        self,
        flow_id: int,
        label: str,
        size_bytes: float,
        function_bandwidth_bps: float,
        nic: HostNic,
        proxy_id: str,
        started_at: float,
    ):
        self.flow_id = flow_id
        self.label = label
        self.size_bytes = size_bytes
        self.function_bandwidth_bps = function_bandwidth_bps
        self.nic = nic
        self.proxy_id = proxy_id
        self.started_at = started_at
        self.remaining = float(size_bytes)
        self.rate_bps = 0.0
        self.last_progress_at = started_at
        #: Resolves with this flow when the last byte lands; cancelling it
        #: (directly or through a process abandoning the fetch) tears the
        #: flow down and releases its bandwidth shares.
        self.future: SimFuture = SimFuture(label=f"flow:{label}")
        self._completion: Optional[Event] = None

    @property
    def bytes_moved(self) -> float:
        """Bytes transferred so far (after the last settlement)."""
        return self.size_bytes - self.remaining

    def __repr__(self) -> str:
        return (
            f"Flow({self.label!r}, host={self.nic.host_id}, proxy={self.proxy_id}, "
            f"remaining={self.remaining:.0f}B at {self.rate_bps / 1e6:.1f} MB/s)"
        )


class FlowNetwork:
    """Processor-sharing bandwidth arbitration over the event loop."""

    def __init__(self, loop: EventLoop, fabric: NetworkFabric):
        self.loop = loop
        self.fabric = fabric
        self._active: dict[int, Flow] = {}
        self._next_flow_id = 0
        self._proxy_streams: dict[str, int] = {}
        #: Chronological record of every finished/abandoned transfer.
        self.trace: list[FlowInterval] = []

    # ------------------------------------------------------------------ introspection
    @property
    def active_count(self) -> int:
        """Number of flows currently in progress."""
        return len(self._active)

    def flows_on_host(self, host_id: str) -> int:
        """Live flow count through one host NIC (the dynamic accounting)."""
        nic = self.fabric.hosts.get(host_id)
        return nic.concurrent_flows if nic is not None else 0

    def streams_on_proxy(self, proxy_id: str) -> int:
        """Live flow count through one proxy's uplink."""
        return self._proxy_streams.get(proxy_id, 0)

    def max_concurrent(self) -> int:
        """Peak number of simultaneously in-flight transfers in the trace.

        Computed by sweeping the recorded intervals (plus the flows still
        active right now), so it reflects the whole run.
        """
        intervals = [(i.started_at, i.ended_at) for i in self.trace]
        intervals.extend(
            (flow.started_at, self.loop.now) for flow in self._active.values()
        )
        return peak_concurrency(intervals)

    # ------------------------------------------------------------------ flow lifecycle
    def transfer(
        self,
        *,
        size_bytes: float,
        function_bandwidth_bps: float,
        host_id: str,
        host_capacity_bps: float,
        proxy_id: str,
        label: str = "",
    ) -> Flow:
        """Start a transfer now; returns the flow whose future resolves on finish."""
        if size_bytes <= 0:
            raise SimulationError(f"flow {label!r} must move a positive byte count")
        if function_bandwidth_bps <= 0:
            raise SimulationError(f"flow {label!r} needs a positive bandwidth cap")
        now = self.loop.now
        self._settle(now)
        nic = self.fabric.host(host_id, host_capacity_bps)
        nic.acquire()
        self._proxy_streams[proxy_id] = self._proxy_streams.get(proxy_id, 0) + 1
        flow = Flow(
            flow_id=self._next_flow_id,
            label=label,
            size_bytes=size_bytes,
            function_bandwidth_bps=function_bandwidth_bps,
            nic=nic,
            proxy_id=proxy_id,
            started_at=now,
        )
        self._next_flow_id += 1
        self._active[flow.flow_id] = flow
        flow.future.on_cancel(lambda: self.cancel(flow))
        self._reschedule()
        return flow

    def cancel(self, flow: Flow) -> bool:
        """Abandon an in-flight transfer (the first-d straggler path).

        Settles its partial progress into the trace, releases its NIC and
        uplink shares (speeding up the surviving flows), and cancels its
        future if the caller has not already done so.
        """
        if flow.flow_id not in self._active:
            return False
        now = self.loop.now
        self._settle(now)
        self._retire(flow, now, completed=False)
        if not flow.future.done:
            flow.future.cancel()
        self._reschedule()
        return True

    # ------------------------------------------------------------------ internals
    def _settle(self, now: float) -> None:
        """Advance every active flow's byte count at the rates held so far."""
        for flow in self._active.values():
            elapsed = now - flow.last_progress_at
            if elapsed > 0 and flow.rate_bps > 0:
                flow.remaining = max(0.0, flow.remaining - flow.rate_bps * elapsed)
            flow.last_progress_at = now

    def _rate_for(self, flow: Flow) -> float:
        host_share = flow.nic.effective_bandwidth()
        proxy_share = self.fabric.proxy_share(self._proxy_streams.get(flow.proxy_id, 1))
        return min(flow.function_bandwidth_bps, host_share, proxy_share)

    def _reschedule(self) -> None:
        """Recompute every rate and re-aim the affected completion events.

        A flow whose bottleneck did not change (different host NIC *and*
        different proxy uplink than the flow that just started or left)
        keeps its already-scheduled completion event: progress is linear, so
        the old finish time is still exact.  This keeps the heap churn
        proportional to the flows actually affected by a transition.
        """
        now = self.loop.now
        for flow in self._active.values():
            rate = self._rate_for(flow)
            if (
                flow._completion is not None
                and not flow._completion.cancelled
                and rate == flow.rate_bps
            ):
                continue
            flow.rate_bps = rate
            finish = now + flow.remaining / flow.rate_bps
            if flow._completion is not None:
                flow._completion.cancel()
            flow._completion = self.loop.schedule_at(
                finish, lambda f=flow: self._complete(f), label=f"flow.finish:{flow.label}"
            )

    def _complete(self, flow: Flow) -> None:
        if flow.flow_id not in self._active:
            return
        now = self.loop.now
        self._settle(now)
        self._retire(flow, now, completed=True)
        flow.future.resolve(flow)
        self._reschedule()

    def _retire(self, flow: Flow, now: float, completed: bool) -> None:
        del self._active[flow.flow_id]
        if flow._completion is not None:
            flow._completion.cancel()
            flow._completion = None
        flow.nic.release()
        streams = self._proxy_streams.get(flow.proxy_id, 0) - 1
        if streams > 0:
            self._proxy_streams[flow.proxy_id] = streams
        else:
            self._proxy_streams.pop(flow.proxy_id, None)
        if completed:
            flow.remaining = 0.0
        self.trace.append(
            FlowInterval(
                flow_id=flow.flow_id,
                label=flow.label,
                host_id=flow.nic.host_id,
                proxy_id=flow.proxy_id,
                size_bytes=int(flow.size_bytes),
                started_at=flow.started_at,
                ended_at=now,
                completed=completed,
                bytes_moved=flow.bytes_moved,
            )
        )

"""Flow-level network model: transfers as intervals on the virtual clock.

The synchronous request path estimates a chunk's transfer time once, from a
static snapshot of how many flows share each NIC (``flows_on_host`` /
``concurrent_request_streams``).  That cannot express the paper's headline
phenomena — throughput scaling with concurrent clients, first-d-of-n
straggler abandonment — because those are effects of flows *joining and
leaving while other flows are still in progress*.

:class:`FlowNetwork` models exactly that.  A transfer is an *interval* on
the shared :class:`~repro.sim.loop.EventLoop` clock: it starts, progresses
at the current fair-share rate, and finishes when its bytes run out.

A flow's rate is the bottleneck of three caps — the function's own
bandwidth, its VM host's NIC fair share, and its proxy's uplink fair share.
The two shared caps depend only on *how many* flows currently occupy that
NIC or that uplink, so a flow start/finish/abandon can change the rate of
exactly two **bottleneck groups**: the flows on the touched host NIC and
the flows on the touched proxy uplink.  The arbiter therefore indexes
active flows by NIC and by uplink and, on each transition,

1. **settles** the progress of the affected flows whose rate actually
   changes (progress between rate changes is linear, so settlement is lazy
   — a flow is only brought up to date when its rate flips or it retires),
2. **recomputes** rates for the two touched groups only, and
3. **re-aims** completion events only for flows whose bottleneck flipped.

This makes a transition O(group size) instead of O(total active flows),
which is what lets the closed-loop drivers scale to thousand-client fleets
(see ``docs/performance.md``).  :class:`ReferenceFlowNetwork` keeps the
original global-recompute sweep — with identical numeric semantics — as the
differential-testing and perf-baseline reference.

Host-NIC sharing uses the same :class:`~repro.network.topology.HostNic`
registry as the static model — ``acquire``/``release`` still track live
flow membership, so the shared-NIC accounting responds to flows that join
and leave mid-transfer.

Every finished or abandoned flow leaves a :class:`FlowInterval` in
:attr:`FlowNetwork.trace`; the drivers surface that trace so experiments
(and tests) can assert genuine overlap between concurrent transfers.  Long
open-loop runs can cap the retained intervals with ``trace_limit`` —
aggregate statistics (counts, bytes, the running concurrency peak) are kept
independently of the retained window and do not change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Optional

from repro.exceptions import SimulationError
from repro.network.topology import HostNic, NetworkFabric
from repro.sim.loop import Event, EventLoop
from repro.sim.process import SimFuture


def peak_concurrency(intervals: list[tuple[float, float]]) -> int:
    """Peak number of ``(start, end)`` intervals alive at one instant.

    Boundary sweep with departures ordered before arrivals at equal
    timestamps, so back-to-back intervals do not count as overlapping.
    """
    boundaries: list[tuple[float, int]] = []
    for started_at, ended_at in intervals:
        boundaries.append((started_at, 1))
        boundaries.append((ended_at, -1))
    boundaries.sort(key=lambda item: (item[0], item[1]))
    live = peak = 0
    for _time, delta in boundaries:
        live += delta
        peak = max(peak, live)
    return peak


@dataclass(frozen=True)
class FlowInterval:
    """One completed (or abandoned) transfer, as recorded in the trace."""

    flow_id: int
    label: str
    host_id: str
    proxy_id: str
    size_bytes: int
    started_at: float
    ended_at: float
    #: ``False`` when the flow was cancelled mid-transfer (an abandoned
    #: straggler); ``bytes_moved`` then reports the partial progress.
    completed: bool
    bytes_moved: float

    @property
    def duration_s(self) -> float:
        """Wall-clock span of the transfer."""
        return self.ended_at - self.started_at

    def overlaps(self, other: "FlowInterval") -> bool:
        """Whether two transfer intervals were in flight at the same instant."""
        return self.started_at < other.ended_at and other.started_at < self.ended_at


class Flow:
    """One in-flight transfer between a Lambda node and its proxy."""

    def __init__(
        self,
        flow_id: int,
        label: str,
        size_bytes: float,
        function_bandwidth_bps: float,
        nic: HostNic,
        proxy_id: str,
        started_at: float,
    ) -> None:
        self.flow_id = flow_id
        self.label = label
        self.size_bytes = size_bytes
        self.function_bandwidth_bps = function_bandwidth_bps
        self.nic = nic
        self.proxy_id = proxy_id
        self.started_at = started_at
        self.remaining = float(size_bytes)
        self.rate_bps = 0.0
        self.last_progress_at = started_at
        #: Resolves with this flow when the last byte lands; cancelling it
        #: (directly or through a process abandoning the fetch) tears the
        #: flow down and releases its bandwidth shares.
        self.future: SimFuture = SimFuture(label=f"flow:{label}")
        self._completion: Optional[Event] = None
        #: Precomputed completion-event label: re-aims happen on every rate
        #: transition, so building the string once per flow matters at scale.
        self._finish_label = "flow.finish:" + label
        #: Tracing linkage: the chunk-transfer span this flow serves, set by
        #: the request path when a tracer is attached (None otherwise).
        self.parent_span: Optional[Any] = None

    @property
    def bytes_moved(self) -> float:
        """Bytes transferred so far (after the last settlement)."""
        return self.size_bytes - self.remaining

    def __repr__(self) -> str:
        return (
            f"Flow({self.label!r}, host={self.nic.host_id}, proxy={self.proxy_id}, "
            f"remaining={self.remaining:.0f}B at {self.rate_bps / 1e6:.1f} MB/s)"
        )


class FlowNetwork:
    """Incremental processor-sharing bandwidth arbitration over the event loop.

    Args:
        loop: the shared event loop flows are scheduled on.
        fabric: NIC registry plus proxy-side uplink capacity.
        trace_limit: if given, retain at most this many finished/abandoned
            :class:`FlowInterval` records (the oldest are evicted; eviction
            costs O(trace_limit) per retirement, so keep limits modest).
            The aggregate statistics (``completed_flows``,
            ``abandoned_flows``, byte totals, ``max_concurrent``) are
            unaffected by eviction.
    """

    def __init__(
        self,
        loop: EventLoop,
        fabric: NetworkFabric,
        trace_limit: Optional[int] = None,
    ) -> None:
        if trace_limit is not None and trace_limit < 0:
            raise SimulationError(f"trace_limit must be >= 0, got {trace_limit}")
        self.loop = loop
        self.fabric = fabric
        self.trace_limit = trace_limit
        self._active: dict[int, Flow] = {}
        self._next_flow_id = 0
        #: Bottleneck-group indexes: the live flows sharing each host NIC and
        #: each proxy uplink.  Values are insertion-ordered by flow id.
        self._by_host: dict[str, dict[int, Flow]] = {}
        self._by_proxy: dict[str, dict[int, Flow]] = {}
        #: Groups whose occupancy changed but whose re-aim has not run yet.
        #: Retiring a flow releases its shares *before* its future settles,
        #: and settling the future synchronously resumes processes that can
        #: start or cancel other transfers — those nested transitions must
        #: also repair the still-dirty groups, or flows in them would be
        #: re-aimed later than under the global-recompute reference (same
        #: rates, different event order at equal timestamps).  Kept as
        #: insertion-ordered dicts (not sets) so nothing downstream can ever
        #: observe hash order (lint rule D103).
        self._dirty_hosts: dict[str, None] = {}
        self._dirty_proxies: dict[str, None] = {}
        #: Optional :class:`~repro.obs.tracer.SpanTracer`; when attached,
        #: every retired flow is recorded as a ``net.flow`` span parented to
        #: the chunk transfer it served (see ``Flow.parent_span``).
        self.tracer: Optional[Any] = None
        #: Chronological record of finished/abandoned transfers (the newest
        #: ``trace_limit`` of them when a limit is set).
        self.trace: list[FlowInterval] = []
        self._trace_dropped = 0
        self._peak_active = 0
        #: Aggregate retirement statistics, independent of trace eviction.
        self.completed_flows = 0
        self.abandoned_flows = 0
        self.bytes_completed = 0.0
        self.bytes_abandoned = 0.0

    # ------------------------------------------------------------------ introspection
    @property
    def active_count(self) -> int:
        """Number of flows currently in progress."""
        return len(self._active)

    @property
    def retired_flows(self) -> int:
        """Total number of flows that have finished or been abandoned."""
        return self.completed_flows + self.abandoned_flows

    @property
    def trace_dropped(self) -> int:
        """Number of trace intervals evicted under ``trace_limit``."""
        return self._trace_dropped

    def flows_on_host(self, host_id: str) -> int:
        """Live flow count through one host NIC (the dynamic accounting)."""
        nic = self.fabric.hosts.get(host_id)
        return nic.concurrent_flows if nic is not None else 0

    def streams_on_proxy(self, proxy_id: str) -> int:
        """Live flow count through one proxy's uplink."""
        return len(self._by_proxy.get(proxy_id, ()))

    def max_concurrent(self) -> int:
        """Peak number of simultaneously in-flight transfers so far.

        Maintained as a running high-water mark of the live flow count, so
        the call is O(1) regardless of how long the run (or its trace) is.
        """
        return self._peak_active

    def flow_stats(self) -> dict[str, float]:
        """Aggregate transfer statistics (stable under ``trace_limit`` eviction)."""
        return {
            "completed_flows": float(self.completed_flows),
            "abandoned_flows": float(self.abandoned_flows),
            "bytes_completed": self.bytes_completed,
            "bytes_abandoned": self.bytes_abandoned,
            "peak_concurrent_flows": float(self._peak_active),
            "trace_retained": float(len(self.trace)),
            "trace_dropped": float(self._trace_dropped),
        }

    # ------------------------------------------------------------------ trace windows
    def trace_marker(self) -> int:
        """Opaque position marker: the number of flows retired so far.

        Take one before a run and pass it to :meth:`trace_since` afterwards
        to get the intervals retired in between — stable even when
        ``trace_limit`` eviction shifts list indexes.
        """
        return self.retired_flows

    def trace_since(self, marker: int) -> list[FlowInterval]:
        """The retained intervals retired after ``marker`` was taken."""
        return list(self.trace[max(0, marker - self._trace_dropped):])

    # ------------------------------------------------------------------ flow lifecycle
    def transfer(
        self,
        *,
        size_bytes: float,
        function_bandwidth_bps: float,
        host_id: str,
        host_capacity_bps: float,
        proxy_id: str,
        label: str = "",
    ) -> Flow:
        """Start a transfer now; returns the flow whose future resolves on finish."""
        if size_bytes <= 0:
            raise SimulationError(f"flow {label!r} must move a positive byte count")
        if function_bandwidth_bps <= 0:
            raise SimulationError(f"flow {label!r} needs a positive bandwidth cap")
        now = self.loop.now
        nic = self.fabric.host(host_id, host_capacity_bps)
        nic.acquire()
        flow = Flow(
            flow_id=self._next_flow_id,
            label=label,
            size_bytes=size_bytes,
            function_bandwidth_bps=function_bandwidth_bps,
            nic=nic,
            proxy_id=proxy_id,
            started_at=now,
        )
        self._next_flow_id += 1
        self._active[flow.flow_id] = flow
        self._by_host.setdefault(nic.host_id, {})[flow.flow_id] = flow
        self._by_proxy.setdefault(proxy_id, {})[flow.flow_id] = flow
        if len(self._active) > self._peak_active:
            self._peak_active = len(self._active)
        flow.future.on_cancel(lambda: self.cancel(flow))
        self._transition(nic.host_id, proxy_id)
        return flow

    def cancel(self, flow: Flow) -> bool:
        """Abandon an in-flight transfer (the first-d straggler path).

        Settles its partial progress into the trace, releases its NIC and
        uplink shares (speeding up the surviving flows), and cancels its
        future if the caller has not already done so.
        """
        if flow.flow_id not in self._active:
            return False
        now = self.loop.now
        self._settle_flow(flow, now)
        self._retire(flow, now, completed=False)
        if not flow.future.done:
            flow.future.cancel()
        self._transition(flow.nic.host_id, flow.proxy_id)
        return True

    # ------------------------------------------------------------------ internals
    def _settle_flow(self, flow: Flow, now: float) -> None:
        """Advance one flow's byte count at the rate held since its last settle."""
        elapsed = now - flow.last_progress_at
        if elapsed > 0 and flow.rate_bps > 0:
            flow.remaining = max(0.0, flow.remaining - flow.rate_bps * elapsed)
        flow.last_progress_at = now

    def _affected_flows(
        self, hosts: dict[str, None], proxies: dict[str, None]
    ) -> list[Flow]:
        """Flows whose fair share a transition on the given groups can touch.

        A flow's rate depends only on its own caps and on the occupancy of
        its NIC and its uplink, so the union of the touched groups is exact
        — no other flow's bottleneck can flip.  The group collections are
        insertion-ordered dicts and the merged result is flow-id-sorted, so
        event scheduling matches the global-recompute reference and never
        depends on hash order.
        """
        groups = [
            group
            for group in (
                *(self._by_host.get(host_id) for host_id in hosts),
                *(self._by_proxy.get(proxy_id) for proxy_id in proxies),
            )
            if group
        ]
        if not groups:
            return []
        if len(groups) == 1:
            return list(groups[0].values())
        merged: dict[int, Flow] = {}
        for group in groups:
            merged.update(group)
        return [merged[flow_id] for flow_id in sorted(merged)]

    def _transition(self, host_id: str, proxy_id: str) -> None:
        """Settle + re-aim completion events for the touched bottleneck groups.

        A flow whose bottleneck did not change keeps its already-scheduled
        completion event *and* its last settlement point: progress is
        linear between rate changes, so both remain exact.  Heap churn and
        settlement work stay proportional to the flows actually affected.
        """
        profile = self.loop._profile
        if profile is not None:
            transition_started = perf_counter()  # repro: allow[D102] (profiling meter)
        now = self.loop.now
        hosts: dict[str, None] = {host_id: None}
        proxies: dict[str, None] = {proxy_id: None}
        if self._dirty_hosts:
            hosts.update(self._dirty_hosts)
            self._dirty_hosts.clear()
        if self._dirty_proxies:
            proxies.update(self._dirty_proxies)
            self._dirty_proxies.clear()
        # Fair shares are group properties; compute each touched NIC's and
        # uplink's share once per transition instead of once per flow.
        host_shares: dict[str, float] = {}
        proxy_shares: dict[str, float] = {}
        for flow in self._affected_flows(hosts, proxies):
            nic = flow.nic
            host_share = host_shares.get(nic.host_id)
            if host_share is None:
                host_share = nic.effective_bandwidth()
                host_shares[nic.host_id] = host_share
            proxy_share = proxy_shares.get(flow.proxy_id)
            if proxy_share is None:
                streams = len(self._by_proxy.get(flow.proxy_id, ()))
                proxy_share = self.fabric.proxy_share(streams)
                proxy_shares[flow.proxy_id] = proxy_share
            rate = min(flow.function_bandwidth_bps, host_share, proxy_share)
            if (
                flow._completion is not None
                and not flow._completion.cancelled
                and rate == flow.rate_bps
            ):
                continue
            self._settle_flow(flow, now)
            flow.rate_bps = rate
            finish = now + flow.remaining / flow.rate_bps
            if flow._completion is not None:
                flow._completion.cancel()
            flow._completion = self.loop.schedule_at(
                finish, lambda f=flow: self._complete(f), label=flow._finish_label
            )
        if profile is not None:
            profile.arbiter_transitions += 1
            profile.arbiter_s += perf_counter() - transition_started  # repro: allow[D102] (profiling meter)

    def _complete(self, flow: Flow) -> None:
        if flow.flow_id not in self._active:
            return
        now = self.loop.now
        self._settle_flow(flow, now)
        self._retire(flow, now, completed=True)
        flow.future.resolve(flow)
        self._transition(flow.nic.host_id, flow.proxy_id)

    def _retire(self, flow: Flow, now: float, completed: bool) -> None:
        del self._active[flow.flow_id]
        host_group = self._by_host.get(flow.nic.host_id)
        if host_group is not None:
            host_group.pop(flow.flow_id, None)
            if not host_group:
                del self._by_host[flow.nic.host_id]
        proxy_group = self._by_proxy.get(flow.proxy_id)
        if proxy_group is not None:
            proxy_group.pop(flow.flow_id, None)
            if not proxy_group:
                del self._by_proxy[flow.proxy_id]
        if flow._completion is not None:
            flow._completion.cancel()
            flow._completion = None
        flow.nic.release()
        self._dirty_hosts[flow.nic.host_id] = None
        self._dirty_proxies[flow.proxy_id] = None
        if completed:
            flow.remaining = 0.0
            self.completed_flows += 1
            self.bytes_completed += flow.bytes_moved
        else:
            self.abandoned_flows += 1
            self.bytes_abandoned += flow.bytes_moved
        self.trace.append(
            FlowInterval(
                flow_id=flow.flow_id,
                label=flow.label,
                host_id=flow.nic.host_id,
                proxy_id=flow.proxy_id,
                size_bytes=int(flow.size_bytes),
                started_at=flow.started_at,
                ended_at=now,
                completed=completed,
                bytes_moved=flow.bytes_moved,
            )
        )
        if self.trace_limit is not None and len(self.trace) > self.trace_limit:
            overflow = len(self.trace) - self.trace_limit
            del self.trace[:overflow]
            self._trace_dropped += overflow
        tracer = self.tracer
        if tracer is not None:
            tracer.record(
                "net.flow",
                flow.started_at,
                now,
                parent=flow.parent_span,
                label=flow.label,
                host=flow.nic.host_id,
                proxy=flow.proxy_id,
                bytes=flow.bytes_moved,
                completed=completed,
            )


class ReferenceFlowNetwork(FlowNetwork):
    """Global-recompute arbiter: the pre-incremental O(active²) sweep.

    Numerically identical to :class:`FlowNetwork` — every transition visits
    *all* active flows, but a flow outside the touched groups recomputes the
    same rate and is skipped without settling, exactly as the incremental
    arbiter skips it without visiting.  Kept as the byte-for-byte reference
    for the differential tests and as the baseline the perf harness measures
    the incremental arbiter against.
    """

    def _affected_flows(
        self, hosts: dict[str, None], proxies: dict[str, None]
    ) -> list[Flow]:
        return list(self._active.values())

"""Flow-level network model: transfers as intervals on the virtual clock.

The synchronous request path estimates a chunk's transfer time once, from a
static snapshot of how many flows share each NIC (``flows_on_host`` /
``concurrent_request_streams``).  That cannot express the paper's headline
phenomena — throughput scaling with concurrent clients, first-d-of-n
straggler abandonment — because those are effects of flows *joining and
leaving while other flows are still in progress*.

:class:`FlowNetwork` models exactly that.  A transfer is an *interval* on
the shared :class:`~repro.sim.loop.EventLoop` clock: it starts, progresses
at the current fair-share rate, and finishes when its bytes run out.

A flow's rate is the bottleneck of three caps — the function's own
bandwidth, its VM host's NIC fair share, and its proxy's uplink fair share.
The two shared caps depend only on *how many* flows currently occupy that
NIC or that uplink, so a flow start/finish/abandon can change the rate of
exactly two **bottleneck groups**: the flows on the touched host NIC and
the flows on the touched proxy uplink.  The arbiter therefore indexes
active flows by NIC and by uplink and, on each transition,

1. **settles** the progress of the affected flows whose rate actually
   changes (progress between rate changes is linear, so settlement is lazy
   — a flow is only brought up to date when its rate flips or it retires),
2. **recomputes** rates for the two touched groups only, and
3. **re-aims** completion events only for flows whose bottleneck flipped.

This makes a transition O(group size) instead of O(total active flows),
which is what lets the closed-loop drivers scale to thousand-client fleets
(see ``docs/performance.md``).  :class:`ReferenceFlowNetwork` keeps the
original global-recompute sweep — with identical numeric semantics — as the
differential-testing and perf-baseline reference.

Host-NIC sharing uses the same :class:`~repro.network.topology.HostNic`
registry as the static model — ``acquire``/``release`` still track live
flow membership, so the shared-NIC accounting responds to flows that join
and leave mid-transfer.

Every finished or abandoned flow leaves a :class:`FlowInterval` in
:attr:`FlowNetwork.trace`; the drivers surface that trace so experiments
(and tests) can assert genuine overlap between concurrent transfers.  Long
open-loop runs can cap the retained intervals with ``trace_limit`` —
aggregate statistics (counts, bytes, the running concurrency peak) are kept
independently of the retained window and do not change.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from time import perf_counter
from typing import Any, Optional

from repro.exceptions import SimulationError
from repro.network.topology import HostNic, NetworkFabric
from repro.sim.loop import EventLoop
from repro.sim.process import SimFuture

try:  # pragma: no cover - exercised via the forced-fallback parametrized test
    import numpy as _np
except ImportError:  # pragma: no cover - environment without the [perf] extra
    _np = None  # type: ignore[assignment]

#: Whether the numpy batch-settlement arbiter can be used in this
#: environment (the ``[perf]`` extra); without it, ``vectorized`` resolves
#: to the byte-identical scalar incremental arbiter.
HAVE_NUMPY = _np is not None

#: Valid ``InfiniCacheConfig.flow_arbiter`` names (see :func:`resolve_arbiter`).
ARBITER_NAMES = ("vectorized", "incremental", "reference")


def peak_concurrency(intervals: list[tuple[float, float]]) -> int:
    """Peak number of ``(start, end)`` intervals alive at one instant.

    Boundary sweep with departures ordered before arrivals at equal
    timestamps, so back-to-back intervals do not count as overlapping.
    """
    boundaries: list[tuple[float, int]] = []
    for started_at, ended_at in intervals:
        boundaries.append((started_at, 1))
        boundaries.append((ended_at, -1))
    boundaries.sort(key=lambda item: (item[0], item[1]))
    live = peak = 0
    for _time, delta in boundaries:
        live += delta
        peak = max(peak, live)
    return peak


@dataclass(frozen=True)
class FlowInterval:
    """One completed (or abandoned) transfer, as recorded in the trace."""

    flow_id: int
    label: str
    host_id: str
    proxy_id: str
    size_bytes: int
    started_at: float
    ended_at: float
    #: ``False`` when the flow was cancelled mid-transfer (an abandoned
    #: straggler); ``bytes_moved`` then reports the partial progress.
    completed: bool
    bytes_moved: float

    @property
    def duration_s(self) -> float:
        """Wall-clock span of the transfer."""
        return self.ended_at - self.started_at

    def overlaps(self, other: "FlowInterval") -> bool:
        """Whether two transfer intervals were in flight at the same instant."""
        return self.started_at < other.ended_at and other.started_at < self.ended_at


class Flow:
    """One in-flight transfer between a Lambda node and its proxy."""

    def __init__(
        self,
        flow_id: int,
        label: str,
        size_bytes: float,
        function_bandwidth_bps: float,
        nic: HostNic,
        proxy_id: str,
        started_at: float,
    ) -> None:
        self.flow_id = flow_id
        self.label = label
        self.size_bytes = size_bytes
        self.function_bandwidth_bps = function_bandwidth_bps
        self.nic = nic
        self.proxy_id = proxy_id
        self.started_at = started_at
        self.remaining = float(size_bytes)
        self.rate_bps = 0.0
        self.last_progress_at = started_at
        #: Resolves with this flow when the last byte lands; cancelling it
        #: (directly or through a process abandoning the fetch) tears the
        #: flow down and releases its bandwidth shares.
        self.future: SimFuture = SimFuture(label=f"flow:{label}")
        #: Pending completion: a lazy :class:`~repro.sim.loop.DeadlineTimer`
        #: under the incremental/vectorized arbiters, a plain eager
        #: :class:`~repro.sim.loop.Event` under the reference arbiter (kept
        #: that way as the differential baseline for the lazy mechanism).
        self._completion: Optional[Any] = None
        #: Precomputed completion-event label: re-aims happen on every rate
        #: transition, so building the string once per flow matters at scale.
        self._finish_label = "flow.finish:" + label
        #: Tracing linkage: the chunk-transfer span this flow serves, set by
        #: the request path when a tracer is attached (None otherwise).
        self.parent_span: Optional[Any] = None

    @property
    def bytes_moved(self) -> float:
        """Bytes transferred so far (after the last settlement)."""
        return self.size_bytes - self.remaining

    def __repr__(self) -> str:
        return (
            f"Flow({self.label!r}, host={self.nic.host_id}, proxy={self.proxy_id}, "
            f"remaining={self.remaining:.0f}B at {self.rate_bps / 1e6:.1f} MB/s)"
        )


class FlowNetwork:
    """Incremental processor-sharing bandwidth arbitration over the event loop.

    Args:
        loop: the shared event loop flows are scheduled on.
        fabric: NIC registry plus proxy-side uplink capacity.
        trace_limit: if given, retain at most this many finished/abandoned
            :class:`FlowInterval` records (the oldest are evicted in O(1)
            per retirement from the underlying deque).  The aggregate
            statistics (``completed_flows``, ``abandoned_flows``, byte
            totals, ``max_concurrent``) are unaffected by eviction.
    """

    def __init__(
        self,
        loop: EventLoop,
        fabric: NetworkFabric,
        trace_limit: Optional[int] = None,
    ) -> None:
        if trace_limit is not None and trace_limit < 0:
            raise SimulationError(f"trace_limit must be >= 0, got {trace_limit}")
        self.loop = loop
        self.fabric = fabric
        self.trace_limit = trace_limit
        self._active: dict[int, Flow] = {}
        self._next_flow_id = 0
        #: Bottleneck-group indexes: the live flows sharing each host NIC and
        #: each proxy uplink.  Values are insertion-ordered by flow id.
        self._by_host: dict[str, dict[int, Flow]] = {}
        self._by_proxy: dict[str, dict[int, Flow]] = {}
        #: Groups whose occupancy changed but whose re-aim has not run yet.
        #: Retiring a flow releases its shares *before* its future settles,
        #: and settling the future synchronously resumes processes that can
        #: start or cancel other transfers — those nested transitions must
        #: also repair the still-dirty groups, or flows in them would be
        #: re-aimed later than under the global-recompute reference (same
        #: rates, different event order at equal timestamps).  Kept as
        #: insertion-ordered dicts (not sets) so nothing downstream can ever
        #: observe hash order (lint rule D103).
        self._dirty_hosts: dict[str, None] = {}
        self._dirty_proxies: dict[str, None] = {}
        #: Transition-coalescing depth.  While positive (inside a retire
        #: cascade — a completion resolving its future, which can cancel
        #: straggler siblings and start follow-up transfers synchronously),
        #: ``_transition`` only records the touched groups as dirty; the
        #: outermost caller runs one batched re-aim for the whole cascade.
        #: First-d-of-n fan-in retires d flows and cancels n-d stragglers on
        #: the same uplink in one event, so this folds up to n transitions
        #: into one without changing any settled byte count or finish time.
        self._defer = 0
        #: Rates (and heap tie-break sequence numbers) reserved during a
        #: deferred cascade, by flow id.  Each entry records the rate an
        #: eager inner transition would have re-aimed the flow at and the
        #: sequence number that re-aim's heap push would have consumed;
        #: the flush transition pushes the real completion entries under
        #: these reserved numbers, so every ``(time, sequence)`` heap key
        #: — and therefore all same-timestamp dispatch ordering (which
        #: decides first-d-of-n quorum losers) — is bitwise identical to
        #: the uncoalesced schedule.
        self._pending: dict[int, tuple[float, int]] = {}
        #: Optional :class:`~repro.obs.tracer.SpanTracer`; when attached,
        #: every retired flow is recorded as a ``net.flow`` span parented to
        #: the chunk transfer it served (see ``Flow.parent_span``).
        self.tracer: Optional[Any] = None
        #: Chronological record of finished/abandoned transfers (the newest
        #: ``trace_limit`` of them when a limit is set).  A deque so that
        #: eviction under ``trace_limit`` is O(1) per retirement; exposed as
        #: a list through the :attr:`trace` property.
        self._trace: deque[FlowInterval] = deque(maxlen=trace_limit)
        self._trace_dropped = 0
        self._peak_active = 0
        #: Aggregate retirement statistics, independent of trace eviction.
        self.completed_flows = 0
        self.abandoned_flows = 0
        self.bytes_completed = 0.0
        self.bytes_abandoned = 0.0

    # ------------------------------------------------------------------ introspection
    @property
    def active_count(self) -> int:
        """Number of flows currently in progress."""
        return len(self._active)

    @property
    def retired_flows(self) -> int:
        """Total number of flows that have finished or been abandoned."""
        return self.completed_flows + self.abandoned_flows

    @property
    def trace_dropped(self) -> int:
        """Number of trace intervals evicted under ``trace_limit``."""
        return self._trace_dropped

    @property
    def trace(self) -> list[FlowInterval]:
        """The retained finished/abandoned intervals, oldest first.

        A fresh list copy of the retained window; use :meth:`trace_since`
        for incremental reads and :meth:`flow_stats` for O(1) aggregates.
        """
        return list(self._trace)

    def flows_on_host(self, host_id: str) -> int:
        """Live flow count through one host NIC (the dynamic accounting)."""
        nic = self.fabric.hosts.get(host_id)
        return nic.concurrent_flows if nic is not None else 0

    def streams_on_proxy(self, proxy_id: str) -> int:
        """Live flow count through one proxy's uplink."""
        return len(self._by_proxy.get(proxy_id, ()))

    def max_concurrent(self) -> int:
        """Peak number of simultaneously in-flight transfers so far.

        Maintained as a running high-water mark of the live flow count, so
        the call is O(1) regardless of how long the run (or its trace) is.
        """
        return self._peak_active

    def flow_stats(self) -> dict[str, float]:
        """Aggregate transfer statistics (stable under ``trace_limit`` eviction).

        Every value is a running aggregate maintained at retire time, so the
        call is O(1) no matter how many intervals were retired or truncated.
        """
        return {
            "completed_flows": float(self.completed_flows),
            "abandoned_flows": float(self.abandoned_flows),
            "bytes_completed": self.bytes_completed,
            "bytes_abandoned": self.bytes_abandoned,
            "peak_concurrent_flows": float(self._peak_active),
            "trace_retained": float(len(self._trace)),
            "trace_dropped": float(self._trace_dropped),
        }

    # ------------------------------------------------------------------ trace windows
    def trace_marker(self) -> int:
        """Opaque position marker: the number of flows retired so far.

        Take one before a run and pass it to :meth:`trace_since` afterwards
        to get the intervals retired in between — stable even when
        ``trace_limit`` eviction shifts list indexes.
        """
        return self.retired_flows

    def trace_since(self, marker: int) -> list[FlowInterval]:
        """The retained intervals retired after ``marker`` was taken."""
        return list(islice(self._trace, max(0, marker - self._trace_dropped), None))

    # ------------------------------------------------------------------ flow lifecycle
    def transfer(
        self,
        *,
        size_bytes: float,
        function_bandwidth_bps: float,
        host_id: str,
        host_capacity_bps: float,
        proxy_id: str,
        label: str = "",
    ) -> Flow:
        """Start a transfer now; returns the flow whose future resolves on finish."""
        if size_bytes <= 0:
            raise SimulationError(f"flow {label!r} must move a positive byte count")
        if function_bandwidth_bps <= 0:
            raise SimulationError(f"flow {label!r} needs a positive bandwidth cap")
        now = self.loop.now
        nic = self.fabric.host(host_id, host_capacity_bps)
        nic.acquire()
        flow = Flow(
            flow_id=self._next_flow_id,
            label=label,
            size_bytes=size_bytes,
            function_bandwidth_bps=function_bandwidth_bps,
            nic=nic,
            proxy_id=proxy_id,
            started_at=now,
        )
        self._next_flow_id += 1
        self._active[flow.flow_id] = flow
        self._by_host.setdefault(nic.host_id, {})[flow.flow_id] = flow
        self._by_proxy.setdefault(proxy_id, {})[flow.flow_id] = flow
        self._on_flow_added(flow)
        if len(self._active) > self._peak_active:
            self._peak_active = len(self._active)
        flow.future.on_cancel(lambda: self.cancel(flow))
        self._transition(nic.host_id, proxy_id)
        return flow

    def cancel(self, flow: Flow) -> bool:
        """Abandon an in-flight transfer (the first-d straggler path).

        Settles its partial progress into the trace, releases its NIC and
        uplink shares (speeding up the surviving flows), and cancels its
        future if the caller has not already done so.
        """
        if flow.flow_id not in self._active:
            return False
        now = self.loop.now
        self._settle_flow(flow, now)
        self._retire(flow, now, completed=False)
        if not flow.future.done:
            # Cancelling the future can resume the abandoning process, which
            # may tear down sibling transfers in turn; defer so the whole
            # cascade is repaired by one batched transition below.
            self._defer += 1
            try:
                flow.future.cancel()
            finally:
                self._defer -= 1
        self._transition(flow.nic.host_id, flow.proxy_id)
        return True

    def reassess_host(self, host_id: str) -> None:
        """Re-arbitrate every flow sharing one host NIC (fault-injection hook).

        The arbiters only recompute a group's fair share when its *occupancy*
        changes; a link fault changes the NIC's capacity (via
        ``HostNic.degradation_factor``) without any flow joining or leaving,
        so the chaos engine calls this after flipping the factor.  In-flight
        progress is settled at the old rate first — exactly as for any other
        transition — so injected faults never rewrite history.
        """
        self._transition(host_id, "")

    # ------------------------------------------------------------------ internals
    def _settle_flow(self, flow: Flow, now: float) -> None:
        """Advance one flow's byte count at the rate held since its last settle."""
        elapsed = now - flow.last_progress_at
        if elapsed > 0 and flow.rate_bps > 0:
            flow.remaining = max(0.0, flow.remaining - flow.rate_bps * elapsed)
        flow.last_progress_at = now

    def _affected_flows(
        self, hosts: dict[str, None], proxies: dict[str, None]
    ) -> list[Flow]:
        """Flows whose fair share a transition on the given groups can touch.

        A flow's rate depends only on its own caps and on the occupancy of
        its NIC and its uplink, so the union of the touched groups is exact
        — no other flow's bottleneck can flip.  The group collections are
        insertion-ordered dicts and the merged result is flow-id-sorted, so
        event scheduling matches the global-recompute reference and never
        depends on hash order.
        """
        groups = [
            group
            for group in (
                *(self._by_host.get(host_id) for host_id in hosts),
                *(self._by_proxy.get(proxy_id) for proxy_id in proxies),
            )
            if group
        ]
        if not groups:
            return []
        if len(groups) == 1:
            return list(groups[0].values())
        merged: dict[int, Flow] = {}
        for group in groups:
            merged.update(group)
        return [merged[flow_id] for flow_id in sorted(merged)]

    def _transition(self, host_id: str, proxy_id: str) -> None:
        """Settle + re-aim completion events for the touched bottleneck groups.

        A flow whose bottleneck did not change keeps its already-scheduled
        completion event *and* its last settlement point: progress is
        linear between rate changes, so both remain exact.  Heap churn and
        settlement work stay proportional to the flows actually affected.
        """
        if self._defer:
            # A retire cascade is in progress: fold this transition into the
            # batched re-aim the outermost caller runs once the cascade ends.
            # The groups stay dirty until then, and the rates an eager
            # transition would have assigned here are computed (no settle,
            # no heap traffic) so their tie-break sequence numbers can be
            # reserved at exactly the point eager pushes would consume them.
            self._dirty_hosts[host_id] = None
            self._dirty_proxies[proxy_id] = None
            self._reserve_pending()
            return
        profile = self.loop._profile
        if profile is not None:
            transition_started = perf_counter()  # repro: allow[D102] (profiling meter)
        now = self.loop.now
        hosts: dict[str, None] = {host_id: None}
        proxies: dict[str, None] = {proxy_id: None}
        if self._dirty_hosts:
            hosts.update(self._dirty_hosts)
            self._dirty_hosts.clear()
        if self._dirty_proxies:
            proxies.update(self._dirty_proxies)
            self._dirty_proxies.clear()
        # Fair shares are group properties; compute each touched NIC's and
        # uplink's share once per transition instead of once per flow.
        host_shares: dict[str, float] = {}
        proxy_shares: dict[str, float] = {}
        for flow in self._affected_flows(hosts, proxies):
            nic = flow.nic
            host_share = host_shares.get(nic.host_id)
            if host_share is None:
                host_share = nic.effective_bandwidth()
                host_shares[nic.host_id] = host_share
            proxy_share = proxy_shares.get(flow.proxy_id)
            if proxy_share is None:
                streams = len(self._by_proxy.get(flow.proxy_id, ()))
                proxy_share = self.fabric.proxy_share(streams)
                proxy_shares[flow.proxy_id] = proxy_share
            rate = min(flow.function_bandwidth_bps, host_share, proxy_share)
            entry = self._pending.pop(flow.flow_id, None) if self._pending else None
            if entry is None and flow._completion is not None and rate == flow.rate_bps:
                continue
            self._settle_flow(flow, now)
            flow.rate_bps = rate
            self._aim(
                flow,
                now + flow.remaining / flow.rate_bps,
                entry[1] if entry is not None else None,
            )
        if profile is not None:
            profile.arbiter_transitions += 1
            profile.arbiter_s += perf_counter() - transition_started  # repro: allow[D102] (profiling meter)

    def _reserve_pending(self) -> None:
        """Reserve rates + tie-break sequences for one deferred transition.

        Runs in place of an eager transition while a cascade is deferred:
        it computes, from the *current* group membership, the rate every
        affected flow would have been re-aimed at, and — for each flow
        whose rate actually changed — consumes the sequence number the
        eager cancel+push would have taken.  No settle, no heap traffic;
        flow objects are untouched (``rate_bps`` must keep the pre-cascade
        rate so the flush settles progress correctly).  Covering the
        accumulated dirty groups is a superset of what the eager inner
        transition would visit; the extra flows see an unchanged rate and
        reserve nothing, so consumption order is identical.
        """
        pending = self._pending
        reserve = self.loop.queue.reserve_sequence
        host_shares: dict[str, float] = {}
        proxy_shares: dict[str, float] = {}
        for flow in self._affected_flows(self._dirty_hosts, self._dirty_proxies):
            nic = flow.nic
            host_share = host_shares.get(nic.host_id)
            if host_share is None:
                host_share = nic.effective_bandwidth()
                host_shares[nic.host_id] = host_share
            proxy_share = proxy_shares.get(flow.proxy_id)
            if proxy_share is None:
                streams = len(self._by_proxy.get(flow.proxy_id, ()))
                proxy_share = self.fabric.proxy_share(streams)
                proxy_shares[flow.proxy_id] = proxy_share
            rate = min(flow.function_bandwidth_bps, host_share, proxy_share)
            entry = pending.get(flow.flow_id)
            if entry is not None:
                if rate == entry[0]:
                    continue
            elif flow._completion is not None and rate == flow.rate_bps:
                continue
            pending[flow.flow_id] = (rate, reserve())

    def _aim(self, flow: Flow, finish: float, sequence: Optional[int] = None) -> None:
        """(Re-)aim a flow's completion at ``finish``.

        Uses a lazy :class:`~repro.sim.loop.DeadlineTimer` per flow: the
        common competing-flow-joined case (finish moves *later*) is a field
        write instead of a cancel+reschedule, so a flow costs at most a few
        heap entries over its whole lifetime regardless of how many rate
        transitions it sees.  Firing times are identical to the eager idiom,
        and so is same-timestamp tie-breaking: ``sequence`` (reserved during
        a deferred cascade) or the timer's own reservation stands in for the
        number an eager push would have consumed.
        """
        timer = flow._completion
        if timer is None:
            flow._completion = self.loop.schedule_deadline(
                finish,
                lambda: self._complete(flow),
                label=flow._finish_label,
                sequence=sequence,
            )
        else:
            timer.set_deadline(finish, sequence)

    def _complete(self, flow: Flow) -> None:
        if flow.flow_id not in self._active:
            return
        now = self.loop.now
        self._settle_flow(flow, now)
        self._retire(flow, now, completed=True)
        # Resolving the future synchronously resumes the waiting fetch — a
        # satisfied first-d-of-n quorum then cancels its straggler siblings
        # and the client may start its next transfer, all at this instant;
        # defer so the cascade is repaired by one batched transition.
        self._defer += 1
        try:
            flow.future.resolve(flow)
        finally:
            self._defer -= 1
        self._transition(flow.nic.host_id, flow.proxy_id)

    def _on_flow_added(self, flow: Flow) -> None:
        """Subclass hook: ``flow`` just joined the active set and its groups."""

    def _on_flow_removed(self, flow: Flow) -> None:
        """Subclass hook: ``flow`` just left the active set and its groups."""

    def _retire(self, flow: Flow, now: float, completed: bool) -> None:
        del self._active[flow.flow_id]
        host_group = self._by_host.get(flow.nic.host_id)
        if host_group is not None:
            host_group.pop(flow.flow_id, None)
            if not host_group:
                del self._by_host[flow.nic.host_id]
        proxy_group = self._by_proxy.get(flow.proxy_id)
        if proxy_group is not None:
            proxy_group.pop(flow.flow_id, None)
            if not proxy_group:
                del self._by_proxy[flow.proxy_id]
        self._on_flow_removed(flow)
        if self._pending:
            self._pending.pop(flow.flow_id, None)
        if flow._completion is not None:
            flow._completion.cancel()
            flow._completion = None
        flow.nic.release()
        self._dirty_hosts[flow.nic.host_id] = None
        self._dirty_proxies[flow.proxy_id] = None
        if completed:
            flow.remaining = 0.0
            self.completed_flows += 1
            self.bytes_completed += flow.bytes_moved
        else:
            self.abandoned_flows += 1
            self.bytes_abandoned += flow.bytes_moved
        trace = self._trace
        if trace.maxlen is not None and len(trace) == trace.maxlen:
            # The deque evicts the oldest interval on append — O(1), where
            # the old list-shift was O(trace_limit) per retirement.
            self._trace_dropped += 1
        trace.append(
            FlowInterval(
                flow_id=flow.flow_id,
                label=flow.label,
                host_id=flow.nic.host_id,
                proxy_id=flow.proxy_id,
                size_bytes=int(flow.size_bytes),
                started_at=flow.started_at,
                ended_at=now,
                completed=completed,
                bytes_moved=flow.bytes_moved,
            )
        )
        tracer = self.tracer
        if tracer is not None:
            tracer.record(
                "net.flow",
                flow.started_at,
                now,
                parent=flow.parent_span,
                label=flow.label,
                host=flow.nic.host_id,
                proxy=flow.proxy_id,
                bytes=flow.bytes_moved,
                completed=completed,
            )


class ReferenceFlowNetwork(FlowNetwork):
    """Global-recompute arbiter: the pre-incremental O(active²) sweep.

    Numerically identical to :class:`FlowNetwork` — every transition visits
    *all* active flows, but a flow outside the touched groups recomputes the
    same rate and is skipped without settling, exactly as the incremental
    arbiter skips it without visiting.  It also keeps the original *eager*
    cancel+reschedule completion events, making it the differential baseline
    for the lazy-deadline timers as well as for the group indexing.  Kept as
    the byte-for-byte reference for the differential tests and as the
    baseline the perf harness measures the other arbiters against.
    """

    def _affected_flows(
        self, hosts: dict[str, None], proxies: dict[str, None]
    ) -> list[Flow]:
        return list(self._active.values())

    def _aim(self, flow: Flow, finish: float, sequence: Optional[int] = None) -> None:
        if flow._completion is not None:
            flow._completion.cancel()
        if sequence is None:
            flow._completion = self.loop.schedule_at(
                finish, lambda f=flow: self._complete(f), label=flow._finish_label
            )
        else:
            flow._completion = self.loop.queue.push_reserved(
                max(finish, self.loop.clock.now),
                sequence,
                lambda f=flow: self._complete(f),
                label=flow._finish_label,
            )


class _SlotGroup:
    """Contiguous slot-index array for one bottleneck group (numpy arbiter).

    Maintained incrementally — join appends, leave swap-removes — so the
    gather side of a batched settlement is a ready-made index array instead
    of a per-transition rebuild.  Order within the array is arbitrary;
    settlement orders by flow id for deterministic event scheduling.
    """

    __slots__ = ("slots", "count", "_pos")

    def __init__(self) -> None:
        self.slots: Any = _np.empty(8, dtype=_np.intp)
        self.count = 0
        self._pos: dict[int, int] = {}

    def add(self, slot: int) -> None:
        if self.count == len(self.slots):
            grown = _np.empty(2 * len(self.slots), dtype=_np.intp)
            grown[: self.count] = self.slots
            self.slots = grown
        self.slots[self.count] = slot
        self._pos[slot] = self.count
        self.count += 1

    def remove(self, slot: int) -> None:
        index = self._pos.pop(slot)
        last = self.count - 1
        if index != last:
            moved = int(self.slots[last])
            self.slots[index] = moved
            self._pos[moved] = index
        self.count -= 1

    @property
    def view(self) -> Any:
        """The live prefix of the slot array."""
        return self.slots[: self.count]


class VectorizedFlowNetwork(FlowNetwork):
    """Numpy batch-settlement arbiter: flow state lives in contiguous arrays.

    Per-flow state (remaining bytes, rate, last-settle time, bandwidth cap)
    is mirrored into structure-of-arrays storage indexed by a recycled
    *slot* per active flow, and every bottleneck group keeps an
    incrementally maintained slot-index array (:class:`_SlotGroup`).  A
    transition gathers the touched groups, refreshes their cached fair
    shares, recomputes rates, settles, and derives finish times as a
    handful of elementwise numpy kernels; Python is re-entered only for the
    flows whose rate actually changed (to update their scalar mirrors and
    re-aim their completion timers).

    Every arithmetic step is the same IEEE-754 double operation the scalar
    arbiters perform, applied per element, so settled byte counts and
    finish times — and the replay/golden fingerprints built from them —
    are byte-identical to the ``incremental`` and ``reference`` arbiters.
    The :class:`Flow` objects remain the authoritative externally-visible
    state: their ``remaining``/``rate_bps``/``last_progress_at`` mirrors
    are written back at exactly the points the scalar arbiters write them.

    Requires numpy (the ``[perf]`` extra); :func:`resolve_arbiter` falls
    back to the scalar incremental arbiter when it is missing.
    """

    def __init__(
        self,
        loop: EventLoop,
        fabric: NetworkFabric,
        trace_limit: Optional[int] = None,
    ) -> None:
        if _np is None:  # pragma: no cover - resolve_arbiter guards this
            raise SimulationError("the vectorized flow arbiter requires numpy")
        super().__init__(loop, fabric, trace_limit=trace_limit)
        capacity = 64
        self._rem: Any = _np.zeros(capacity)
        self._rate_arr: Any = _np.zeros(capacity)
        self._last: Any = _np.zeros(capacity)
        self._fbw: Any = _np.zeros(capacity)
        #: Cached fair share of each flow's host NIC / proxy uplink, indexed
        #: by slot.  A share changes only when its group's occupancy does,
        #: and every occupancy change dirties that group, so the refresh in
        #: ``_transition`` keeps these exact without per-flow recomputes.
        self._hshare: Any = _np.zeros(capacity)
        self._pshare: Any = _np.zeros(capacity)
        self._fid: Any = _np.zeros(capacity, dtype=_np.int64)
        self._slot_flow: list[Optional[Flow]] = [None] * capacity
        self._slot_of: dict[int, int] = {}
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self._host_groups: dict[str, _SlotGroup] = {}
        self._proxy_groups: dict[str, _SlotGroup] = {}

    def _grow(self) -> None:
        old_capacity = len(self._slot_flow)
        self._rem = _np.concatenate([self._rem, _np.zeros(old_capacity)])
        self._rate_arr = _np.concatenate([self._rate_arr, _np.zeros(old_capacity)])
        self._last = _np.concatenate([self._last, _np.zeros(old_capacity)])
        self._fbw = _np.concatenate([self._fbw, _np.zeros(old_capacity)])
        self._hshare = _np.concatenate([self._hshare, _np.zeros(old_capacity)])
        self._pshare = _np.concatenate([self._pshare, _np.zeros(old_capacity)])
        self._fid = _np.concatenate(
            [self._fid, _np.zeros(old_capacity, dtype=_np.int64)]
        )
        self._slot_flow.extend([None] * old_capacity)
        self._free.extend(range(2 * old_capacity - 1, old_capacity - 1, -1))

    def _on_flow_added(self, flow: Flow) -> None:
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self._slot_of[flow.flow_id] = slot
        self._slot_flow[slot] = flow
        self._rem[slot] = flow.remaining
        self._rate_arr[slot] = 0.0
        self._last[slot] = flow.last_progress_at
        self._fbw[slot] = flow.function_bandwidth_bps
        self._fid[slot] = flow.flow_id
        self._host_groups.setdefault(flow.nic.host_id, _SlotGroup()).add(slot)
        self._proxy_groups.setdefault(flow.proxy_id, _SlotGroup()).add(slot)

    def _on_flow_removed(self, flow: Flow) -> None:
        slot = self._slot_of.pop(flow.flow_id)
        self._slot_flow[slot] = None
        host_group = self._host_groups[flow.nic.host_id]
        host_group.remove(slot)
        if not host_group.count:
            del self._host_groups[flow.nic.host_id]
        proxy_group = self._proxy_groups[flow.proxy_id]
        proxy_group.remove(slot)
        if not proxy_group.count:
            del self._proxy_groups[flow.proxy_id]
        self._free.append(slot)

    def _transition(self, host_id: str, proxy_id: str) -> None:
        if self._defer:
            self._dirty_hosts[host_id] = None
            self._dirty_proxies[proxy_id] = None
            self._reserve_pending()
            return
        profile = self.loop._profile
        if profile is not None:
            transition_started = perf_counter()  # repro: allow[D102] (profiling meter)
        now = self.loop.now
        hosts: dict[str, None] = {host_id: None}
        proxies: dict[str, None] = {proxy_id: None}
        if self._dirty_hosts:
            hosts.update(self._dirty_hosts)
            self._dirty_hosts.clear()
        if self._dirty_proxies:
            proxies.update(self._dirty_proxies)
            self._dirty_proxies.clear()
        # Refresh the cached fair shares of every touched group (a C-level
        # scatter per group) and collect their slot views.
        views = []
        fabric_hosts = self.fabric.hosts
        for touched_host in hosts:
            host_group = self._host_groups.get(touched_host)
            if host_group is not None and host_group.count:
                view = host_group.view
                self._hshare[view] = fabric_hosts[touched_host].effective_bandwidth()
                views.append(view)
        for touched_proxy in proxies:
            proxy_group = self._proxy_groups.get(touched_proxy)
            if proxy_group is not None and proxy_group.count:
                view = proxy_group.view
                self._pshare[view] = self.fabric.proxy_share(proxy_group.count)
                views.append(view)
        if views:
            slots = views[0] if len(views) == 1 else _np.concatenate(views)
            # Order by flow id (deduplicating flows present in both a
            # touched host and a touched proxy group) so completion events
            # are re-aimed in the same order as the scalar arbiters.
            slots = slots[_np.unique(self._fid[slots], return_index=True)[1]]
            new_rates = _np.minimum(
                self._fbw[slots],
                _np.minimum(self._hshare[slots], self._pshare[slots]),
            )
            changed = new_rates != self._rate_arr[slots]
            pending = self._pending
            if pending:
                # Flows whose rate moved during a deferred cascade and moved
                # back still owe a re-push under their reserved sequence.
                changed |= _np.isin(
                    self._fid[slots],
                    _np.fromiter(pending.keys(), dtype=_np.int64, count=len(pending)),
                )
            if changed.any():
                idx = slots[changed]
                rates = new_rates[changed]
                elapsed = now - self._last[idx]
                self._rem[idx] = _np.maximum(
                    0.0, self._rem[idx] - self._rate_arr[idx] * elapsed
                )
                self._last[idx] = now
                self._rate_arr[idx] = rates
                finishes = now + self._rem[idx] / rates
                slot_flow = self._slot_flow
                for slot, remaining, rate, finish in zip(
                    idx.tolist(),
                    self._rem[idx].tolist(),
                    rates.tolist(),
                    finishes.tolist(),
                ):
                    flow = slot_flow[slot]
                    assert flow is not None
                    flow.remaining = remaining
                    flow.rate_bps = rate
                    flow.last_progress_at = now
                    entry = pending.pop(flow.flow_id, None) if pending else None
                    self._aim(flow, finish, entry[1] if entry is not None else None)
        if profile is not None:
            profile.arbiter_transitions += 1
            profile.arbiter_s += perf_counter() - transition_started  # repro: allow[D102] (profiling meter)


def resolve_arbiter(name: str) -> type[FlowNetwork]:
    """Map an ``InfiniCacheConfig.flow_arbiter`` name to an arbiter class.

    ``vectorized`` resolves to the scalar incremental arbiter when numpy is
    not installed — the two are byte-identical, so environments without the
    ``[perf]`` extra run every experiment unchanged, just slower.
    """
    if name == "reference":
        return ReferenceFlowNetwork
    if name == "vectorized" and HAVE_NUMPY:
        return VectorizedFlowNetwork
    if name in ("incremental", "vectorized"):
        return FlowNetwork
    raise SimulationError(
        f"unknown flow arbiter {name!r} (expected one of {ARBITER_NAMES})"
    )

"""A point-to-point network link with latency and bandwidth."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Link:
    """A simple latency + bandwidth pipe.

    Attributes:
        latency_s: one-way propagation/processing latency in seconds (the
            per-message fixed cost: TCP round trip inside a VPC is a fraction
            of a millisecond; invoking a Lambda adds ~13 ms, but that cost is
            modelled by the platform, not the link).
        bandwidth_bps: sustained bandwidth in bytes per second.
    """

    latency_s: float
    bandwidth_bps: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigurationError(f"latency must be non-negative, got {self.latency_s}")
        if self.bandwidth_bps <= 0:
            raise ConfigurationError(f"bandwidth must be positive, got {self.bandwidth_bps}")

    def transfer_time(self, num_bytes: int, effective_bandwidth_bps: float | None = None) -> float:
        """Time to push ``num_bytes`` through the link.

        Args:
            num_bytes: payload size.
            effective_bandwidth_bps: optional override, used when a shared
                NIC divides the nominal bandwidth among concurrent flows.
        """
        if num_bytes < 0:
            raise ConfigurationError(f"cannot transfer a negative byte count {num_bytes}")
        bandwidth = effective_bandwidth_bps or self.bandwidth_bps
        return self.latency_s + num_bytes / bandwidth

    def scaled(self, factor: float) -> "Link":
        """Return a copy of this link with bandwidth multiplied by ``factor``."""
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return Link(latency_s=self.latency_s, bandwidth_bps=self.bandwidth_bps * factor)

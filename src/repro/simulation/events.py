"""Backwards-compatible location of the event queue and loop.

The engine moved to :mod:`repro.sim` (which adds coroutine processes,
futures, and the flow-level network hooks); this module re-exports the
original names — including ``Simulator``, which is the same class as
:class:`repro.sim.loop.EventLoop` — so existing imports keep working.
"""

from repro.sim.loop import Event, EventLoop, EventQueue, PeriodicTask, Simulator

__all__ = ["Event", "EventLoop", "EventQueue", "PeriodicTask", "Simulator"]

"""Backwards-compatible location of :class:`~repro.sim.clock.SimClock`.

The clock (and the rest of the engine) moved to :mod:`repro.sim` when the
event-driven request path landed; this module re-exports it so existing
imports keep working.
"""

from repro.sim.clock import SimClock

__all__ = ["SimClock"]

"""Metric recording primitives shared by the cache, platform, and experiments.

Three small primitives cover everything the paper's figures need:

* :class:`Counter` — monotonically increasing event counts (invocations,
  cache hits, RESETs).
* :class:`Gauge` — a value that moves up and down (bytes cached, pool
  memory in use).
* :class:`TimeSeries` — timestamped samples, used to draw timelines such as
  Figure 13's hourly cost breakdown and Figure 14's fault-tolerance activity.

A :class:`MetricRegistry` groups them under string names so experiments can
introspect whatever the components recorded without threading dozens of
return values around.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterable

from repro.utils.stats import summarize


@dataclass
class Counter:
    """A monotonically increasing counter."""

    name: str
    value: float = 0.0

    def increment(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot be incremented by {amount}")
        self.value += amount

    def reset(self) -> None:
        """Reset the counter to zero (used between experiment phases)."""
        self.value = 0.0


@dataclass
class Gauge:
    """A value that can move in both directions (e.g. bytes currently cached)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta`` (may be negative)."""
        self.value += delta


@dataclass
class TimeSeries:
    """Timestamped samples, kept in insertion order.

    The simulation appends samples with non-decreasing timestamps, which lets
    ``window`` and ``bucket`` use binary search.
    """

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Append one sample at virtual ``time``."""
        if self.times and time < self.times[-1] - 1e-9:
            raise ValueError(
                f"time series {self.name!r} received out-of-order sample at {time} "
                f"(last was {self.times[-1]})"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def window(self, start: float, end: float) -> list[tuple[float, float]]:
        """Return samples with ``start <= time < end``."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        return list(zip(self.times[lo:hi], self.values[lo:hi]))

    def sum_in_window(self, start: float, end: float) -> float:
        """Sum the sample values with ``start <= time < end``."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        return float(sum(self.values[lo:hi]))

    def count_in_window(self, start: float, end: float) -> int:
        """Count samples with ``start <= time < end``."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        return hi - lo

    def bucket(self, bucket_seconds: float, end_time: float | None = None,
               aggregate: str = "sum") -> list[float]:
        """Aggregate samples into fixed-width time buckets.

        Args:
            bucket_seconds: width of each bucket in virtual seconds.
            end_time: horizon; defaults to the last sample's timestamp.
            aggregate: ``"sum"`` or ``"count"``.

        Returns:
            One aggregated value per bucket, covering ``[0, end_time)``.
        """
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        if aggregate not in ("sum", "count"):
            raise ValueError(f"unknown aggregate {aggregate!r}")
        if end_time is None:
            end_time = self.times[-1] if self.times else 0.0
        n_buckets = int(end_time // bucket_seconds) + (1 if end_time % bucket_seconds else 0)
        n_buckets = max(n_buckets, 0)
        results = []
        for i in range(n_buckets):
            start = i * bucket_seconds
            stop = start + bucket_seconds
            if aggregate == "sum":
                results.append(self.sum_in_window(start, stop))
            elif aggregate == "count":
                results.append(float(self.count_in_window(start, stop)))
            else:
                raise ValueError(f"unknown aggregate {aggregate!r}")
        return results

    def summary(self) -> dict[str, float]:
        """Summarise the sample values (count/mean/percentiles)."""
        return summarize(self.values)


class MetricRegistry:
    """A named collection of counters, gauges, and time series."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._series: dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter with this name."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge with this name."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def series(self, name: str) -> TimeSeries:
        """Get or create the time series with this name."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def counters(self) -> dict[str, float]:
        """Snapshot of all counter values."""
        return {name: counter.value for name, counter in sorted(self._counters.items())}

    def gauges(self) -> dict[str, float]:
        """Snapshot of all gauge values."""
        return {name: gauge.value for name, gauge in sorted(self._gauges.items())}

    def series_names(self) -> list[str]:
        """Names of all registered time series."""
        return sorted(self._series)

    def has_series(self, name: str) -> bool:
        """Whether a time series with this name has been created."""
        return name in self._series

    def snapshot(self) -> dict[str, dict]:
        """A JSON-friendly snapshot of everything recorded so far."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "series": {name: len(series) for name, series in sorted(self._series.items())},
        }

"""Metric recording primitives shared by the cache, platform, and experiments.

Three small primitives cover everything the paper's figures need:

* :class:`Counter` — monotonically increasing event counts (invocations,
  cache hits, RESETs).
* :class:`Gauge` — a value that moves up and down (bytes cached, pool
  memory in use).
* :class:`TimeSeries` — timestamped samples, used to draw timelines such as
  Figure 13's hourly cost breakdown and Figure 14's fault-tolerance activity.

A :class:`MetricRegistry` groups them under string names so experiments can
introspect whatever the components recorded without threading dozens of
return values around.  Metrics may carry **labels** (Prometheus-style
key/value dimensions): ``registry.counter("hits", {"tenant": "a"})`` and
``registry.counter("hits", {"tenant": "b"})`` are distinct instruments that
share a family name, and :meth:`MetricRegistry.to_prometheus` renders the
whole registry in the text exposition format.

All recording paths reject NaN and infinities: a single poisoned sample
would silently corrupt every aggregate downstream, so it fails loudly at
the point of entry instead.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.utils.stats import summarize


def _check_finite(value: float, what: str) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{what} must be finite, got {value}")
    return value


def render_labels(labels: Optional[Mapping[str, object]]) -> str:
    """Canonical ``{k="v",...}`` rendering (sorted keys; empty when unlabelled)."""
    if not labels:
        return ""
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return "{" + inner + "}"


@dataclass
class Counter:
    """A monotonically increasing counter."""

    name: str
    value: float = 0.0
    labels: Optional[dict[str, str]] = None

    def increment(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be finite and non-negative) to the counter."""
        amount = _check_finite(amount, f"counter {self.name!r} increment")
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot be incremented by {amount}")
        self.value += amount

    def reset(self) -> None:
        """Reset the counter to zero (used between experiment phases)."""
        self.value = 0.0


@dataclass
class Gauge:
    """A value that can move in both directions (e.g. bytes currently cached)."""

    name: str
    value: float = 0.0
    labels: Optional[dict[str, str]] = None

    def set(self, value: float) -> None:
        """Replace the gauge value (must be finite)."""
        self.value = _check_finite(value, f"gauge {self.name!r} value")

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta`` (may be negative, must be finite)."""
        self.value += _check_finite(delta, f"gauge {self.name!r} delta")


@dataclass
class TimeSeries:
    """Timestamped samples, kept in insertion order.

    The simulation appends samples with non-decreasing timestamps, which lets
    ``window`` and ``bucket`` use binary search.
    """

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    labels: Optional[dict[str, str]] = None

    def record(self, time: float, value: float) -> None:
        """Append one sample at virtual ``time`` (both must be finite)."""
        time = _check_finite(time, f"time series {self.name!r} timestamp")
        value = _check_finite(value, f"time series {self.name!r} value")
        if self.times and time < self.times[-1] - 1e-9:
            raise ValueError(
                f"time series {self.name!r} received out-of-order sample at {time} "
                f"(last was {self.times[-1]})"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def window(self, start: float, end: float) -> list[tuple[float, float]]:
        """Return samples with ``start <= time < end``."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        return list(zip(self.times[lo:hi], self.values[lo:hi]))

    def sum_in_window(self, start: float, end: float) -> float:
        """Sum the sample values with ``start <= time < end``."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        return float(sum(self.values[lo:hi]))

    def count_in_window(self, start: float, end: float) -> int:
        """Count samples with ``start <= time < end``."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        return hi - lo

    def bucket(self, bucket_seconds: float, end_time: float | None = None,
               aggregate: str = "sum") -> list[float]:
        """Aggregate samples into fixed-width time buckets.

        Args:
            bucket_seconds: width of each bucket in virtual seconds.
            end_time: horizon; defaults to the last sample's timestamp.
            aggregate: ``"sum"`` or ``"count"``.

        Returns:
            One aggregated value per bucket, covering ``[0, end_time)``.
        """
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        if aggregate not in ("sum", "count"):
            raise ValueError(f"unknown aggregate {aggregate!r}")
        if end_time is None:
            end_time = self.times[-1] if self.times else 0.0
        n_buckets = int(end_time // bucket_seconds) + (1 if end_time % bucket_seconds else 0)
        n_buckets = max(n_buckets, 0)
        results = []
        for i in range(n_buckets):
            start = i * bucket_seconds
            stop = start + bucket_seconds
            if aggregate == "sum":
                results.append(self.sum_in_window(start, stop))
            elif aggregate == "count":
                results.append(float(self.count_in_window(start, stop)))
            else:
                raise ValueError(f"unknown aggregate {aggregate!r}")
        return results

    def summary(self) -> dict[str, float]:
        """Summarise the sample values (count/mean/percentiles)."""
        return summarize(self.values)


class MetricRegistry:
    """A named collection of counters, gauges, and time series.

    Instruments are keyed by name plus an optional label set; an unlabelled
    instrument keeps its bare name as the key, so pre-label callers (and the
    snapshots they assert on) are unaffected.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._series: dict[str, TimeSeries] = {}

    @staticmethod
    def _key(name: str, labels: Optional[Mapping[str, object]]) -> str:
        return name + render_labels(labels)

    @staticmethod
    def _label_dict(labels: Optional[Mapping[str, object]]) -> Optional[dict[str, str]]:
        if not labels:
            return None
        return {str(key): str(value) for key, value in labels.items()}

    def counter(self, name: str, labels: Optional[Mapping[str, object]] = None) -> Counter:
        """Get or create the counter with this name (and label set)."""
        key = self._key(name, labels)
        if key not in self._counters:
            self._counters[key] = Counter(name, labels=self._label_dict(labels))
        return self._counters[key]

    def gauge(self, name: str, labels: Optional[Mapping[str, object]] = None) -> Gauge:
        """Get or create the gauge with this name (and label set)."""
        key = self._key(name, labels)
        if key not in self._gauges:
            self._gauges[key] = Gauge(name, labels=self._label_dict(labels))
        return self._gauges[key]

    def series(self, name: str, labels: Optional[Mapping[str, object]] = None) -> TimeSeries:
        """Get or create the time series with this name (and label set)."""
        key = self._key(name, labels)
        if key not in self._series:
            self._series[key] = TimeSeries(name, labels=self._label_dict(labels))
        return self._series[key]

    def counters(self) -> dict[str, float]:
        """Snapshot of all counter values."""
        return {name: counter.value for name, counter in sorted(self._counters.items())}

    def gauges(self) -> dict[str, float]:
        """Snapshot of all gauge values."""
        return {name: gauge.value for name, gauge in sorted(self._gauges.items())}

    def series_names(self) -> list[str]:
        """Names of all registered time series."""
        return sorted(self._series)

    def has_series(self, name: str) -> bool:
        """Whether a time series with this name has been created."""
        return name in self._series

    def snapshot(self) -> dict[str, dict]:
        """A JSON-friendly snapshot of everything recorded so far.

        Labelled instruments appear under their rendered key, e.g.
        ``hits{tenant="a"}``, alongside the unlabelled ones.
        """
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "series": {name: len(series) for name, series in sorted(self._series.items())},
        }

    # ------------------------------------------------------------------ exposition
    @staticmethod
    def _prom_name(name: str) -> str:
        """A Prometheus-legal metric name (dots and dashes become underscores)."""
        sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
        if not sanitized or sanitized[0].isdigit():
            sanitized = "_" + sanitized
        return sanitized

    def to_prometheus(self) -> str:
        """Render every instrument in the Prometheus text exposition format.

        Counters and gauges export their value directly; each time series
        exports ``<name>_count``/``<name>_sum``/``<name>_last`` gauges, which
        is what a scrape of a run-in-progress would meaningfully show.
        """
        lines: list[str] = []
        typed: set[str] = set()

        def emit(kind: str, name: str, labels: Optional[Mapping[str, object]],
                 value: float) -> None:
            prom = self._prom_name(name)
            if prom not in typed:
                typed.add(prom)
                lines.append(f"# TYPE {prom} {kind}")
            lines.append(f"{prom}{render_labels(labels)} {value!r}")

        for counter in sorted(self._counters.values(), key=lambda c: self._key(c.name, c.labels)):
            emit("counter", counter.name, counter.labels, counter.value)
        for gauge in sorted(self._gauges.values(), key=lambda g: self._key(g.name, g.labels)):
            emit("gauge", gauge.name, gauge.labels, gauge.value)
        for series in sorted(self._series.values(), key=lambda s: self._key(s.name, s.labels)):
            emit("gauge", series.name + "_count", series.labels, float(len(series)))
            emit("gauge", series.name + "_sum", series.labels, float(sum(series.values)))
            if series.values:
                emit("gauge", series.name + "_last", series.labels, series.values[-1])
        return "\n".join(lines) + ("\n" if lines else "")

"""Discrete-event simulation engine.

The InfiniCache reproduction runs on a simulated AWS substrate rather than a
real cloud, so everything time-dependent (invocation latency, chunk
transfers, warm-up timers, function reclamation) is driven by a shared
virtual clock and event queue defined here.

Design notes
------------
* The engine is a classic event-list simulator: callbacks are scheduled at
  absolute virtual times and executed in time order.  Components never sleep;
  they schedule.
* For request/response paths that are easier to express sequentially (e.g.
  "invoke the Lambda, wait for the chunk, then decode"), the cache layer uses
  :class:`~repro.simulation.clock.SimClock.advance` style accounting instead
  of full coroutine processes.  Both styles share the same clock so costs,
  timelines, and reclamation events line up.
"""

from repro.simulation.clock import SimClock
from repro.simulation.events import Event, EventQueue, Simulator
from repro.simulation.metrics import Counter, Gauge, MetricRegistry, TimeSeries

__all__ = [
    "SimClock",
    "Event",
    "EventQueue",
    "Simulator",
    "Counter",
    "Gauge",
    "MetricRegistry",
    "TimeSeries",
]

"""Backwards-compatible facade over the :mod:`repro.sim` engine plus metrics.

The discrete-event engine (clock, event queue, loop, timers, processes)
lives in :mod:`repro.sim`; metric primitives stay here.  This package
re-exports both sets of names so code written against the original
``repro.simulation`` layout keeps working unchanged.
"""

from repro.sim.clock import SimClock
from repro.sim.loop import Event, EventLoop, EventQueue, PeriodicTask, Simulator
from repro.simulation.metrics import Counter, Gauge, MetricRegistry, TimeSeries

__all__ = [
    "SimClock",
    "Event",
    "EventLoop",
    "EventQueue",
    "PeriodicTask",
    "Simulator",
    "Counter",
    "Gauge",
    "MetricRegistry",
    "TimeSeries",
]

"""Reed-Solomon erasure coding, written from scratch on GF(2^8).

The paper's client library erasure-codes every object with a configurable
``RS(d + p)`` code (10+1 and 10+2 in most experiments) and reconstructs it
from the *first d* chunks that arrive.  This package provides the same
capability:

* :mod:`repro.erasure.galois` — GF(2^8) arithmetic with numpy table lookups.
* :mod:`repro.erasure.matrix` — matrix algebra over GF(2^8), including the
  systematic Vandermonde-derived encoding matrix and Gaussian-elimination
  inversion used for decoding.
* :mod:`repro.erasure.reed_solomon` — the stripe-level encoder/decoder.
* :mod:`repro.erasure.codec` — the object-level codec (padding, chunk
  identifiers, first-d reconstruction) that the client library uses.

The special case ``p == 0`` mirrors the paper's ``(10+0)`` baseline: the
object is striped without parity and every chunk is required to decode.
"""

from repro.erasure.galois import GF256
from repro.erasure.matrix import GFMatrix
from repro.erasure.reed_solomon import ReedSolomon
from repro.erasure.codec import Chunk, ErasureCodec, StripeMetadata

__all__ = [
    "GF256",
    "GFMatrix",
    "ReedSolomon",
    "Chunk",
    "ErasureCodec",
    "StripeMetadata",
]

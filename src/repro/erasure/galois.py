"""GF(2^8) finite-field arithmetic.

Reed-Solomon coding works over a finite field; we use GF(2^8) with the
AES/ISA-L polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D), the same field
used by the Go ``reedsolomon`` library the paper builds on.  Multiplication
and division go through exp/log tables; bulk operations on chunk payloads are
vectorised with numpy take-style table lookups so encoding 100 MB objects in
tests stays fast.
"""

from __future__ import annotations

import numpy as np

#: The primitive polynomial for GF(2^8): x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLYNOMIAL = 0x11D

#: Field size.
FIELD_SIZE = 256


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build exp/log tables for GF(2^8) using generator element 2."""
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLYNOMIAL
    # Duplicate the table so exp[a + b] works without a modulo for a, b < 255.
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    return exp, log


_EXP_TABLE, _LOG_TABLE = _build_tables()

#: 256x256 multiplication table; row r is "multiply every byte by r".
_MUL_TABLE = np.zeros((256, 256), dtype=np.uint8)
for _a in range(1, 256):
    _log_a = _LOG_TABLE[_a]
    _MUL_TABLE[_a, 1:] = _EXP_TABLE[_log_a + _LOG_TABLE[1:256]]


class GF256:
    """Arithmetic over GF(2^8).

    All methods are static/class-level; the class exists purely as a
    namespace with precomputed tables.  Scalars are Python ints in [0, 255];
    vectors are ``numpy.uint8`` arrays.
    """

    exp_table = _EXP_TABLE
    log_table = _LOG_TABLE
    mul_table = _MUL_TABLE

    @staticmethod
    def add(a: int, b: int) -> int:
        """Field addition (XOR)."""
        return (a ^ b) & 0xFF

    @staticmethod
    def subtract(a: int, b: int) -> int:
        """Field subtraction — identical to addition in characteristic 2."""
        return (a ^ b) & 0xFF

    @staticmethod
    def multiply(a: int, b: int) -> int:
        """Field multiplication via log/exp tables."""
        if a == 0 or b == 0:
            return 0
        return int(_EXP_TABLE[_LOG_TABLE[a] + _LOG_TABLE[b]])

    @staticmethod
    def divide(a: int, b: int) -> int:
        """Field division ``a / b``.

        Raises:
            ZeroDivisionError: if ``b`` is zero.
        """
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^8)")
        if a == 0:
            return 0
        return int(_EXP_TABLE[(_LOG_TABLE[a] - _LOG_TABLE[b]) % 255])

    @staticmethod
    def power(a: int, n: int) -> int:
        """Field exponentiation ``a ** n`` (n >= 0)."""
        if n == 0:
            return 1
        if a == 0:
            return 0
        return int(_EXP_TABLE[(_LOG_TABLE[a] * n) % 255])

    @staticmethod
    def inverse(a: int) -> int:
        """Multiplicative inverse of ``a``.

        Raises:
            ZeroDivisionError: if ``a`` is zero (zero has no inverse).
        """
        if a == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse in GF(2^8)")
        return int(_EXP_TABLE[255 - _LOG_TABLE[a]])

    @staticmethod
    def multiply_vector(scalar: int, vector: np.ndarray) -> np.ndarray:
        """Multiply every byte of ``vector`` by ``scalar`` (vectorised)."""
        if scalar == 0:
            return np.zeros_like(vector)
        if scalar == 1:
            return vector.copy()
        return _MUL_TABLE[scalar][vector]

    @staticmethod
    def add_vectors(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Add (XOR) two byte vectors elementwise."""
        return np.bitwise_xor(a, b)

    @staticmethod
    def multiply_accumulate(accumulator: np.ndarray, scalar: int, vector: np.ndarray) -> None:
        """In place: ``accumulator ^= scalar * vector`` (the encoder hot loop)."""
        if scalar == 0:
            return
        if scalar == 1:
            np.bitwise_xor(accumulator, vector, out=accumulator)
            return
        np.bitwise_xor(accumulator, _MUL_TABLE[scalar][vector], out=accumulator)

"""Object-level erasure codec: bytes <-> named, placeable chunks.

The client library hands this codec a whole object (arbitrary length bytes)
and gets back ``d + p`` chunks, each carrying the identifier scheme from the
paper (``IDobj_chunk`` = object key + chunk sequence number).  The codec
handles padding (objects rarely divide evenly into ``d`` shards), records the
original length in the stripe metadata, and reconstructs the object from any
``d`` chunks — which is exactly what the first-d optimisation needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.erasure.reed_solomon import ReedSolomon
from repro.exceptions import DecodingError, EncodingError


@dataclass(frozen=True)
class StripeMetadata:
    """Everything needed to reassemble an object from its chunks."""

    key: str
    object_size: int
    data_shards: int
    parity_shards: int
    chunk_size: int

    @property
    def total_shards(self) -> int:
        """Total number of chunks in the stripe."""
        return self.data_shards + self.parity_shards


@dataclass(frozen=True)
class Chunk:
    """One erasure-coded chunk of an object.

    ``chunk_id`` follows the paper's naming: the object key concatenated with
    the chunk's sequence number, so chunks of the same object are
    distinguishable anywhere in the system.
    """

    key: str
    index: int
    payload: bytes
    metadata: StripeMetadata

    @property
    def chunk_id(self) -> str:
        """Globally unique identifier for this chunk (``key#index``)."""
        return f"{self.key}#{self.index}"

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.payload)

    @property
    def is_parity(self) -> bool:
        """Whether this chunk is a parity chunk (index >= d)."""
        return self.index >= self.metadata.data_shards


class ErasureCodec:
    """Encode objects into chunks and decode chunks back into objects."""

    def __init__(self, data_shards: int, parity_shards: int):
        # Codecs with the same geometry share one ReedSolomon instance —
        # one encoding matrix and one decode-matrix LRU across every client,
        # proxy, and repair path (there is one codec per client at fleet
        # scale, so per-instance matrices would be pure duplication).
        self.rs = ReedSolomon.shared(data_shards, parity_shards)
        self.data_shards = data_shards
        self.parity_shards = parity_shards

    def __repr__(self) -> str:
        return f"ErasureCodec(RS({self.data_shards}+{self.parity_shards}))"

    @property
    def total_shards(self) -> int:
        """Number of chunks produced per object."""
        return self.rs.total_shards

    def chunk_size_for(self, object_size: int) -> int:
        """Size in bytes of each chunk for an object of ``object_size`` bytes."""
        if object_size <= 0:
            raise EncodingError(f"object size must be positive, got {object_size}")
        return -(-object_size // self.data_shards)  # ceiling division

    def storage_overhead(self) -> float:
        """Ratio of stored bytes to object bytes, e.g. 1.2 for RS(10+2)."""
        return self.total_shards / self.data_shards

    # --- encode -------------------------------------------------------------------
    def encode(self, key: str, payload: bytes) -> list[Chunk]:
        """Split and encode ``payload`` into ``d + p`` chunks.

        The payload is zero-padded up to a multiple of ``d`` so every shard
        has the same length; the true length is carried in the metadata and
        re-applied on decode.
        """
        if not key:
            raise EncodingError("object key must be non-empty")
        if len(payload) == 0:
            raise EncodingError(f"cannot encode empty object {key!r}")
        chunk_size = self.chunk_size_for(len(payload))
        padded_length = chunk_size * self.data_shards
        padded = payload + b"\x00" * (padded_length - len(payload))
        data_shards = [
            padded[i * chunk_size : (i + 1) * chunk_size] for i in range(self.data_shards)
        ]
        stripe = self.rs.encode(data_shards)
        metadata = StripeMetadata(
            key=key,
            object_size=len(payload),
            data_shards=self.data_shards,
            parity_shards=self.parity_shards,
            chunk_size=chunk_size,
        )
        return [
            Chunk(key=key, index=i, payload=stripe[i], metadata=metadata)
            for i in range(self.total_shards)
        ]

    # --- decode -------------------------------------------------------------------
    def decode(self, chunks: list[Chunk]) -> bytes:
        """Reconstruct the original object from any ``d`` (or more) chunks.

        Raises:
            DecodingError: if chunks belong to different objects, indices are
                duplicated with conflicting payloads, or fewer than ``d``
                distinct chunks are supplied.
        """
        if not chunks:
            raise DecodingError("no chunks supplied")
        metadata = chunks[0].metadata
        key = chunks[0].key
        shard_map: dict[int, bytes] = {}
        for chunk in chunks:
            if chunk.key != key:
                raise DecodingError(
                    f"chunks from different objects supplied: {key!r} and {chunk.key!r}"
                )
            if chunk.metadata != metadata:
                raise DecodingError(f"inconsistent stripe metadata for object {key!r}")
            existing = shard_map.get(chunk.index)
            if existing is not None and existing != chunk.payload:
                raise DecodingError(
                    f"conflicting payloads for chunk {chunk.chunk_id!r}"
                )
            shard_map[chunk.index] = chunk.payload
        data_shards = self.rs.decode(shard_map)
        padded = b"".join(data_shards)
        return padded[: metadata.object_size]

    def needs_decoding(self, chunks: list[Chunk]) -> bool:
        """Whether reconstruction requires RS math (any data chunk missing).

        The proxy's first-d streaming means the client frequently receives a
        mix of data and parity chunks; when all data chunks are present the
        reconstruction is a simple concatenation.  Experiments use this to
        charge the decode CPU cost only when it is actually incurred.
        """
        present = {chunk.index for chunk in chunks}
        return not all(i in present for i in range(self.data_shards))

    def rebuild_missing(self, chunks: list[Chunk]) -> list[Chunk]:
        """Regenerate the full stripe (used by the recovery / RESET path)."""
        if not chunks:
            raise DecodingError("no chunks supplied")
        metadata = chunks[0].metadata
        shard_map = {chunk.index: chunk.payload for chunk in chunks}
        stripe = self.rs.reconstruct_all(shard_map)
        return [
            Chunk(key=metadata.key, index=i, payload=stripe[i], metadata=metadata)
            for i in range(len(stripe))
        ]

"""Stripe-level Reed-Solomon encoder/decoder.

A *stripe* is a fixed set of equal-length shards: ``data_shards`` holding the
original bytes and ``parity_shards`` holding redundancy.  Any ``data_shards``
of the ``data_shards + parity_shards`` total are sufficient to reconstruct
everything — the MDS property the paper relies on to tolerate up to ``p``
reclaimed Lambda nodes per object.

The object-level concerns (padding, chunk identifiers, the ``(10+0)``
no-parity baseline) live in :mod:`repro.erasure.codec`; this module is pure
stripe math.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.erasure.matrix import GFMatrix
from repro.exceptions import ConfigurationError, DecodingError, EncodingError

#: The largest shard counts we allow.  GF(2^8) Vandermonde-based systematic
#: codes are safe well beyond this, but the paper never exceeds 24 shards
#: (its "aggressive" example is RS(20+4)).
MAX_TOTAL_SHARDS = 256

#: Per-instance bound on cached decode matrices.  There are at most
#: C(total, data) missing-shard patterns; in practice a handful recur
#: (reclamation takes out the same nodes for many objects), so a small LRU
#: captures nearly all repeat inversions.
DECODE_MATRIX_CACHE_SIZE = 128


class ReedSolomon:
    """A systematic Reed-Solomon code ``RS(data_shards + parity_shards)``.

    Instances are immutable and reusable across objects; the encoding matrix
    is computed once in the constructor.  ``parity_shards == 0`` is allowed
    and degenerates to plain striping (the paper's ``(10+0)`` baseline).
    """

    def __init__(self, data_shards: int, parity_shards: int):
        if data_shards < 1:
            raise ConfigurationError(f"data_shards must be >= 1, got {data_shards}")
        if parity_shards < 0:
            raise ConfigurationError(f"parity_shards must be >= 0, got {parity_shards}")
        total = data_shards + parity_shards
        if total > MAX_TOTAL_SHARDS:
            raise ConfigurationError(
                f"data_shards + parity_shards must be <= {MAX_TOTAL_SHARDS}, got {total}"
            )
        self.data_shards = data_shards
        self.parity_shards = parity_shards
        self.total_shards = total
        if parity_shards > 0:
            self._matrix = GFMatrix.systematic_encoding_matrix(data_shards, parity_shards)
            self._parity_matrix = self._matrix.submatrix_rows(
                list(range(data_shards, total))
            )
        else:
            self._matrix = GFMatrix.identity(data_shards)
            self._parity_matrix = None
        #: LRU of inverted decode submatrices keyed by the surviving-shard
        #: pattern; every request that lost the same shards reuses the same
        #: inversion instead of re-running the GF(2^8) Gaussian elimination.
        self._decode_matrices: OrderedDict[tuple[int, ...], GFMatrix] = OrderedDict()

    def __repr__(self) -> str:
        return f"ReedSolomon(d={self.data_shards}, p={self.parity_shards})"

    # --- encoding ----------------------------------------------------------------
    def encode(self, data_shard_payloads: list[bytes]) -> list[bytes]:
        """Compute parity shards for the given data shards.

        Args:
            data_shard_payloads: exactly ``data_shards`` byte strings, all the
                same length.

        Returns:
            The full stripe: the original data shards (unchanged, the code is
            systematic) followed by ``parity_shards`` parity shards.
        """
        if len(data_shard_payloads) != self.data_shards:
            raise EncodingError(
                f"expected {self.data_shards} data shards, got {len(data_shard_payloads)}"
            )
        lengths = {len(shard) for shard in data_shard_payloads}
        if len(lengths) != 1:
            raise EncodingError(f"data shards must all have the same length, got {sorted(lengths)}")
        shard_len = lengths.pop()
        if shard_len == 0:
            raise EncodingError("data shards must be non-empty")
        if self.parity_shards == 0:
            return list(data_shard_payloads)
        stacked = np.frombuffer(b"".join(data_shard_payloads), dtype=np.uint8).reshape(
            self.data_shards, shard_len
        )
        parity = self._parity_matrix.multiply_rows_into(stacked)
        return list(data_shard_payloads) + [parity[i].tobytes() for i in range(self.parity_shards)]

    # --- decoding ----------------------------------------------------------------
    def decode(self, shards: dict[int, bytes]) -> list[bytes]:
        """Reconstruct all data shards from any ``data_shards`` available shards.

        Args:
            shards: mapping from shard index (0-based over the whole stripe)
                to its payload.  At least ``data_shards`` distinct entries are
                required; extra entries are ignored (the first ``data_shards``
                by index are used).

        Returns:
            The ``data_shards`` reconstructed data payloads, in order.

        Raises:
            DecodingError: if fewer than ``data_shards`` shards are available,
                indices are out of range, or payload lengths are inconsistent.
        """
        if not shards:
            raise DecodingError("no shards supplied")
        for index in shards:
            if not 0 <= index < self.total_shards:
                raise DecodingError(
                    f"shard index {index} out of range for a {self.total_shards}-shard stripe"
                )
        if len(shards) < self.data_shards:
            raise DecodingError(
                f"need at least {self.data_shards} shards to decode, got {len(shards)}"
            )
        lengths = {len(payload) for payload in shards.values()}
        if len(lengths) != 1:
            raise DecodingError(f"shards must all have the same length, got {sorted(lengths)}")
        shard_len = lengths.pop()
        if shard_len == 0:
            raise DecodingError("shards must be non-empty")

        # Fast path: every data shard is present (systematic code).
        if all(i in shards for i in range(self.data_shards)):
            return [shards[i] for i in range(self.data_shards)]

        if self.parity_shards == 0:
            missing = [i for i in range(self.data_shards) if i not in shards]
            raise DecodingError(
                f"stripe has no parity and data shards {missing} are missing"
            )

        selected_indices = sorted(shards)[: self.data_shards]
        decode_matrix = self._decode_matrix(tuple(selected_indices))
        stacked = np.frombuffer(
            b"".join(shards[i] for i in selected_indices), dtype=np.uint8
        ).reshape(self.data_shards, shard_len)
        reconstructed = decode_matrix.multiply_rows_into(stacked)
        return [reconstructed[i].tobytes() for i in range(self.data_shards)]

    def _decode_matrix(self, selected_indices: tuple[int, ...]) -> GFMatrix:
        """The inverted decode submatrix for one surviving-shard pattern (LRU)."""
        cached = self._decode_matrices.get(selected_indices)
        if cached is not None:
            self._decode_matrices.move_to_end(selected_indices)
            return cached
        matrix = self._matrix.submatrix_rows(list(selected_indices)).inverse()
        self._decode_matrices[selected_indices] = matrix
        if len(self._decode_matrices) > DECODE_MATRIX_CACHE_SIZE:
            self._decode_matrices.popitem(last=False)
        return matrix

    def reconstruct_all(self, shards: dict[int, bytes]) -> list[bytes]:
        """Reconstruct the *entire* stripe (data + parity) from any d shards.

        Used by the recovery path when a reclaimed Lambda node's chunk must be
        regenerated and re-inserted.
        """
        data = self.decode(shards)
        return self.encode(data)

    @classmethod
    def shared(cls, data_shards: int, parity_shards: int) -> "ReedSolomon":
        """A process-wide shared instance for ``(data_shards, parity_shards)``.

        Instances are stateless apart from their caches, so every codec with
        the same geometry can reuse one — sharing the encoding matrix *and*
        the decode-matrix LRU across all proxies, clients, and repair paths.
        """
        key = (data_shards, parity_shards)
        instance = _SHARED_CODES.get(key)
        if instance is None:
            instance = cls(data_shards, parity_shards)
            _SHARED_CODES[key] = instance
        return instance

    def verify(self, shards: list[bytes]) -> bool:
        """Check that a full stripe is internally consistent.

        Returns ``True`` when re-encoding the data shards reproduces the given
        parity shards exactly.
        """
        if len(shards) != self.total_shards:
            raise DecodingError(
                f"verify requires all {self.total_shards} shards, got {len(shards)}"
            )
        recomputed = self.encode(shards[: self.data_shards])
        return all(
            recomputed[i] == shards[i]
            for i in range(self.data_shards, self.total_shards)
        )


#: Registry behind :meth:`ReedSolomon.shared`; geometries are few (the paper
#: uses a handful of (d, p) pairs), so this never needs eviction.
_SHARED_CODES: dict[tuple[int, int], ReedSolomon] = {}

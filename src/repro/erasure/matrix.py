"""Matrix algebra over GF(2^8).

The Reed-Solomon encoder needs a systematic ``(d + p) x d`` encoding matrix
whose every ``d x d`` submatrix is invertible; decoding needs to invert the
submatrix corresponding to whichever ``d`` chunks survived.  Both are
provided here on top of :class:`~repro.erasure.galois.GF256`.

The construction follows the standard approach used by production RS
libraries: build an extended Vandermonde matrix, then row-reduce it so the
top ``d`` rows form the identity (making the code systematic — data chunks
are stored verbatim, which lets the first-d fast path skip decoding when all
data chunks arrive).
"""

from __future__ import annotations

import numpy as np

from repro.erasure.galois import GF256
from repro.exceptions import ErasureCodingError


class GFMatrix:
    """A dense matrix over GF(2^8), stored as a ``numpy.uint8`` array."""

    def __init__(self, data: np.ndarray):
        array = np.asarray(data, dtype=np.uint8)
        if array.ndim != 2:
            raise ErasureCodingError(f"GFMatrix requires a 2-D array, got shape {array.shape}")
        self.data = array

    # --- constructors ---------------------------------------------------------
    @classmethod
    def identity(cls, n: int) -> "GFMatrix":
        """The n x n identity matrix."""
        return cls(np.eye(n, dtype=np.uint8))

    @classmethod
    def vandermonde(cls, rows: int, cols: int) -> "GFMatrix":
        """The ``rows x cols`` Vandermonde matrix with element (r, c) = r^c."""
        data = np.zeros((rows, cols), dtype=np.uint8)
        for r in range(rows):
            for c in range(cols):
                data[r, c] = GF256.power(r, c)
        return cls(data)

    @classmethod
    def systematic_encoding_matrix(cls, data_shards: int, parity_shards: int) -> "GFMatrix":
        """Build the systematic encoding matrix for ``RS(data + parity)``.

        The result has shape ``(data+parity) x data``: the top block is the
        identity (data chunks pass through unchanged) and the bottom block
        holds the parity coefficients.  Every square submatrix formed by any
        ``data`` rows is invertible, which is the property that makes any
        ``data`` surviving chunks sufficient for reconstruction.
        """
        total = data_shards + parity_shards
        vandermonde = cls.vandermonde(total, data_shards)
        # Row-reduce so the top d x d block becomes the identity.  Multiplying
        # by the inverse of the top block preserves the MDS property.
        top = vandermonde.submatrix_rows(list(range(data_shards)))
        top_inverse = top.inverse()
        return vandermonde.multiply(top_inverse)

    # --- shape and access ------------------------------------------------------
    @property
    def rows(self) -> int:
        """Number of rows."""
        return self.data.shape[0]

    @property
    def cols(self) -> int:
        """Number of columns."""
        return self.data.shape[1]

    def submatrix_rows(self, row_indices: list[int]) -> "GFMatrix":
        """Return a new matrix containing only the selected rows, in order."""
        return GFMatrix(self.data[row_indices, :])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GFMatrix) and np.array_equal(self.data, other.data)

    def __repr__(self) -> str:
        return f"GFMatrix(shape={self.data.shape})"

    # --- algebra ----------------------------------------------------------------
    def multiply(self, other: "GFMatrix") -> "GFMatrix":
        """Matrix product ``self @ other`` over GF(2^8)."""
        if self.cols != other.rows:
            raise ErasureCodingError(
                f"cannot multiply {self.rows}x{self.cols} by {other.rows}x{other.cols}"
            )
        result = np.zeros((self.rows, other.cols), dtype=np.uint8)
        for i in range(self.rows):
            for k in range(self.cols):
                coefficient = int(self.data[i, k])
                if coefficient == 0:
                    continue
                GF256.multiply_accumulate(result[i], coefficient, other.data[k])
        return GFMatrix(result)

    def multiply_rows_into(self, shards: np.ndarray) -> np.ndarray:
        """Apply the matrix to a stack of shard payloads.

        Args:
            shards: array of shape ``(cols, shard_len)`` holding one input
                shard per matrix column.

        Returns:
            Array of shape ``(rows, shard_len)``: one output shard per matrix
            row.  This is the encoder/decoder hot path and is fully
            vectorised along the shard length.
        """
        if shards.shape[0] != self.cols:
            raise ErasureCodingError(
                f"matrix has {self.cols} columns but {shards.shape[0]} shards were supplied"
            )
        shard_len = shards.shape[1]
        output = np.zeros((self.rows, shard_len), dtype=np.uint8)
        for i in range(self.rows):
            row = self.data[i]
            for k in range(self.cols):
                GF256.multiply_accumulate(output[i], int(row[k]), shards[k])
        return output

    def inverse(self) -> "GFMatrix":
        """Invert a square matrix by Gauss-Jordan elimination over GF(2^8).

        Raises:
            ErasureCodingError: if the matrix is not square or is singular
                (which for a correctly built RS code can only happen if the
                caller selected duplicate rows).
        """
        if self.rows != self.cols:
            raise ErasureCodingError(
                f"only square matrices can be inverted, got {self.rows}x{self.cols}"
            )
        n = self.rows
        work = np.concatenate(
            [self.data.astype(np.uint8), np.eye(n, dtype=np.uint8)], axis=1
        )
        for col in range(n):
            # Find a pivot row with a non-zero entry in this column.
            pivot = None
            for row in range(col, n):
                if work[row, col] != 0:
                    pivot = row
                    break
            if pivot is None:
                raise ErasureCodingError("matrix is singular and cannot be inverted")
            if pivot != col:
                work[[col, pivot]] = work[[pivot, col]]
            # Normalise the pivot row so the pivot becomes 1.
            pivot_value = int(work[col, col])
            if pivot_value != 1:
                inverse_pivot = GF256.inverse(pivot_value)
                work[col] = GF256.multiply_vector(inverse_pivot, work[col])
            # Eliminate the column from every other row.
            for row in range(n):
                if row == col:
                    continue
                factor = int(work[row, col])
                if factor:
                    GF256.multiply_accumulate(work[row], factor, work[col])
        return GFMatrix(work[:, n:])

"""Declarative scenario engine: spec → grid → parallel deterministic runs.

The icarus-style experiment orchestration layer (ROADMAP item 1): frozen
scenario specifications (:mod:`repro.scenarios.spec`), a registry of
pluggable data collectors (:mod:`repro.scenarios.collectors`), a runner
that expands a grid and executes every ``(cell, replication)`` serially or
across a ``spawn`` process pool with byte-identical fingerprints either way
(:mod:`repro.scenarios.runner`), and a built-in scenario library beyond the
paper's figures (:mod:`repro.scenarios.library`).

The ``cluster_scale`` and ``autoscale_policies`` experiments execute
through this package (:mod:`repro.scenarios.cluster`); their golden
fingerprints pin that the port changed nothing.
"""

from repro.scenarios.collectors import DATA_COLLECTORS, register_collector
from repro.scenarios.execute import ScenarioOutcome, execute_cell
from repro.scenarios.runner import CellResult, GridResult, ScenarioRunner, run_grid
from repro.scenarios.spec import (
    Axis,
    ClusterScenarioSpec,
    ClusterSpec,
    FixedObjectSize,
    ScenarioCell,
    ScenarioGrid,
    ScenarioSpec,
    TenantShare,
    TenantSpec,
    default_tenants,
)

__all__ = [
    "Axis",
    "CellResult",
    "ClusterScenarioSpec",
    "ClusterSpec",
    "DATA_COLLECTORS",
    "FixedObjectSize",
    "GridResult",
    "ScenarioCell",
    "ScenarioGrid",
    "ScenarioOutcome",
    "ScenarioRunner",
    "ScenarioSpec",
    "TenantShare",
    "TenantSpec",
    "default_tenants",
    "execute_cell",
    "register_collector",
    "run_grid",
]

"""The scenario runner: expand a grid, execute every (cell, replication).

Execution units are independent by construction — each gets a child seed
derived in the **parent** from the grid name, the base seed, and the cell's
coordinate key (never from the expansion index or the worker that happens
to pick it up) — so serial and ``multiprocessing`` runs produce
byte-identical per-cell fingerprints and metric digests.  The differential
suite (``tests/test_scenarios_differential.py``) pins exactly that.

Parallel mode uses the ``spawn`` start method (the only one that is safe
with an imported simulation stack on every platform); the worker entry
point :func:`_run_unit` is a top-level function and every payload/result a
picklable dataclass.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.experiments.harness import ExperimentHarness
from repro.scenarios.collectors import metric_digest, resolve_collectors
from repro.scenarios.execute import execute_cell
from repro.scenarios.spec import ScenarioCell, ScenarioGrid

__all__ = ["CellResult", "GridResult", "ScenarioRunner", "run_grid"]


@dataclass(frozen=True)
class _WorkUnit:
    """One (cell, replication) execution, fully described and picklable."""

    cell: ScenarioCell
    replication: int
    seed: int
    collector_names: tuple[str, ...]


@dataclass(frozen=True)
class CellResult:
    """What one (cell, replication) produced — picklable, digest-pinned."""

    cell_index: int
    cell_key: str
    replication: int
    seed: int
    #: The replay driver's deterministic fingerprint for this unit.
    fingerprint: str
    #: ``collector -> metric -> value``.
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)
    #: ``collector -> sha256[:16]`` over the rounded metric dict.
    digests: dict[str, str] = field(default_factory=dict)

    def flat_metrics(self) -> dict[str, float]:
        """``<collector>.<metric>`` → value, for tables and JSON."""
        return {
            f"{collector}.{metric}": value
            for collector, metrics in sorted(self.metrics.items())
            for metric, value in sorted(metrics.items())
        }


def _run_unit(unit: _WorkUnit) -> CellResult:
    """Spawn-safe worker entry point: execute one unit start to finish."""
    outcome = execute_cell(unit.cell.spec, unit.seed)
    collectors = resolve_collectors(unit.collector_names)
    metrics = {name: fn(outcome) for name, fn in collectors.items()}
    return CellResult(
        cell_index=unit.cell.index,
        cell_key=unit.cell.key(),
        replication=unit.replication,
        seed=unit.seed,
        fingerprint=outcome.report.fingerprint(),
        metrics=metrics,
        digests={name: metric_digest(m) for name, m in metrics.items()},
    )


@dataclass
class GridResult:
    """Every unit result of one grid run, plus the derived summary."""

    grid_name: str
    seed: int
    parallel: int
    cells: list[ScenarioCell]
    results: list[CellResult]

    def results_for(self, cell_key: str) -> list[CellResult]:
        return [r for r in self.results if r.cell_key == cell_key]

    def fingerprints(self) -> dict[str, str]:
        """``"<cell key>#<replication>"`` → replay fingerprint (pinnable)."""
        return {
            f"{result.cell_key}#{result.replication}": result.fingerprint
            for result in self.results
        }

    def summary_rows(self) -> list[dict[str, object]]:
        """Per-cell rows averaging every flat metric over replications."""
        rows: list[dict[str, object]] = []
        for cell in self.cells:
            reps = self.results_for(cell.key())
            if not reps:
                continue
            row: dict[str, object] = {"cell": cell.key()}
            row.update(dict(cell.coords))
            totals: dict[str, list[float]] = {}
            for result in reps:
                for metric, value in result.flat_metrics().items():
                    totals.setdefault(metric, []).append(value)
            for metric, values in sorted(totals.items()):
                row[metric] = sum(values) / len(values)
            row["replications"] = len(reps)
            rows.append(row)
        return rows

    def to_json(self) -> dict[str, object]:
        """The grid summary document (``repro scenarios run --output``)."""
        return {
            "schema": "repro.scenarios.grid_summary/v1",
            "grid": self.grid_name,
            "seed": self.seed,
            "parallel": self.parallel,
            "cells": len(self.cells),
            "replications_per_cell": (
                len(self.results) // len(self.cells) if self.cells else 0
            ),
            "fingerprints": self.fingerprints(),
            "digests": {
                f"{r.cell_key}#{r.replication}": dict(sorted(r.digests.items()))
                for r in self.results
            },
            "summary": self.summary_rows(),
        }

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")


class ScenarioRunner:
    """Expand a :class:`ScenarioGrid` and run every unit, serially or not.

    ``parallel=1`` executes in-process (and is the reference ordering);
    ``parallel=N`` fans units out over an N-worker spawn pool.  Seeds are
    derived up front in the parent, so the two modes are interchangeable —
    the result list is canonically ordered by ``(cell_index, replication)``
    either way.
    """

    def __init__(self, grid: ScenarioGrid, seed: int = 2020):
        self.grid = grid
        self.seed = seed
        self.harness = ExperimentHarness(f"scenarios.{grid.name}", seed)

    def work_units(self) -> list[_WorkUnit]:
        cells = self.grid.expand()
        names = tuple(self.grid.collectors)
        return [
            _WorkUnit(
                cell=cell,
                replication=rep,
                # The coordinate key — not the expansion index — feeds the
                # seed, so adding/reordering unrelated axis values never
                # changes an existing cell's stream.
                seed=self.harness.seed_for("cell", cell.key(), "rep", rep),
                collector_names=names,
            )
            for cell in cells
            for rep in range(self.grid.replications)
        ]

    def run(self, parallel: int = 1) -> GridResult:
        if parallel < 1:
            raise ConfigurationError(f"parallel must be >= 1, got {parallel}")
        units = self.work_units()
        if parallel == 1 or len(units) <= 1:
            results = [_run_unit(unit) for unit in units]
        else:
            context = multiprocessing.get_context("spawn")
            with context.Pool(processes=min(parallel, len(units))) as pool:
                results = pool.map(_run_unit, units)
        results.sort(key=lambda r: (r.cell_index, r.replication))
        return GridResult(
            grid_name=self.grid.name,
            seed=self.seed,
            parallel=parallel,
            cells=self.grid.expand(),
            results=results,
        )


def run_grid(grid: ScenarioGrid, seed: int = 2020, parallel: int = 1) -> GridResult:
    """Convenience wrapper: build a runner and run the whole grid."""
    return ScenarioRunner(grid, seed=seed).run(parallel=parallel)

"""Pluggable data collectors: replay outcome → flat metric dict.

A collector is a function ``(ScenarioOutcome) -> dict[str, float]``; a grid
declares which collectors run by name (``ScenarioGrid.collectors``), and the
runner merges each collector's metrics into the cell result under
``<collector>.<metric>`` keys.  Collector outputs feed both the grid summary
table and the deterministic metric digest that the differential and golden
suites pin, so collectors must be pure functions of the outcome — no clocks,
no ambient randomness.

Register additional collectors with :func:`register_collector`; icarus-style
experiment configs name them in ``DATA_COLLECTORS``.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.exceptions import ConfigurationError
from repro.scenarios.execute import ScenarioOutcome
from repro.utils.stats import percentile

__all__ = [
    "DATA_COLLECTORS",
    "register_collector",
    "resolve_collectors",
    "metric_digest",
]

Collector = Callable[[ScenarioOutcome], dict[str, float]]

#: Name → collector registry; grids reference collectors by these names.
DATA_COLLECTORS: dict[str, Collector] = {}


def register_collector(name: str) -> Callable[[Collector], Collector]:
    """Decorator registering a collector under ``name`` (unique)."""

    def deco(fn: Collector) -> Collector:
        if name in DATA_COLLECTORS:
            raise ConfigurationError(f"collector {name!r} is already registered")
        DATA_COLLECTORS[name] = fn
        return fn

    return deco


def resolve_collectors(names: tuple[str, ...] | list[str]) -> dict[str, Collector]:
    """Resolve collector names, raising on unknowns (typo safety)."""
    unknown = [name for name in names if name not in DATA_COLLECTORS]
    if unknown:
        raise ConfigurationError(
            f"unknown collectors {unknown}; registered: {sorted(DATA_COLLECTORS)}"
        )
    return {name: DATA_COLLECTORS[name] for name in names}


@register_collector("requests")
def _requests(outcome: ScenarioOutcome) -> dict[str, float]:
    report = outcome.report
    return {
        "offered": outcome.extras.get("offered_requests", float(report.requests)),
        "completed": float(report.requests),
        "hits": float(report.hits),
        "misses": float(report.misses),
        "hit_ratio": report.hit_ratio,
        "resets": float(report.resets),
    }


@register_collector("latency")
def _latency(outcome: ScenarioOutcome) -> dict[str, float]:
    latencies = [sample.latency_s for sample in outcome.report.samples]
    if not latencies:
        return {"count": 0.0, "mean_ms": math.nan, "p50_ms": math.nan,
                "p90_ms": math.nan, "p99_ms": math.nan, "max_ms": math.nan}
    return {
        "count": float(len(latencies)),
        "mean_ms": 1e3 * sum(latencies) / len(latencies),
        "p50_ms": 1e3 * percentile(latencies, 50),
        "p90_ms": 1e3 * percentile(latencies, 90),
        "p99_ms": 1e3 * percentile(latencies, 99),
        "max_ms": 1e3 * max(latencies),
    }


@register_collector("cost")
def _cost(outcome: ScenarioOutcome) -> dict[str, float]:
    report = outcome.report
    # Cluster cells bill through the cluster's cost model and surface the
    # total via extras; plain replays carry it on the report.
    total = outcome.extras.get("total_cost", report.total_cost)
    metrics = {"total_usd": total}
    for category, amount in sorted(report.cost_breakdown.items()):
        metrics[f"{category}_usd"] = amount
    return metrics


@register_collector("throughput")
def _throughput(outcome: ScenarioOutcome) -> dict[str, float]:
    report = outcome.report
    return {
        "total_mib": report.total_bytes / 2**20,
        "duration_s": report.duration_s,
        "aggregate_mibps": report.aggregate_throughput_bps / 2**20,
        "peak_active_flows": float(report.peak_active_flows),
    }


@register_collector("resilience")
def _resilience(outcome: ScenarioOutcome) -> dict[str, float]:
    report = outcome.report
    metrics = {
        "recoveries": float(report.recoveries),
        "degraded_hits": float(report.degraded_hits),
    }
    for counter, value in sorted(report.resilience.items()):
        metrics[counter] = value
    return metrics


@register_collector("autoscaling")
def _autoscaling(outcome: ScenarioOutcome) -> dict[str, float]:
    """Pool/quota extras from cluster cells (empty for plain replays)."""
    keys = ("peak_pool_size", "final_pool_size", "throttled", "rejected_puts")
    return {key: outcome.extras[key] for key in keys if key in outcome.extras}


def metric_digest(metrics: dict[str, float]) -> str:
    """Deterministic digest of a collector metric dict.

    Floats are rounded to 9 significant decimal digits via ``repr`` of a
    12-decimal rounding, so the digest is stable across platforms while
    still catching any behavioural drift.
    """
    import hashlib

    parts = []
    for key in sorted(metrics):
        value = metrics[key]
        if isinstance(value, float) and math.isnan(value):
            token = "nan"
        else:
            token = repr(round(float(value), 12))
        parts.append(f"{key}={token}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]

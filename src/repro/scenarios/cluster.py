"""The multi-tenant autoscaling-cluster replay, driven by a scenario spec.

This is the execution body of the ``cluster_scale`` experiment, ported
behind :class:`~repro.scenarios.spec.ClusterScenarioSpec` so the scenario
engine can sweep it (the ``autoscale_policies`` experiment is a one-axis
grid over the autoscaler policy).  The experiment modules in
:mod:`repro.experiments` are now thin wrappers constructing a spec and
calling :func:`run_cluster_scale`; their golden fingerprints pin that the
port is replay-identical.

Several tenants with different working sets and quotas share one
autoscaling cluster; their requests inject **open-loop** at pre-drawn
arrival timestamps, misses RESET through a simulated backing store, and
the report carries per-tenant outcomes, the pool-size timeline, and the
conservation-checked chargeback decomposition of the bill.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.s3 import ObjectStore
from repro.cache.config import InfiniCacheConfig, StragglerModel
from repro.cluster import AutoscalerConfig, InfiniCacheCluster
from repro.exceptions import QuotaExceededError, RateLimitedError
from repro.experiments.harness import ExperimentHarness
from repro.scenarios.spec import ClusterScenarioSpec, TenantSpec, default_tenants
from repro.utils.rng import SeededRNG
from repro.utils.stats import summarize
from repro.utils.units import MIB
from repro.workload.replay import ConcurrentReplayReport, RequestSample

__all__ = [
    "TenantSpec",
    "default_tenants",
    "DEFAULT_POLICIES",
    "TenantOutcome",
    "ClusterScaleResult",
    "run_cluster_scale",
]

#: The autoscaling policies the ``autoscale_policies`` experiment compares,
#: by policy name — also the values of the scenario library's policy axis.
DEFAULT_POLICIES: dict[str, AutoscalerConfig] = {
    "reactive": AutoscalerConfig(interval_s=30.0, policy="reactive"),
    "predictive": AutoscalerConfig(
        interval_s=30.0, policy="predictive", ewma_alpha=0.3,
        target_requests_per_node=1.0,
    ),
    "predictive_trend": AutoscalerConfig(
        interval_s=30.0, policy="predictive_trend", ewma_alpha=0.3,
        trend_beta=0.3, target_requests_per_node=1.0,
    ),
}


@dataclass
class TenantOutcome:
    """Everything measured for one tenant during the replay."""

    tenant_id: str
    requests_issued: int = 0
    hits: int = 0
    misses: int = 0
    throttled: int = 0
    rejected_puts: int = 0
    latencies_s: list[float] = field(default_factory=list)
    bytes_stored: int = 0
    #: GB-seconds of Lambda time the billing pipeline attributed to this
    #: tenant's invocations (serving, warm-up, backup, rebalance, repair).
    billed_gb_seconds: float = 0.0
    #: Dollars charged back to this tenant; all tenants' costs plus the
    #: unattributed remainder sum to the cluster-wide bill.
    billed_cost: float = 0.0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def latency_summary(self) -> dict[str, float]:
        return summarize(self.latencies_s)


@dataclass
class ClusterScaleResult:
    """Outcome of the multi-tenant cluster replay."""

    duration_s: float
    tenants: dict[str, TenantOutcome]
    pool_size_timeline: list[tuple[float, float]]
    initial_pool_size: int
    peak_pool_size: int
    final_pool_size: int
    total_cost: float
    cost_breakdown: dict[str, float]
    counters: dict[str, float]
    #: Full chargeback decomposition of the bill, including the
    #: ``UNATTRIBUTED_TENANT`` row for maintenance no tenant caused.
    chargeback: dict[str, dict[str, float]] = field(default_factory=dict)
    #: The open-loop driver's report (request samples + flow intervals).
    replay_report: ConcurrentReplayReport | None = None
    #: Driver fingerprints (golden differential suite).
    fingerprints: dict[str, str] = field(default_factory=dict)

    @property
    def chargeback_total_cost(self) -> float:
        """Sum of the chargeback rows — equals ``total_cost`` (conservation)."""
        return sum(row["cost"] for row in self.chargeback.values())


def run_cluster_scale(
    spec: ClusterScenarioSpec,
    seed: int = 2020,
    harness: ExperimentHarness | None = None,
) -> ClusterScaleResult:
    """Replay the spec's tenant mix against an autoscaling cluster.

    The RNG stream layout, config construction, and request coroutines are
    byte-identical to the pre-port ``cluster_scale.run`` — the committed
    golden fingerprints pin this.
    """
    harness = harness or ExperimentHarness("cluster_scale", seed)
    specs = list(spec.tenants)
    duration_s = spec.duration_s
    config = InfiniCacheConfig(
        num_proxies=spec.num_proxies,
        lambdas_per_proxy=spec.lambdas_per_proxy,
        lambda_memory_bytes=spec.lambda_memory_mib * MIB,
        data_shards=spec.data_shards,
        parity_shards=spec.parity_shards,
        min_lambdas_per_proxy=spec.min_lambdas_per_proxy,
        max_lambdas_per_proxy=spec.max_lambdas_per_proxy,
        straggler=StragglerModel(probability=0.0),
        # Open-loop replays retire thousands of transfer intervals; the
        # experiment only consumes aggregate flow statistics, so retain a
        # bounded window instead of the whole run (peak/throughput numbers
        # are maintained independently of the retained trace).
        flow_trace_limit=spec.flow_trace_limit,
        seed=seed,
    )
    cluster = InfiniCacheCluster(config, autoscaler_config=spec.autoscaler)
    cluster.start()
    backing_store = ObjectStore()

    rng = SeededRNG(seed).child("cluster_scale")
    clients = {ts.tenant_id: cluster.register_tenant(ts.tenant_id, ts.quota)
               for ts in specs}
    outcomes = {ts.tenant_id: TenantOutcome(ts.tenant_id) for ts in specs}

    # All tenants' requests interleave in timestamp order on one event loop;
    # keys are pre-drawn in arrival order so the schedule (and the RNG
    # stream) is identical however the in-flight requests overlap.
    schedule: list[tuple[float, TenantSpec]] = []
    for ts in specs:
        tenant_rng = rng.child(ts.tenant_id)
        times = sorted(tenant_rng.uniform(0.0, duration_s) for _ in range(ts.requests))
        schedule.extend((time, ts) for time in times)
    schedule.sort(key=lambda item: item[0])
    key_rngs = {ts.tenant_id: rng.child(ts.tenant_id, "keys") for ts in specs}
    keyed_schedule: list[tuple[float, TenantSpec, str]] = []
    for timestamp, ts in schedule:
        rank = key_rngs[ts.tenant_id].bounded_zipf(ts.num_objects, ts.zipf_exponent)
        keyed_schedule.append((timestamp, ts, f"obj-{rank:05d}"))

    env = cluster.deployment.request_env
    loop = cluster.simulator
    report = ConcurrentReplayReport(
        system="infinicache-cluster", mode="open-loop", clients=len(specs),
    )

    def request_process(ts: TenantSpec, key: str):
        outcome = outcomes[ts.tenant_id]
        client = clients[ts.tenant_id]
        start = env.now
        outcome.requests_issued += 1
        report.requests += 1
        try:
            result = yield from client.get_process(key, env)
        except RateLimitedError:
            outcome.throttled += 1
            return
        if result.hit:
            outcome.hits += 1
            report.hits += 1
            report.total_bytes += result.size
            outcome.latencies_s.append(result.latency_s)
            report.samples.append(RequestSample(
                client_id=ts.tenant_id, key=key, size=ts.object_size,
                started_at=start, finished_at=env.now, hit=True,
                recovery=result.recovery_performed,
                hosts_touched=result.hosts_touched,
            ))
            return
        outcome.misses += 1
        report.misses += 1
        reset = result.data_lost
        if reset:
            report.resets += 1
        # RESET: fetch from the backing store and re-insert (quota permitting).
        backing_store.put(f"{ts.tenant_id}/{key}", ts.object_size)
        _size, store_latency = backing_store.get(f"{ts.tenant_id}/{key}")
        yield store_latency
        try:
            yield from client.put_sized_process(key, ts.object_size, env)
        except QuotaExceededError:
            outcome.rejected_puts += 1
        except RateLimitedError:
            outcome.throttled += 1
        outcome.latencies_s.append(env.now - start)
        report.total_bytes += ts.object_size
        report.samples.append(RequestSample(
            client_id=ts.tenant_id, key=key, size=ts.object_size,
            started_at=start, finished_at=env.now, hit=False, reset=reset,
        ))

    arrivals = [
        (
            timestamp,
            f"cluster_scale.{ts.tenant_id}",
            lambda s=ts, k=key: request_process(s, k),
        )
        for timestamp, ts, key in keyed_schedule
    ]
    driver = harness.open_loop(cluster.deployment, backing_store=backing_store)
    driver.run_schedule(arrivals, report, finalize=False)
    cluster.run_until(max(duration_s, loop.now))
    cluster.stop()
    harness.record("replay", report)

    tenant_report = cluster.tenant_report()
    chargeback = cluster.chargeback_report()
    total_cost = cluster.total_cost()
    for outcome in outcomes.values():
        outcome.bytes_stored = int(tenant_report[outcome.tenant_id]["bytes_stored"])
        row = chargeback.get(outcome.tenant_id, {})
        outcome.billed_gb_seconds = row.get("gb_seconds", 0.0)
        outcome.billed_cost = row.get("cost", 0.0)

    timeline: list[tuple[float, float]] = []
    for proxy_id in sorted(cluster.pool_sizes()):
        series = cluster.metrics.series(f"cluster.pool_size.{proxy_id}")
        timeline.extend(zip(series.times, series.values))
    timeline.sort()
    pool_total_by_time: dict[float, float] = {}
    for time, size in timeline:
        pool_total_by_time[time] = pool_total_by_time.get(time, 0.0) + size
    pool_timeline = sorted(pool_total_by_time.items())
    initial_pool = config.num_proxies * config.lambdas_per_proxy
    sizes = [size for _time, size in pool_timeline] or [float(initial_pool)]

    return ClusterScaleResult(
        duration_s=duration_s,
        tenants=outcomes,
        pool_size_timeline=pool_timeline,
        initial_pool_size=initial_pool,
        peak_pool_size=int(max(sizes)),
        final_pool_size=int(sizes[-1]),
        total_cost=total_cost,
        cost_breakdown=cluster.cost_breakdown(),
        counters=cluster.metrics.counters(),
        chargeback=chargeback,
        replay_report=report,
        fingerprints=harness.fingerprints,
    )

"""Declarative scenario specifications and grid expansion.

A scenario spec is a frozen, validated, picklable description of **one
simulation cell**: the arrival process, the popularity model, the object
sizes, the tenant mix, the cluster geometry, the optional resilience
profile, and the optional fault schedule.  A :class:`ScenarioGrid` declares
axes over those fields and expands into concrete :class:`ScenarioCell`\\ s —
the cartesian product the :class:`~repro.scenarios.runner.ScenarioRunner`
fans out, serially or across processes.

Two spec kinds exist:

* :class:`ScenarioSpec` — a single-deployment workload replay through the
  event-driven drivers (the general scenario shape; hundreds of cells).
* :class:`ClusterScenarioSpec` — the multi-tenant autoscaling-cluster
  replay (the ported ``cluster_scale`` / ``autoscale_policies``
  experiments), executed by :mod:`repro.scenarios.cluster`.

Seeding contract: a cell's identity is its **coordinates** (sorted
``axis=label`` pairs), not its position in the expansion order, so adding
or re-ordering unrelated axis values never moves another cell's seed.  See
:meth:`ScenarioCell.key` and ``docs/scenarios.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace
from typing import Optional, Union

from repro.cache.config import ResilienceConfig
from repro.cluster import AutoscalerConfig, TenantQuota
from repro.exceptions import ConfigurationError
from repro.faults.spec import FaultSchedule
from repro.utils.rng import SeededRNG
from repro.utils.units import MB
from repro.workload.arrivals import (
    ArrivalSpec,
    ClosedLoopArrivals,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.workload.distributions import ObjectSizeDistribution
from repro.workload.popularity import (
    FlashCrowd,
    PopularitySpec,
    ScanMix,
    StaticZipf,
    ZipfChurn,
)

__all__ = [
    "FixedObjectSize",
    "SizeSpec",
    "TenantShare",
    "ClusterSpec",
    "ScenarioSpec",
    "TenantSpec",
    "default_tenants",
    "ClusterScenarioSpec",
    "Axis",
    "ScenarioCell",
    "ScenarioGrid",
]


# ------------------------------------------------------------------ object sizes
@dataclass(frozen=True)
class FixedObjectSize:
    """Every object has the same size (microbenchmark-style cells)."""

    size_bytes: int = 1 * MB

    def __post_init__(self):
        if self.size_bytes < 1:
            raise ConfigurationError("object size must be positive")

    def sample(self, rng: SeededRNG) -> int:
        return self.size_bytes


#: What a scenario may declare for object sizes: a fixed size or the
#: Figure-1 mixture distribution (scenario cells use small-ranged variants).
SizeSpec = Union[FixedObjectSize, ObjectSizeDistribution]


# ------------------------------------------------------------------ tenants & cluster
@dataclass(frozen=True)
class TenantShare:
    """One tenant of a workload scenario: traffic share and catalogue."""

    tenant_id: str = "default"
    #: Relative share of the request stream this tenant receives.
    weight: float = 1.0
    #: Distinct objects in this tenant's catalogue (plus whatever extra
    #: objects the popularity process introduces, e.g. a flash set).
    catalogue_size: int = 48

    def __post_init__(self):
        if not self.tenant_id:
            raise ConfigurationError("tenant_id must be non-empty")
        if "/" in self.tenant_id:
            raise ConfigurationError("tenant_id must not contain '/'")
        if not math.isfinite(self.weight) or self.weight <= 0:
            raise ConfigurationError("tenant weight must be positive and finite")
        if self.catalogue_size < 1:
            raise ConfigurationError("catalogue size must be >= 1")


@dataclass(frozen=True)
class ClusterSpec:
    """Deployment geometry of a workload scenario cell."""

    num_proxies: int = 1
    lambdas_per_proxy: int = 8
    lambda_memory_mib: int = 512
    data_shards: int = 4
    parity_shards: int = 2
    backup_enabled: bool = False

    def __post_init__(self):
        if self.num_proxies < 1 or self.lambdas_per_proxy < 1:
            raise ConfigurationError("cluster geometry must be positive")
        if self.lambda_memory_mib < 128:
            raise ConfigurationError("lambda memory must be at least 128 MiB")
        if self.data_shards < 1 or self.parity_shards < 0:
            raise ConfigurationError("invalid erasure code")
        if self.data_shards + self.parity_shards > self.lambdas_per_proxy:
            raise ConfigurationError("erasure stripe wider than the Lambda pool")


# ------------------------------------------------------------------ workload scenario
@dataclass(frozen=True)
class ScenarioSpec:
    """One single-deployment workload scenario cell, fully declarative."""

    arrival: ArrivalSpec = field(default_factory=PoissonArrivals)
    popularity: PopularitySpec = field(default_factory=StaticZipf)
    object_size: SizeSpec = field(default_factory=FixedObjectSize)
    tenants: tuple[TenantShare, ...] = (TenantShare(),)
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    resilience: Optional[ResilienceConfig] = None
    faults: Optional[FaultSchedule] = None

    def __post_init__(self):
        if not self.tenants:
            raise ConfigurationError("a scenario needs at least one tenant")
        ids = [tenant.tenant_id for tenant in self.tenants]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate tenant ids: {ids}")
        allowed_arrivals = (
            ClosedLoopArrivals, PoissonArrivals, MMPPArrivals, DiurnalArrivals,
        )
        if not isinstance(self.arrival, allowed_arrivals):
            raise ConfigurationError(
                f"unsupported arrival process {type(self.arrival).__name__}"
            )
        allowed_popularity = (StaticZipf, ZipfChurn, FlashCrowd, ScanMix)
        if not isinstance(self.popularity, allowed_popularity):
            raise ConfigurationError(
                f"unsupported popularity process {type(self.popularity).__name__}"
            )
        if not isinstance(self.object_size, (FixedObjectSize, ObjectSizeDistribution)):
            raise ConfigurationError(
                f"unsupported size spec {type(self.object_size).__name__}"
            )
        if self.popularity.time_dependent and isinstance(
            self.arrival, ClosedLoopArrivals
        ):
            raise ConfigurationError(
                f"{type(self.popularity).__name__} evolves with virtual time "
                "and needs timestamped (open-loop) arrivals"
            )
        if self.faults is not None and len(self.faults) and self.resilience is None:
            raise ConfigurationError(
                "a fault schedule needs a resilience profile so requests can "
                "complete during the faults (pass resilience=...)"
            )


# ------------------------------------------------------------------ cluster scenario
@dataclass(frozen=True)
class TenantSpec:
    """Workload and quota description of one tenant of a cluster replay."""

    tenant_id: str
    requests: int
    num_objects: int
    object_size: int
    zipf_exponent: float = 0.9
    quota: TenantQuota = field(default_factory=TenantQuota)

    def __post_init__(self):
        if not self.tenant_id:
            raise ConfigurationError("tenant_id must be non-empty")
        if self.requests < 1 or self.num_objects < 1 or self.object_size < 1:
            raise ConfigurationError(
                "tenant requests, num_objects and object_size must be positive"
            )
        if not math.isfinite(self.zipf_exponent) or self.zipf_exponent <= 0:
            raise ConfigurationError("Zipf exponent must be positive and finite")


def default_tenants(requests_per_tenant: int = 300) -> list[TenantSpec]:
    """The canonical three-tenant mix of the ``cluster_scale`` experiment:
    an unconstrained ``media`` tenant supplying memory pressure, a
    rate-limited ``api`` tenant, and a byte-capped ``batch`` tenant."""
    return [
        TenantSpec(
            tenant_id="media",
            requests=requests_per_tenant,
            num_objects=120,
            object_size=12 * MB,
        ),
        TenantSpec(
            tenant_id="api",
            requests=requests_per_tenant,
            num_objects=10,
            object_size=1 * MB,
            quota=TenantQuota(max_requests_per_s=1.0, burst_requests=5),
        ),
        TenantSpec(
            tenant_id="batch",
            requests=requests_per_tenant,
            num_objects=40,
            object_size=10 * MB,
            quota=TenantQuota(max_bytes=120 * MB),
        ),
    ]


@dataclass(frozen=True)
class ClusterScenarioSpec:
    """The multi-tenant autoscaling-cluster replay as a scenario spec.

    Field defaults reproduce the ``cluster_scale`` experiment exactly —
    the ported experiments are thin wrappers constructing this spec, and
    their golden fingerprints pin that the port changed nothing.
    """

    tenants: tuple[TenantSpec, ...] = field(
        default_factory=lambda: tuple(default_tenants())
    )
    duration_s: float = 600.0
    autoscaler: AutoscalerConfig = field(
        default_factory=lambda: AutoscalerConfig(interval_s=30.0)
    )
    num_proxies: int = 2
    lambdas_per_proxy: int = 8
    lambda_memory_mib: int = 192
    data_shards: int = 4
    parity_shards: int = 2
    min_lambdas_per_proxy: int = 6
    max_lambdas_per_proxy: int = 48
    flow_trace_limit: int = 512

    def __post_init__(self):
        if not self.tenants:
            raise ConfigurationError("a cluster scenario needs at least one tenant")
        ids = [tenant.tenant_id for tenant in self.tenants]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate tenant ids: {ids}")
        if not math.isfinite(self.duration_s) or self.duration_s <= 0:
            raise ConfigurationError("duration must be positive and finite")


#: Everything a grid cell may be.
CellSpec = Union[ScenarioSpec, ClusterScenarioSpec]


# ------------------------------------------------------------------ grid expansion
@dataclass(frozen=True)
class Axis:
    """One grid axis: labelled values substituted into a spec field.

    ``values`` are ``(label, value)`` pairs; the label names the coordinate
    in reports, JSON summaries, and the cell's seed-derivation key, so it
    must be unique within the axis and stable across code changes.
    """

    name: str
    values: tuple[tuple[str, object], ...]
    #: The spec field the value replaces; defaults to the axis name.
    spec_field: str = ""

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("axis name must be non-empty")
        if any(ch in self.name for ch in "=,"):
            raise ConfigurationError("axis name must not contain '=' or ','")
        if not self.values:
            raise ConfigurationError(f"axis {self.name!r} needs at least one value")
        labels = [label for label, _value in self.values]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(f"axis {self.name!r} has duplicate labels")
        for label in labels:
            if not label or any(ch in label for ch in "=,"):
                raise ConfigurationError(
                    f"axis {self.name!r} label {label!r} must be non-empty and "
                    "free of '=' and ','"
                )
        if not self.spec_field:
            object.__setattr__(self, "spec_field", self.name)


@dataclass(frozen=True)
class ScenarioCell:
    """One concrete cell of an expanded grid."""

    index: int
    #: ``(axis name, value label)`` in the grid's axis order.
    coords: tuple[tuple[str, str], ...]
    spec: CellSpec

    def key(self) -> str:
        """Canonical coordinate key, independent of axis declaration order.

        This string — not :attr:`index` — feeds seed derivation, so
        re-ordering axes (or the values of unrelated axes) never changes an
        existing cell's replication seeds.
        """
        return ",".join(
            f"{name}={label}" for name, label in sorted(self.coords)
        )

    def label(self) -> str:
        """Human-facing cell label in declaration order."""
        return "/".join(label for _name, label in self.coords) or "(base)"


@dataclass(frozen=True)
class ScenarioGrid:
    """A named grid: a base spec plus axes of labelled substitutions."""

    name: str
    base: CellSpec
    axes: tuple[Axis, ...] = ()
    #: Independent replications per cell (each gets its own child seed).
    replications: int = 2
    #: Data-collector names (see :mod:`repro.scenarios.collectors`).
    collectors: tuple[str, ...] = ("requests", "latency", "cost", "throughput")
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("grid name must be non-empty")
        if self.replications < 1:
            raise ConfigurationError("replications must be >= 1")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate axis names: {names}")
        spec_fields = {f.name for f in fields(type(self.base))}
        for axis in self.axes:
            if axis.spec_field not in spec_fields:
                raise ConfigurationError(
                    f"axis {axis.name!r} targets unknown spec field "
                    f"{axis.spec_field!r} on {type(self.base).__name__}"
                )
        if not self.collectors:
            raise ConfigurationError("a grid needs at least one collector")
        # Fail at declaration time, not mid-run: every cell must validate.
        self.expand()

    def expand(self) -> list[ScenarioCell]:
        """The cartesian product of the axes, in deterministic order.

        Cells are ordered with the **last** axis varying fastest (odometer
        order over the declared axes); each cell's spec is the base with
        every axis value substituted via :func:`dataclasses.replace`.
        """
        cells: list[tuple[tuple[tuple[str, str], ...], CellSpec]] = [((), self.base)]
        for axis in self.axes:
            cells = [
                (coords + ((axis.name, label),), replace(spec, **{axis.spec_field: value}))
                for coords, spec in cells
                for label, value in axis.values
            ]
        return [
            ScenarioCell(index=index, coords=coords, spec=spec)
            for index, (coords, spec) in enumerate(cells)
        ]

    @property
    def cell_count(self) -> int:
        count = 1
        for axis in self.axes:
            count *= len(axis.values)
        return count

    @property
    def run_count(self) -> int:
        """Total simulations one full run executes."""
        return self.cell_count * self.replications

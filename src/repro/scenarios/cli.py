"""``python -m repro scenarios`` — the declarative scenario engine CLI.

Subcommands:

* ``list`` — every registered grid with cell/replication counts;
* ``describe NAME`` — the grid's axes, cells, and collector set;
* ``run NAME [--parallel N] [--seed N] [--replications N] [--output PATH]``
  — expand and execute the grid, print the summary table, and optionally
  write the grid summary JSON (fingerprints + collector digests + rows).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.exceptions import ConfigurationError
from repro.experiments.report import format_table
from repro.scenarios.library import SCENARIOS, get_grid
from repro.scenarios.runner import GridResult, ScenarioRunner

__all__ = ["main"]

#: Summary-table columns (flat metric keys) shown by ``run``; everything
#: else still lands in ``--output`` JSON.
_TABLE_METRICS = (
    "requests.completed",
    "requests.hit_ratio",
    "latency.p50_ms",
    "latency.p99_ms",
    "cost.total_usd",
)


def _list(_args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(SCENARIOS):
        grid = SCENARIOS[name]
        rows.append([
            name,
            grid.cell_count,
            grid.replications,
            grid.run_count,
            grid.description,
        ])
    print(format_table(
        ["scenario", "cells", "reps", "runs", "description"],
        rows,
        title="Scenario library",
    ))
    return 0


def _describe(args: argparse.Namespace) -> int:
    grid = get_grid(args.name)
    print(f"scenario: {grid.name}")
    print(f"  {grid.description}")
    print(f"  base spec: {type(grid.base).__name__}")
    print(f"  collectors: {', '.join(grid.collectors)}")
    print(f"  replications per cell: {grid.replications}")
    if grid.axes:
        print("  axes:")
        for axis in grid.axes:
            labels = ", ".join(label for label, _value in axis.values)
            print(f"    {axis.name} -> {axis.spec_field}: {labels}")
    print(f"  cells ({grid.cell_count}):")
    for cell in grid.expand():
        print(f"    [{cell.index:3d}] {cell.key() or '(base)'}")
    return 0


def _print_summary(result: GridResult) -> None:
    rows = []
    for row in result.summary_rows():
        rows.append(
            [row["cell"] or "(base)"]
            + [row.get(metric, float("nan")) for metric in _TABLE_METRICS]
            + [row["replications"]]
        )
    headers = ["cell"] + [metric.split(".", 1)[1] for metric in _TABLE_METRICS] + ["reps"]
    print(format_table(
        headers, rows,
        title=f"Scenario grid: {result.grid_name} "
        f"(seed={result.seed}, parallel={result.parallel})",
    ))


def _run(args: argparse.Namespace) -> int:
    grid = get_grid(args.name)
    if args.replications is not None:
        grid = replace(grid, replications=args.replications)
    runner = ScenarioRunner(grid, seed=args.seed)
    print(
        f"running {grid.name}: {grid.cell_count} cells x "
        f"{grid.replications} replications = {grid.run_count} simulations "
        f"(parallel={args.parallel})"
    )
    result = runner.run(parallel=args.parallel)
    _print_summary(result)
    if args.fingerprints:
        print("\nper-unit fingerprints:")
        for unit, digest in sorted(result.fingerprints().items()):
            print(f"  {unit or '(base)'}: {digest}")
    if args.output:
        result.write_json(args.output)
        print(f"\n(wrote {args.output})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro scenarios",
        description="Declarative scenario grids over the simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the scenario library")

    describe = sub.add_parser("describe", help="show a grid's axes and cells")
    describe.add_argument("name", help="scenario name (see `list`)")

    run = sub.add_parser("run", help="expand and execute a grid")
    run.add_argument("name", help="scenario name (see `list`)")
    run.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="worker processes (spawn pool; default: 1 = in-process)",
    )
    run.add_argument(
        "--seed", type=int, default=2020, help="base seed (default: 2020)",
    )
    run.add_argument(
        "--replications", type=int, default=None, metavar="N",
        help="override the grid's replications per cell",
    )
    run.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the grid summary JSON (fingerprints, digests, rows)",
    )
    run.add_argument(
        "--fingerprints", action="store_true",
        help="also print every unit's replay fingerprint",
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _list(args)
        if args.command == "describe":
            return _describe(args)
        return _run(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())

"""The built-in scenario library: named grids beyond the paper's figures.

Each entry is a fully-declared :class:`~repro.scenarios.spec.ScenarioGrid`;
``repro scenarios list`` prints this registry and ``repro scenarios run
<name>`` executes one.  The library deliberately stresses regimes the
paper's experiments do not: popularity churn, MMPP/diurnal burstiness,
flash crowds over unseen objects, scan-resistance, multi-tenant
interference, and fault windows under the hardened request path.

Cells are sized to finish in seconds — grids exist to map trends across a
cartesian product, not to produce publication-length runs; scale a grid up
by editing its base spec (``docs/scenarios.md`` walks through it).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.faults.scenario import demo_resilience
from repro.faults.spec import FaultSchedule, InvocationFaults, ReclamationStorm
from repro.scenarios.cluster import DEFAULT_POLICIES, default_tenants
from repro.scenarios.spec import (
    Axis,
    ClusterScenarioSpec,
    FixedObjectSize,
    ScenarioGrid,
    ScenarioSpec,
    TenantShare,
)
from repro.utils.units import KB, MB
from repro.workload.arrivals import (
    ClosedLoopArrivals,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.workload.distributions import ObjectSizeDistribution
from repro.workload.popularity import FlashCrowd, ScanMix, StaticZipf, ZipfChurn

__all__ = ["SCENARIOS", "get_grid", "register_grid"]

#: Name → grid registry backing the ``repro scenarios`` CLI.
SCENARIOS: dict[str, ScenarioGrid] = {}


def register_grid(grid: ScenarioGrid) -> ScenarioGrid:
    if grid.name in SCENARIOS:
        raise ConfigurationError(f"scenario grid {grid.name!r} already registered")
    SCENARIOS[grid.name] = grid
    return grid


def get_grid(name: str) -> ScenarioGrid:
    if name not in SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        )
    return SCENARIOS[name]


# A small mixture distribution for scenario cells: same two-regime shape as
# the Figure-1 model but capped well below 4 GB so a cell replays in seconds.
_SMALL_MIX = ObjectSizeDistribution(
    small_min_bytes=64 * KB,
    small_max_bytes=1 * MB,
    large_min_bytes=1 * MB,
    large_max_bytes=8 * MB,
    large_fraction=0.22,
)


register_grid(ScenarioGrid(
    name="smoke",
    description=(
        "Tiny 2x2 sanity grid (arrival mode x popularity); the differential "
        "serial-vs-parallel suite and the CI smoke job run exactly this."
    ),
    base=ScenarioSpec(
        arrival=PoissonArrivals(rate_rps=1.5, duration_s=40.0),
        popularity=StaticZipf(exponent=0.9),
        object_size=FixedObjectSize(1 * MB),
        tenants=(TenantShare(tenant_id="default", catalogue_size=32),),
    ),
    axes=(
        Axis("arrival", (
            ("poisson", PoissonArrivals(rate_rps=1.5, duration_s=40.0)),
            ("closed", ClosedLoopArrivals(clients=4, requests_per_client=12)),
        )),
        Axis("popularity", (
            ("zipf", StaticZipf(exponent=0.9)),
            ("scan", ScanMix(exponent=0.9, scan_fraction=0.3)),
        )),
    ),
    replications=2,
))


register_grid(ScenarioGrid(
    name="popularity_churn",
    description=(
        "How fast rank churn erodes the hit ratio: static Zipf vs. partial "
        "reshuffles every 30 s / 10 s, at two request rates."
    ),
    base=ScenarioSpec(
        arrival=PoissonArrivals(rate_rps=2.0, duration_s=60.0),
        object_size=FixedObjectSize(1 * MB),
        tenants=(TenantShare(tenant_id="default", catalogue_size=48),),
    ),
    axes=(
        Axis("popularity", (
            ("static", StaticZipf(exponent=0.9)),
            ("churn-30s", ZipfChurn(exponent=0.9, churn_interval_s=30.0,
                                    rotate_fraction=0.25)),
            ("churn-10s", ZipfChurn(exponent=0.9, churn_interval_s=10.0,
                                    rotate_fraction=0.5)),
        )),
        Axis("rate", (
            ("2rps", PoissonArrivals(rate_rps=2.0, duration_s=60.0)),
            ("6rps", PoissonArrivals(rate_rps=6.0, duration_s=60.0)),
        ), spec_field="arrival"),
    ),
    replications=2,
))


register_grid(ScenarioGrid(
    name="bursty_arrivals",
    description=(
        "Arrival-process shapes beyond homogeneous Poisson: 2-state MMPP "
        "bursts and a compressed diurnal cycle, against static vs. churning "
        "popularity."
    ),
    base=ScenarioSpec(
        object_size=FixedObjectSize(1 * MB),
        tenants=(TenantShare(tenant_id="default", catalogue_size=48),),
    ),
    axes=(
        Axis("arrival", (
            ("steady", PoissonArrivals(rate_rps=2.0, duration_s=60.0)),
            ("mmpp", MMPPArrivals(quiet_rate_rps=0.8, burst_rate_rps=8.0,
                                  quiet_dwell_s=20.0, burst_dwell_s=5.0,
                                  duration_s=60.0)),
            ("diurnal", DiurnalArrivals(base_rate_rps=2.0, duration_s=120.0,
                                        start_hour=8.0, peak_hour=14.0,
                                        amplitude=0.6, seconds_per_hour=10.0)),
        )),
        Axis("popularity", (
            ("static", StaticZipf(exponent=0.9)),
            ("churn", ZipfChurn(exponent=0.9, churn_interval_s=20.0,
                                rotate_fraction=0.25)),
        )),
    ),
    replications=2,
))


register_grid(ScenarioGrid(
    name="flash_crowd",
    description=(
        "A thundering herd over previously-unseen objects mid-run: how the "
        "severity of the flash window moves tail latency and the RESET rate."
    ),
    base=ScenarioSpec(
        arrival=PoissonArrivals(rate_rps=3.0, duration_s=60.0),
        object_size=FixedObjectSize(2 * MB),
        tenants=(TenantShare(tenant_id="default", catalogue_size=48),),
    ),
    axes=(
        Axis("popularity", (
            ("baseline", StaticZipf(exponent=0.9)),
            ("mild", FlashCrowd(exponent=0.9, at_s=20.0, duration_s=15.0,
                                flash_fraction=0.4, flash_objects=3)),
            ("severe", FlashCrowd(exponent=0.9, at_s=20.0, duration_s=15.0,
                                  flash_fraction=0.8, flash_objects=2)),
        )),
    ),
    replications=2,
))


register_grid(ScenarioGrid(
    name="scan_resistance",
    description=(
        "Scan-resistance adversary: a sequential one-touch scan interleaved "
        "with Zipf traffic at increasing scan share."
    ),
    base=ScenarioSpec(
        arrival=PoissonArrivals(rate_rps=3.0, duration_s=60.0),
        object_size=FixedObjectSize(1 * MB),
        tenants=(TenantShare(tenant_id="default", catalogue_size=64),),
    ),
    axes=(
        Axis("popularity", (
            ("no-scan", StaticZipf(exponent=1.0)),
            ("scan-20", ScanMix(exponent=1.0, scan_fraction=0.2)),
            ("scan-50", ScanMix(exponent=1.0, scan_fraction=0.5)),
        )),
    ),
    replications=2,
))


register_grid(ScenarioGrid(
    name="fault_windows",
    description=(
        "Fault schedules under the hardened request path: a correlated "
        "reclamation storm and an invocation-fault window, with the "
        "resilience collector reporting retries/hedges/degraded hits."
    ),
    base=ScenarioSpec(
        arrival=PoissonArrivals(rate_rps=2.0, duration_s=60.0),
        object_size=FixedObjectSize(1 * MB),
        tenants=(TenantShare(tenant_id="default", catalogue_size=32),),
        resilience=demo_resilience(),
    ),
    axes=(
        Axis("faults", (
            ("none", None),
            ("storm", FaultSchedule((
                ReclamationStorm(at_s=20.0, fraction=0.5, correlated=True),
            ))),
            ("invoke-faults", FaultSchedule((
                InvocationFaults(at_s=15.0, duration_s=20.0,
                                 failure_probability=0.3),
            ))),
        )),
    ),
    replications=2,
    collectors=("requests", "latency", "cost", "throughput", "resilience"),
))


# The acceptance-grade interference grid: 3 tenant mixes x 2 arrival shapes
# x 2 popularity models x 2 size models = 24 cells, 2 replications each.
_FAIR_MIX = (
    TenantShare(tenant_id="alpha", weight=1.0, catalogue_size=32),
    TenantShare(tenant_id="beta", weight=1.0, catalogue_size=32),
)
_HEAVY_MIX = (
    TenantShare(tenant_id="alpha", weight=3.0, catalogue_size=32),
    TenantShare(tenant_id="beta", weight=1.0, catalogue_size=32),
)
_WIDE_MIX = (
    TenantShare(tenant_id="alpha", weight=1.0, catalogue_size=16),
    TenantShare(tenant_id="beta", weight=1.0, catalogue_size=64),
)
register_grid(ScenarioGrid(
    name="tenant_interference",
    description=(
        "Multi-tenant interference: tenant mixes x arrival burstiness x "
        "popularity churn x size model (24 cells)."
    ),
    base=ScenarioSpec(
        object_size=FixedObjectSize(1 * MB),
        tenants=_FAIR_MIX,
    ),
    axes=(
        Axis("tenants", (
            ("fair", _FAIR_MIX),
            ("heavy-alpha", _HEAVY_MIX),
            ("wide-beta", _WIDE_MIX),
        )),
        Axis("arrival", (
            ("steady", PoissonArrivals(rate_rps=2.0, duration_s=40.0)),
            ("bursty", MMPPArrivals(quiet_rate_rps=0.8, burst_rate_rps=8.0,
                                    quiet_dwell_s=15.0, burst_dwell_s=4.0,
                                    duration_s=40.0)),
        )),
        Axis("popularity", (
            ("static", StaticZipf(exponent=0.9)),
            ("churn", ZipfChurn(exponent=0.9, churn_interval_s=15.0,
                                rotate_fraction=0.25)),
        )),
        Axis("sizes", (
            ("fixed-1mb", FixedObjectSize(1 * MB)),
            ("mixture", _SMALL_MIX),
        ), spec_field="object_size"),
    ),
    replications=2,
))


# ------------------------------------------------------------------ cluster ports
register_grid(ScenarioGrid(
    name="cluster_scale",
    description=(
        "The multi-tenant autoscaling-cluster experiment as a one-cell "
        "scenario (media/api/batch tenants, quotas, chargeback)."
    ),
    base=ClusterScenarioSpec(
        tenants=tuple(default_tenants(40)),
        duration_s=90.0,
    ),
    replications=1,
    collectors=("requests", "latency", "cost", "throughput", "autoscaling"),
))


register_grid(ScenarioGrid(
    name="autoscale_policies",
    description=(
        "Reactive watermarks vs. predictive EWMA (with/without trend) over "
        "the same multi-tenant workload — the autoscale_policies experiment "
        "as a one-axis grid."
    ),
    base=ClusterScenarioSpec(
        tenants=tuple(default_tenants(40)),
        duration_s=90.0,
    ),
    axes=(
        Axis("policy", tuple(DEFAULT_POLICIES.items()), spec_field="autoscaler"),
    ),
    replications=1,
    collectors=("requests", "latency", "cost", "throughput", "autoscaling"),
))

"""Execute one scenario cell: spec + seed → a replay report.

The executor is deliberately **pre-drawing**: every stochastic decision —
arrival times, tenant assignment, object ranks, object sizes — is drawn
from the cell's seeded RNG *before* the replay starts, in arrival order,
so the workload is a pure function of ``(spec, seed)`` and cannot be
perturbed by how in-flight requests interleave on the event loop.  That is
the property that makes per-cell fingerprints byte-identical between
serial and multi-process grid runs.

RNG stream layout (all children of ``SeededRNG(seed).child("scenario")``):

* ``("arrivals",)`` — the arrival process;
* ``("tenant-pick",)`` — the per-request tenant draw (weighted);
* ``(tenant_id, "popularity")`` — the tenant's popularity sampler
  (churn epochs consume a nested ``child("churn")``);
* ``(tenant_id, "sizes")`` — one size per catalogue object, drawn up
  front (an object's size is a property of the object, not the request).

The deployment itself seeds from ``seed`` via ``InfiniCacheConfig.seed``
exactly like every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.s3 import ObjectStore
from repro.cache.config import InfiniCacheConfig
from repro.cache.deployment import InfiniCacheDeployment
from repro.faults.engine import ChaosEngine
from repro.scenarios.spec import CellSpec, ClusterScenarioSpec, ScenarioSpec
from repro.utils.rng import SeededRNG
from repro.utils.units import MIB
from repro.workload.arrivals import ClosedLoopArrivals
from repro.workload.replay import ClosedLoopDriver, ConcurrentReplayReport, OpenLoopDriver

__all__ = ["ScenarioOutcome", "execute_cell"]


@dataclass
class ScenarioOutcome:
    """What one cell execution produced, as the collectors consume it."""

    report: ConcurrentReplayReport
    #: Executor-level extras the report does not carry (collector inputs).
    extras: dict[str, float]


def _build_deployment(spec: ScenarioSpec, seed: int) -> InfiniCacheDeployment:
    cluster = spec.cluster
    config = InfiniCacheConfig(
        num_proxies=cluster.num_proxies,
        lambdas_per_proxy=cluster.lambdas_per_proxy,
        lambda_memory_bytes=cluster.lambda_memory_mib * MIB,
        data_shards=cluster.data_shards,
        parity_shards=cluster.parity_shards,
        backup_enabled=cluster.backup_enabled,
        resilience=spec.resilience,
        flow_trace_limit=512,
        seed=seed,
    )
    deployment = InfiniCacheDeployment(config)
    if spec.faults is not None and len(spec.faults):
        ChaosEngine(deployment, spec.faults).install()
    return deployment


@dataclass(frozen=True)
class _Request:
    """One pre-drawn request of the schedule."""

    at_s: float
    tenant_id: str
    key: str
    size: int


def _draw_schedule(spec: ScenarioSpec, rng: SeededRNG,
                   times: list[float]) -> tuple[list[_Request], dict[str, int]]:
    """Pre-draw tenant, object, and size for every arrival, in time order.

    Returns the request list and the full catalogue (key → size) so the
    backing store can be pre-populated — every object is assumed to exist
    there, as in all the paper's replays.
    """
    tenants = spec.tenants
    weights = [tenant.weight for tenant in tenants]
    total_weight = sum(weights)
    pick_rng = rng.child("tenant-pick")
    samplers = {}
    sizes: dict[str, list[int]] = {}
    catalogue: dict[str, int] = {}
    for tenant in tenants:
        span = tenant.catalogue_size + spec.popularity.extra_objects
        samplers[tenant.tenant_id] = spec.popularity.sampler(
            tenant.catalogue_size, rng.child(tenant.tenant_id, "popularity")
        )
        size_rng = rng.child(tenant.tenant_id, "sizes")
        sizes[tenant.tenant_id] = [
            spec.object_size.sample(size_rng) for _ in range(span)
        ]
        for rank in range(span):
            catalogue[f"{tenant.tenant_id}/obj-{rank:06d}"] = (
                sizes[tenant.tenant_id][rank]
            )

    requests: list[_Request] = []
    for at_s in times:
        u = pick_rng.random() * total_weight if len(tenants) > 1 else 0.0
        cursor = 0.0
        tenant = tenants[-1]
        for candidate, weight in zip(tenants, weights):
            cursor += weight
            if u < cursor:
                tenant = candidate
                break
        rank = samplers[tenant.tenant_id].draw(at_s)
        key = f"{tenant.tenant_id}/obj-{rank:06d}"
        requests.append(_Request(at_s, tenant.tenant_id, key, catalogue[key]))
    return requests, catalogue


def _execute_workload(spec: ScenarioSpec, seed: int) -> ScenarioOutcome:
    deployment = _build_deployment(spec, seed)
    rng = SeededRNG(seed).child("scenario")
    backing_store = ObjectStore()

    if isinstance(spec.arrival, ClosedLoopArrivals):
        # Closed loop: plans are pre-drawn per client in issue order; the
        # popularity clock is frozen at 0 (spec validation rejects
        # time-dependent popularity under closed-loop arrivals).
        arrival = spec.arrival
        times = [0.0] * arrival.total_requests
        requests, catalogue = _draw_schedule(spec, rng, times)
        plans = [
            [(request.key, request.size)
             for request in requests[index::arrival.clients]]
            for index in range(arrival.clients)
        ]
        driver = ClosedLoopDriver(deployment, backing_store=backing_store)
        report = driver.run(plans)
        report.system = "scenario"
    else:
        times = spec.arrival.times(rng.child("arrivals"))
        requests, catalogue = _draw_schedule(spec, rng, times)
        for key, size in catalogue.items():
            backing_store.put(key, size)
        driver = OpenLoopDriver(deployment, backing_store=backing_store)
        report = ConcurrentReplayReport(
            system="scenario", mode="open-loop", clients=len(spec.tenants),
        )
        clients = {
            tenant.tenant_id: deployment.new_client(f"scenario-{tenant.tenant_id}")
            for tenant in spec.tenants
        }
        arrivals = [
            (
                request.at_s,
                f"scenario.{request.tenant_id}",
                lambda r=request: driver._request_process(
                    clients[r.tenant_id], r.tenant_id, r.key, r.size, report
                ),
            )
            for request in requests
        ]
        driver.run_schedule(arrivals, report)

    extras = {
        "catalogue_objects": float(len(catalogue)),
        "offered_requests": float(len(requests)),
    }
    return ScenarioOutcome(report=report, extras=extras)


def execute_cell(spec: CellSpec, seed: int) -> ScenarioOutcome:
    """Run one cell to completion and return its outcome (picklable inputs).

    Dispatches on the spec kind; cluster scenarios delegate to
    :func:`repro.scenarios.cluster.run_cluster_scale` and expose the
    replay's driver report plus autoscaling extras.
    """
    if isinstance(spec, ScenarioSpec):
        return _execute_workload(spec, seed)
    if isinstance(spec, ClusterScenarioSpec):
        from repro.scenarios.cluster import run_cluster_scale

        result = run_cluster_scale(spec, seed=seed)
        assert result.replay_report is not None
        return ScenarioOutcome(
            report=result.replay_report,
            extras={
                "total_cost": result.total_cost,
                "peak_pool_size": float(result.peak_pool_size),
                "final_pool_size": float(result.final_pool_size),
                "throttled": float(sum(
                    outcome.throttled for outcome in result.tenants.values()
                )),
                "rejected_puts": float(sum(
                    outcome.rejected_puts for outcome in result.tenants.values()
                )),
            },
        )
    raise TypeError(f"unsupported cell spec {type(spec).__name__}")

"""Exception hierarchy for the InfiniCache reproduction.

All library-specific errors derive from :class:`ReproError` so applications
can catch a single base class.  Subsystems raise the most specific subclass
that describes the failure; nothing in the library raises bare ``Exception``.

The hierarchy distinguishes **retryable** from **fatal** failures: anything
deriving from :class:`TransientFaultError` (a reclaimed function, an injected
invocation fault, a chunk timeout, an open circuit breaker, an interrupted
backup sync) describes a condition that a later attempt may not hit again, so
the hardened request path retries it with backoff.  Everything else — config
errors, protocol misuse, unrecoverable data loss — is fatal and propagates.
Use :func:`is_retryable` rather than ``isinstance`` checks so callers stay
agnostic of the concrete fault class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""

    #: Whether a later attempt of the same operation may succeed.  Fatal by
    #: default; :class:`TransientFaultError` flips it for the retryable branch.
    retryable = False


class TransientFaultError(ReproError):
    """A failure a later attempt may not hit again (safe to retry).

    The hardened request path treats every subclass uniformly: back off with
    seeded jitter and re-attempt, up to the configured retry budget.
    """

    retryable = True


def is_retryable(error: BaseException) -> bool:
    """Whether the request path may retry after this error."""
    return bool(getattr(error, "retryable", False))


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event simulation engine detected an inconsistency."""


class ErasureCodingError(ReproError):
    """Base class for erasure-coding failures."""


class EncodingError(ErasureCodingError):
    """An object could not be encoded into chunks."""


class DecodingError(ErasureCodingError):
    """An object could not be reconstructed from the available chunks.

    Raised when fewer than ``d`` distinct chunks of an ``RS(d+p)`` stripe are
    available, or when chunk payloads are inconsistent with the stripe
    metadata.
    """


class CacheError(ReproError):
    """Base class for cache-level failures."""


class CacheMissError(CacheError):
    """The requested key is not present (or not reconstructible) in the cache."""

    def __init__(self, key: str, reason: str = "not found"):
        super().__init__(f"cache miss for key {key!r}: {reason}")
        self.key = key
        self.reason = reason


class ObjectTooLargeError(CacheError):
    """The object cannot fit into the configured Lambda pool."""


class FunctionReclaimedError(TransientFaultError):
    """A simulated Lambda function instance was reclaimed by the provider.

    Retryable: a fresh invocation cold-starts a replacement container, so a
    reclaimed-mid-flight chunk transfer can be re-attempted.
    """

    def __init__(self, function_name: str):
        super().__init__(f"function {function_name!r} was reclaimed by the provider")
        self.function_name = function_name


class InvocationError(ReproError):
    """A simulated Lambda invocation failed (timeout, limit, platform error)."""


class InvocationFaultError(TransientFaultError, InvocationError):
    """An invocation failed transiently (injected fault or provider error)."""

    def __init__(self, function_name: str, reason: str = "injected fault"):
        super().__init__(f"invocation of {function_name!r} failed: {reason}")
        self.function_name = function_name
        self.reason = reason


class ChunkTimeoutError(TransientFaultError):
    """A chunk transfer exceeded its per-chunk deadline (hedge/retry it)."""

    def __init__(self, chunk_id: str, timeout_s: float):
        super().__init__(f"chunk {chunk_id!r} timed out after {timeout_s:g}s")
        self.chunk_id = chunk_id
        self.timeout_s = timeout_s


class CircuitOpenError(TransientFaultError):
    """A per-node circuit breaker is open; the node is presumed unhealthy."""

    def __init__(self, node_id: str):
        super().__init__(f"circuit breaker for node {node_id!r} is open")
        self.node_id = node_id


class ConnectionClosedError(ReproError):
    """A simulated TCP connection between proxy and Lambda node was closed."""


class BackupError(ReproError):
    """The delta-sync backup protocol failed to complete."""


class BackupSyncInterruptedError(TransientFaultError, BackupError):
    """A backup peer failed mid-sync (reclaimed or faulted while delta-syncing).

    Retryable: the next backup round re-invokes a fresh peer and re-sends the
    still-unsynced delta, so losing the peer mid-sync is not a protocol error.
    """

    def __init__(self, node_id: str, reason: str):
        super().__init__(f"backup sync for node {node_id!r} interrupted: {reason}")
        self.node_id = node_id
        self.reason = reason


class WorkloadError(ReproError):
    """A workload trace could not be generated, parsed, or replayed."""


class ClusterError(ReproError):
    """Base class for cluster-orchestration failures (membership, scaling)."""


class TenantError(ClusterError):
    """A tenant was registered or addressed incorrectly."""


class QuotaExceededError(ClusterError):
    """A tenant request would exceed its byte quota."""

    def __init__(self, tenant_id: str, requested: int, limit: int):
        super().__init__(
            f"tenant {tenant_id!r} would store {requested} bytes "
            f"but is limited to {limit}"
        )
        self.tenant_id = tenant_id
        self.requested = requested
        self.limit = limit


class RateLimitedError(ClusterError):
    """A tenant request was throttled by its request-rate quota."""

    def __init__(self, tenant_id: str, rate_limit: float):
        super().__init__(
            f"tenant {tenant_id!r} exceeded its rate quota of "
            f"{rate_limit:g} requests/s"
        )
        self.tenant_id = tenant_id
        self.rate_limit = rate_limit

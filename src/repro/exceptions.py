"""Exception hierarchy for the InfiniCache reproduction.

All library-specific errors derive from :class:`ReproError` so applications
can catch a single base class.  Subsystems raise the most specific subclass
that describes the failure; nothing in the library raises bare ``Exception``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event simulation engine detected an inconsistency."""


class ErasureCodingError(ReproError):
    """Base class for erasure-coding failures."""


class EncodingError(ErasureCodingError):
    """An object could not be encoded into chunks."""


class DecodingError(ErasureCodingError):
    """An object could not be reconstructed from the available chunks.

    Raised when fewer than ``d`` distinct chunks of an ``RS(d+p)`` stripe are
    available, or when chunk payloads are inconsistent with the stripe
    metadata.
    """


class CacheError(ReproError):
    """Base class for cache-level failures."""


class CacheMissError(CacheError):
    """The requested key is not present (or not reconstructible) in the cache."""

    def __init__(self, key: str, reason: str = "not found"):
        super().__init__(f"cache miss for key {key!r}: {reason}")
        self.key = key
        self.reason = reason


class ObjectTooLargeError(CacheError):
    """The object cannot fit into the configured Lambda pool."""


class FunctionReclaimedError(ReproError):
    """A simulated Lambda function instance was reclaimed by the provider."""

    def __init__(self, function_name: str):
        super().__init__(f"function {function_name!r} was reclaimed by the provider")
        self.function_name = function_name


class InvocationError(ReproError):
    """A simulated Lambda invocation failed (timeout, limit, platform error)."""


class ConnectionClosedError(ReproError):
    """A simulated TCP connection between proxy and Lambda node was closed."""


class BackupError(ReproError):
    """The delta-sync backup protocol failed to complete."""


class WorkloadError(ReproError):
    """A workload trace could not be generated, parsed, or replayed."""


class ClusterError(ReproError):
    """Base class for cluster-orchestration failures (membership, scaling)."""


class TenantError(ClusterError):
    """A tenant was registered or addressed incorrectly."""


class QuotaExceededError(ClusterError):
    """A tenant request would exceed its byte quota."""

    def __init__(self, tenant_id: str, requested: int, limit: int):
        super().__init__(
            f"tenant {tenant_id!r} would store {requested} bytes "
            f"but is limited to {limit}"
        )
        self.tenant_id = tenant_id
        self.requested = requested
        self.limit = limit


class RateLimitedError(ClusterError):
    """A tenant request was throttled by its request-rate quota."""

    def __init__(self, tenant_id: str, rate_limit: float):
        super().__init__(
            f"tenant {tenant_id!r} exceeded its rate quota of "
            f"{rate_limit:g} requests/s"
        )
        self.tenant_id = tenant_id
        self.rate_limit = rate_limit

"""A compact, scriptable tour of the cluster subsystem.

``python -m repro cluster-demo`` runs this; it is a condensed version of
``examples/cluster_autoscale.py`` meant for smoke-testing an install: two
quota-bearing tenants on an autoscaling cluster, a load surge and drain, a
live proxy join, and an injected-failure repair, with one summary line per
phase.
"""

from __future__ import annotations

from repro.cache.config import InfiniCacheConfig
from repro.cluster.autoscaler import AutoscalerConfig
from repro.cluster.cluster import InfiniCacheCluster
from repro.cluster.tenants import TenantQuota
from repro.exceptions import RateLimitedError
from repro.utils.units import MB, MIB


def run_demo(duration_s: float = 240.0, print_fn=print) -> dict[str, object]:
    """Run the demo; returns the phase summary (also printed via ``print_fn``)."""
    config = InfiniCacheConfig(
        num_proxies=2,
        lambdas_per_proxy=8,
        lambda_memory_bytes=192 * MIB,
        data_shards=4,
        parity_shards=2,
        min_lambdas_per_proxy=8,
        max_lambdas_per_proxy=32,
    )
    cluster = InfiniCacheCluster(config, AutoscalerConfig(interval_s=15.0))
    cluster.start()
    media = cluster.register_tenant("media")
    api = cluster.register_tenant("api", TenantQuota(max_requests_per_s=5.0))

    start_pool = sum(cluster.pool_sizes().values())
    print_fn(f"cluster up: {config.num_proxies} proxies, {start_pool} Lambda nodes")

    throttled = 0
    for index in range(30):
        try:
            api.put_sized(f"burst-{index}", 1 * MB)
        except RateLimitedError:
            throttled += 1
    print_fn(f"tenant quotas: api burst throttled {throttled}/30")

    now = 1.0
    for index in range(int(duration_s / 2)):
        cluster.run_until(now)
        media.put_sized(f"video-{index:04d}", 10 * MB)
        now += 1.0
    surge_pool = sum(cluster.pool_sizes().values())
    print_fn(f"load surge: pool {start_pool} -> {surge_pool} nodes")

    for index in range(int(duration_s / 2)):
        media.invalidate(f"video-{index:04d}")
    cluster.run_until(now + duration_s / 2)
    idle_pool = sum(cluster.pool_sizes().values())
    print_fn(f"load drained: pool {surge_pool} -> {idle_pool} nodes")

    for index in range(20):
        media.put_sized(f"doc-{index:02d}", 2 * MB)
    cluster.add_proxy()
    migrated = cluster.metrics.counters().get("cluster.rebalance.migrated", 0.0)
    survivors = sum(media.get(f"doc-{index:02d}").hit for index in range(20))
    print_fn(f"proxy join: {migrated:g} objects migrated, {survivors}/20 keys still hit")

    victim = cluster.deployment.proxies[0]
    for node in victim.nodes[: config.parity_shards]:
        for instance in (node.primary, node.backup_peer):
            if instance is not None and instance.is_alive:
                cluster.deployment.platform.reclaim_instance(instance)
    repaired, lost = cluster.failure_detector.sweep_once()
    print_fn(f"failure sweep: repaired {repaired} objects, lost {lost}")

    cluster.stop()
    print_fn(f"total cost: ${cluster.total_cost():.6f}")
    return {
        "start_pool": start_pool,
        "surge_pool": surge_pool,
        "idle_pool": idle_pool,
        "migrated": migrated,
        "survivors": survivors,
        "repaired": repaired,
        "lost": lost,
        "throttled": throttled,
        "total_cost": cluster.total_cost(),
    }

"""Pool autoscaler: elastic Lambda-pool sizing from observed load.

The paper provisions each proxy with a fixed pool (Section 5's 400 nodes)
and leaves elastic sizing to future work; this module closes that gap for
the reproduction.  A :class:`PoolAutoscaler` ticks on the shared simulation
event loop and, per proxy, samples two signals:

* **memory pressure** — bytes cached over pool capacity;
* **request rate** — GET+PUT throughput since the last tick.

Two scaling *policies* turn those signals into node deltas:

* :class:`ReactiveWatermarkPolicy` (default) — scale up when either signal
  crosses its high watermark, down when both drop under their low
  watermarks; it only reacts after the pool is already hot or cold.
* :class:`PredictiveEwmaPolicy` — keeps an exponentially weighted moving
  average of each proxy's request rate and byte growth, forecasts the next
  interval, and sizes the pool to the forecast *before* the watermarks
  would trip.  As ``predictive_trend`` it additionally smooths a Holt trend
  term, extrapolating ramp-shaped load one interval ahead.  The
  cost/miss-rate trade-offs between the policies are measured by
  :mod:`repro.experiments.autoscale_policies`.

Scaling is bounded by ``InfiniCacheConfig.min_lambdas_per_proxy`` /
``max_lambdas_per_proxy`` (and always floored at the erasure stripe width,
since every object needs ``d+p`` distinct nodes).  Scale-down picks the
emptiest nodes and routes them through the rebalancer's drain path so no
chunk is silently lost, and it refuses to shrink past the point where the
surviving capacity would immediately re-trip the high watermark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cache.deployment import InfiniCacheDeployment
from repro.cache.proxy import Proxy
from repro.cluster.rebalancer import Rebalancer
from repro.exceptions import ConfigurationError
from repro.simulation.events import PeriodicTask
from repro.simulation.metrics import MetricRegistry

#: Names accepted by :attr:`AutoscalerConfig.policy`.
SCALING_POLICIES = ("reactive", "predictive", "predictive_trend")


@dataclass(frozen=True)
class AutoscalerConfig:
    """Tuning knobs for the pool autoscaler."""

    #: Seconds between scaling decisions (one shared tick for all proxies).
    interval_s: float = 30.0
    #: Memory-pressure fraction above which a pool grows.
    high_memory_watermark: float = 0.70
    #: Memory-pressure fraction below which a pool may shrink.
    low_memory_watermark: float = 0.30
    #: Requests/s per node above which a pool grows regardless of memory.
    high_requests_per_node: float = 2.0
    #: Requests/s per node below which a pool may shrink.
    low_requests_per_node: float = 0.25
    #: Nodes added per scale-up decision.
    scale_up_step: int = 4
    #: Nodes removed per scale-down decision.
    scale_down_step: int = 2
    #: Which scaling policy to run (see :data:`SCALING_POLICIES`).
    policy: str = "reactive"
    #: EWMA smoothing factor for the predictive policy's forecasts.
    ewma_alpha: float = 0.3
    #: Requests/s one node should serve at the predictive policy's target
    #: operating point (its sizing divisor; keep under the high watermark so
    #: the forecast leaves headroom).
    target_requests_per_node: float = 1.0
    #: Holt trend-smoothing factor used by the ``predictive_trend`` policy:
    #: the forecast becomes *level + trend*, so a steadily building surge is
    #: extrapolated one interval ahead instead of merely smoothed.  Ignored
    #: (treated as 0) by the plain ``predictive`` policy.
    trend_beta: float = 0.3

    def __post_init__(self):
        if self.interval_s <= 0:
            raise ConfigurationError("autoscaler interval must be positive")
        if not 0.0 < self.low_memory_watermark < self.high_memory_watermark <= 1.0:
            raise ConfigurationError(
                "memory watermarks must satisfy 0 < low < high <= 1"
            )
        if self.low_requests_per_node < 0 or self.high_requests_per_node <= 0:
            raise ConfigurationError("request-rate watermarks must be non-negative")
        if self.low_requests_per_node >= self.high_requests_per_node:
            raise ConfigurationError("rate watermarks must satisfy low < high")
        if self.scale_up_step < 1 or self.scale_down_step < 1:
            raise ConfigurationError("scaling steps must be at least 1")
        if self.policy not in SCALING_POLICIES:
            raise ConfigurationError(
                f"unknown scaling policy {self.policy!r}; expected one of {SCALING_POLICIES}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        if self.target_requests_per_node <= 0:
            raise ConfigurationError("target_requests_per_node must be positive")
        if not 0.0 <= self.trend_beta <= 1.0:
            raise ConfigurationError("trend_beta must be in [0, 1]")


@dataclass(frozen=True)
class PoolSnapshot:
    """One proxy's load signals at a scaling tick."""

    proxy_id: str
    pool_size: int
    per_node_capacity_bytes: float
    bytes_used: int
    memory_pressure: float
    #: Total GET+PUT requests/s over the last interval (not per node).
    request_rate: float


class ReactiveWatermarkPolicy:
    """Scale on watermark crossings of the *observed* signals."""

    def __init__(self, config: AutoscalerConfig):
        self.config = config

    def desired_delta(self, snapshot: PoolSnapshot) -> int:
        """Signed node-count intent; the autoscaler clamps it to its steps."""
        rate_per_node = snapshot.request_rate / max(1, snapshot.pool_size)
        if (
            snapshot.memory_pressure >= self.config.high_memory_watermark
            or rate_per_node >= self.config.high_requests_per_node
        ):
            return self.config.scale_up_step
        if (
            snapshot.memory_pressure <= self.config.low_memory_watermark
            and rate_per_node <= self.config.low_requests_per_node
        ):
            return -self.config.scale_down_step
        return 0


class PredictiveEwmaPolicy:
    """Size each pool to a smoothed forecast of its next-interval load.

    Per proxy, the policy smooths the observed request rate and byte growth
    and sizes the pool so the *forecast* rate lands at
    ``target_requests_per_node`` and the forecast footprint stays under the
    high memory watermark — growing ahead of a building surge instead of
    after the watermarks trip, and shrinking gradually as the forecast
    decays.

    With ``trend_beta = 0`` (the plain ``predictive`` policy) the smoothing
    is a simple EWMA of the level.  With ``trend_beta > 0`` (the
    ``predictive_trend`` policy) it is Holt's double exponential smoothing:
    a trend component tracks how fast the level itself is moving and the
    forecast becomes ``level + trend``, so a monotone ramp is extrapolated
    one interval ahead rather than perpetually lagged — the ROADMAP's
    "seasonality/trend" item for ramp-shaped load.
    """

    def __init__(self, config: AutoscalerConfig, trend_beta: float = 0.0):
        self.config = config
        self.trend_beta = trend_beta
        self._rate_level: dict[str, float] = {}
        self._rate_trend: dict[str, float] = {}
        self._growth_level: dict[str, float] = {}
        self._growth_trend: dict[str, float] = {}
        self._last_bytes: dict[str, int] = {}

    def _forecast(
        self,
        levels: dict[str, float],
        trends: dict[str, float],
        proxy_id: str,
        observed: float,
    ) -> float:
        previous = levels.get(proxy_id)
        if previous is None:
            levels[proxy_id] = observed
            trends[proxy_id] = 0.0
            return observed
        alpha = self.config.ewma_alpha
        beta = self.trend_beta
        prior_trend = trends.get(proxy_id, 0.0)
        level = alpha * observed + (1.0 - alpha) * (previous + prior_trend)
        trend = beta * (level - previous) + (1.0 - beta) * prior_trend
        levels[proxy_id] = level
        trends[proxy_id] = trend
        return level + trend

    def desired_delta(self, snapshot: PoolSnapshot) -> int:
        """Forecast-sized pool minus the current pool."""
        rate_forecast = self._forecast(
            self._rate_level, self._rate_trend, snapshot.proxy_id, snapshot.request_rate
        )
        growth = snapshot.bytes_used - self._last_bytes.get(
            snapshot.proxy_id, snapshot.bytes_used
        )
        self._last_bytes[snapshot.proxy_id] = snapshot.bytes_used
        growth_forecast = self._forecast(
            self._growth_level, self._growth_trend, snapshot.proxy_id, float(growth)
        )

        nodes_for_rate = math.ceil(
            max(0.0, rate_forecast) / self.config.target_requests_per_node
        )
        projected_bytes = snapshot.bytes_used + max(0.0, growth_forecast)
        headroom = self.config.high_memory_watermark * snapshot.per_node_capacity_bytes
        nodes_for_memory = math.ceil(projected_bytes / headroom) if headroom > 0 else 0
        desired = max(nodes_for_rate, nodes_for_memory, 1)
        return desired - snapshot.pool_size


def make_policy(config: AutoscalerConfig):
    """Instantiate the scaling policy the config names."""
    if config.policy == "predictive":
        return PredictiveEwmaPolicy(config)
    if config.policy == "predictive_trend":
        return PredictiveEwmaPolicy(config, trend_beta=config.trend_beta)
    return ReactiveWatermarkPolicy(config)


class PoolAutoscaler:
    """Grows and shrinks each proxy's Lambda pool from observed load."""

    def __init__(
        self,
        deployment: InfiniCacheDeployment,
        config: AutoscalerConfig | None = None,
        rebalancer: Rebalancer | None = None,
        metrics: MetricRegistry | None = None,
    ):
        self.deployment = deployment
        self.config = config or AutoscalerConfig()
        self.rebalancer = rebalancer
        self.metrics = metrics or deployment.metrics
        self.policy = make_policy(self.config)
        self._last_requests: dict[str, int] = {}
        self._task = PeriodicTask(
            deployment.simulator, self.config.interval_s, self.evaluate_once,
            label="cluster.autoscaler",
        )

    # ------------------------------------------------------------------ bounds
    @property
    def min_nodes(self) -> int:
        """Smallest pool the autoscaler will shrink to."""
        cache_config = self.deployment.config
        stripe = cache_config.data_shards + cache_config.parity_shards
        configured = cache_config.min_lambdas_per_proxy or 1
        return max(stripe, configured)

    @property
    def max_nodes(self) -> int | None:
        """Largest pool the autoscaler will grow to (``None`` = unbounded)."""
        return self.deployment.config.max_lambdas_per_proxy

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Begin periodic scaling decisions on the deployment's simulator."""
        self._task.start()

    def stop(self) -> None:
        """Stop scheduling further decisions."""
        self._task.stop()

    # ------------------------------------------------------------------ decisions
    def evaluate_once(self) -> dict[str, int]:
        """Apply one scaling decision per proxy; returns node deltas by proxy."""
        now = self.deployment.simulator.now
        deltas: dict[str, int] = {}
        for proxy in list(self.deployment.proxies):
            deltas[proxy.proxy_id] = self._evaluate_proxy(proxy, now)
            self.metrics.series(f"cluster.pool_size.{proxy.proxy_id}").record(
                now, float(proxy.pool_size)
            )
        return deltas

    def _snapshot(self, proxy: Proxy) -> PoolSnapshot:
        # One O(nodes x chunks) byte traversal per tick; pressure is derived
        # rather than re-sampled through proxy.memory_pressure().
        used = proxy.pool_bytes_used()
        capacity = proxy.pool_capacity_bytes
        return PoolSnapshot(
            proxy_id=proxy.proxy_id,
            pool_size=proxy.pool_size,
            per_node_capacity_bytes=capacity / proxy.pool_size if proxy.pool_size else 0.0,
            bytes_used=used,
            memory_pressure=used / capacity if capacity else 0.0,
            request_rate=self._request_rate(proxy),
        )

    def _evaluate_proxy(self, proxy: Proxy, now: float) -> int:
        desired = self.policy.desired_delta(self._snapshot(proxy))
        if desired > 0:
            return self._scale_up(proxy, desired)
        if desired < 0:
            return self._scale_down(proxy, now, -desired)
        return 0

    def _request_rate(self, proxy: Proxy) -> float:
        """Total requests/s this proxy served since the previous tick."""
        served = proxy.requests_served
        previous = self._last_requests.get(proxy.proxy_id, 0)
        self._last_requests[proxy.proxy_id] = served
        return max(0, served - previous) / self.config.interval_s

    def _scale_up(self, proxy: Proxy, desired: int) -> int:
        step = min(self.config.scale_up_step, desired)
        if self.max_nodes is not None:
            step = min(step, self.max_nodes - proxy.pool_size)
        if step <= 0:
            return 0
        for _ in range(step):
            proxy.add_node()
        self.metrics.counter("cluster.autoscaler.scale_ups").increment()
        self.metrics.counter("cluster.autoscaler.nodes_added").increment(step)
        return step

    def _scale_down(self, proxy: Proxy, now: float, desired: int) -> int:
        step = min(self.config.scale_down_step, desired, proxy.pool_size - self.min_nodes)
        if step <= 0:
            return 0
        per_node_capacity = proxy.pool_capacity_bytes / proxy.pool_size
        used = proxy.pool_bytes_used()
        removed = 0
        for _ in range(step):
            surviving = (proxy.pool_size - 1) * per_node_capacity
            if surviving <= 0 or used / surviving >= self.config.high_memory_watermark:
                break
            victim = min(proxy.nodes, key=lambda node: (node.bytes_used(), node.node_id))
            if self.rebalancer is not None:
                self.rebalancer.decommission_node(proxy, victim.node_id, now)
            else:
                proxy.decommission_node(victim.node_id, now)
            removed += 1
        if removed:
            self.metrics.counter("cluster.autoscaler.scale_downs").increment()
            self.metrics.counter("cluster.autoscaler.nodes_removed").increment(removed)
        return -removed

"""Pool autoscaler: elastic Lambda-pool sizing from observed load.

The paper provisions each proxy with a fixed pool (Section 5's 400 nodes)
and leaves elastic sizing to future work; this module closes that gap for
the reproduction.  A :class:`PoolAutoscaler` ticks on the shared simulation
event loop and, per proxy, samples two signals:

* **memory pressure** — bytes cached over pool capacity; crossing the high
  watermark grows the pool *before* CLOCK eviction starts thrashing, and
  dropping under the low watermark shrinks it so idle functions stop
  accruing warm-up cost;
* **request rate** — GET+PUT throughput per node since the last tick;
  a hot-but-small working set still fans out over enough nodes to keep
  per-function bandwidth from saturating.

Scaling is bounded by ``InfiniCacheConfig.min_lambdas_per_proxy`` /
``max_lambdas_per_proxy`` (and always floored at the erasure stripe width,
since every object needs ``d+p`` distinct nodes).  Scale-down picks the
emptiest nodes and routes them through the rebalancer's drain path so no
chunk is silently lost, and it refuses to shrink past the point where the
surviving capacity would immediately re-trip the high watermark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.deployment import InfiniCacheDeployment
from repro.cache.proxy import Proxy
from repro.cluster.rebalancer import Rebalancer
from repro.exceptions import ConfigurationError
from repro.simulation.events import PeriodicTask
from repro.simulation.metrics import MetricRegistry


@dataclass(frozen=True)
class AutoscalerConfig:
    """Tuning knobs for the pool autoscaler."""

    #: Seconds between scaling decisions (one shared tick for all proxies).
    interval_s: float = 30.0
    #: Memory-pressure fraction above which a pool grows.
    high_memory_watermark: float = 0.70
    #: Memory-pressure fraction below which a pool may shrink.
    low_memory_watermark: float = 0.30
    #: Requests/s per node above which a pool grows regardless of memory.
    high_requests_per_node: float = 2.0
    #: Requests/s per node below which a pool may shrink.
    low_requests_per_node: float = 0.25
    #: Nodes added per scale-up decision.
    scale_up_step: int = 4
    #: Nodes removed per scale-down decision.
    scale_down_step: int = 2

    def __post_init__(self):
        if self.interval_s <= 0:
            raise ConfigurationError("autoscaler interval must be positive")
        if not 0.0 < self.low_memory_watermark < self.high_memory_watermark <= 1.0:
            raise ConfigurationError(
                "memory watermarks must satisfy 0 < low < high <= 1"
            )
        if self.low_requests_per_node < 0 or self.high_requests_per_node <= 0:
            raise ConfigurationError("request-rate watermarks must be non-negative")
        if self.low_requests_per_node >= self.high_requests_per_node:
            raise ConfigurationError("rate watermarks must satisfy low < high")
        if self.scale_up_step < 1 or self.scale_down_step < 1:
            raise ConfigurationError("scaling steps must be at least 1")


class PoolAutoscaler:
    """Grows and shrinks each proxy's Lambda pool from observed load."""

    def __init__(
        self,
        deployment: InfiniCacheDeployment,
        config: AutoscalerConfig | None = None,
        rebalancer: Rebalancer | None = None,
        metrics: MetricRegistry | None = None,
    ):
        self.deployment = deployment
        self.config = config or AutoscalerConfig()
        self.rebalancer = rebalancer
        self.metrics = metrics or deployment.metrics
        self._last_requests: dict[str, int] = {}
        self._task = PeriodicTask(
            deployment.simulator, self.config.interval_s, self.evaluate_once,
            label="cluster.autoscaler",
        )

    # ------------------------------------------------------------------ bounds
    @property
    def min_nodes(self) -> int:
        """Smallest pool the autoscaler will shrink to."""
        cache_config = self.deployment.config
        stripe = cache_config.data_shards + cache_config.parity_shards
        configured = cache_config.min_lambdas_per_proxy or 1
        return max(stripe, configured)

    @property
    def max_nodes(self) -> int | None:
        """Largest pool the autoscaler will grow to (``None`` = unbounded)."""
        return self.deployment.config.max_lambdas_per_proxy

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Begin periodic scaling decisions on the deployment's simulator."""
        self._task.start()

    def stop(self) -> None:
        """Stop scheduling further decisions."""
        self._task.stop()

    # ------------------------------------------------------------------ decisions
    def evaluate_once(self) -> dict[str, int]:
        """Apply one scaling decision per proxy; returns node deltas by proxy."""
        now = self.deployment.simulator.now
        deltas: dict[str, int] = {}
        for proxy in list(self.deployment.proxies):
            deltas[proxy.proxy_id] = self._evaluate_proxy(proxy, now)
            self.metrics.series(f"cluster.pool_size.{proxy.proxy_id}").record(
                now, float(proxy.pool_size)
            )
        return deltas

    def _evaluate_proxy(self, proxy: Proxy, now: float) -> int:
        pressure = proxy.memory_pressure()
        rate_per_node = self._request_rate_per_node(proxy)
        if (
            pressure >= self.config.high_memory_watermark
            or rate_per_node >= self.config.high_requests_per_node
        ):
            return self._scale_up(proxy)
        if (
            pressure <= self.config.low_memory_watermark
            and rate_per_node <= self.config.low_requests_per_node
        ):
            return self._scale_down(proxy, now)
        return 0

    def _request_rate_per_node(self, proxy: Proxy) -> float:
        served = proxy.requests_served
        previous = self._last_requests.get(proxy.proxy_id, 0)
        self._last_requests[proxy.proxy_id] = served
        delta = max(0, served - previous)
        return delta / self.config.interval_s / max(1, proxy.pool_size)

    def _scale_up(self, proxy: Proxy) -> int:
        step = self.config.scale_up_step
        if self.max_nodes is not None:
            step = min(step, self.max_nodes - proxy.pool_size)
        if step <= 0:
            return 0
        for _ in range(step):
            proxy.add_node()
        self.metrics.counter("cluster.autoscaler.scale_ups").increment()
        self.metrics.counter("cluster.autoscaler.nodes_added").increment(step)
        return step

    def _scale_down(self, proxy: Proxy, now: float) -> int:
        step = min(self.config.scale_down_step, proxy.pool_size - self.min_nodes)
        if step <= 0:
            return 0
        per_node_capacity = proxy.pool_capacity_bytes / proxy.pool_size
        used = proxy.pool_bytes_used()
        removed = 0
        for _ in range(step):
            surviving = (proxy.pool_size - 1) * per_node_capacity
            if surviving <= 0 or used / surviving >= self.config.high_memory_watermark:
                break
            victim = min(proxy.nodes, key=lambda node: (node.bytes_used(), node.node_id))
            if self.rebalancer is not None:
                self.rebalancer.decommission_node(proxy, victim.node_id, now)
            else:
                proxy.decommission_node(victim.node_id, now)
            removed += 1
        if removed:
            self.metrics.counter("cluster.autoscaler.scale_downs").increment()
            self.metrics.counter("cluster.autoscaler.nodes_removed").increment(removed)
        return -removed

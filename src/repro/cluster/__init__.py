"""Cluster orchestration: autoscaling, multi-tenancy, and rebalancing.

The seed reproduced InfiniCache as one static deployment; this package turns
it into an orchestrated cluster, covering the elasticity and isolation
concerns the paper's production discussion (Section 6) leaves open:

* :mod:`repro.cluster.autoscaler` — grows/shrinks each proxy's Lambda pool
  from observed memory pressure and request rate, on the simulation loop.
* :mod:`repro.cluster.tenants` — tenant registry with namespaces, byte and
  request-rate quotas, and per-tenant metrics.
* :mod:`repro.cluster.router` — the tenant-aware routing layer in front of
  the client library's consistent-hash ring.
* :mod:`repro.cluster.rebalancer` — placement migration on proxy join/leave
  and pool resize, plus the proactive failure detector.
* :mod:`repro.cluster.cluster` — :class:`InfiniCacheCluster`, the wired
  top-level entry point.
"""

from repro.cluster.autoscaler import (
    AutoscalerConfig,
    PoolAutoscaler,
    PredictiveEwmaPolicy,
    ReactiveWatermarkPolicy,
)
from repro.cluster.cluster import InfiniCacheCluster
from repro.cluster.rebalancer import FailureDetector, Rebalancer
from repro.cluster.router import ClusterRouter, TenantClient
from repro.cluster.tenants import (
    UNATTRIBUTED_TENANT,
    Tenant,
    TenantManager,
    TenantQuota,
    namespace_key,
    split_namespaced_key,
    validate_app_key,
)

__all__ = [
    "AutoscalerConfig",
    "PoolAutoscaler",
    "PredictiveEwmaPolicy",
    "ReactiveWatermarkPolicy",
    "InfiniCacheCluster",
    "FailureDetector",
    "Rebalancer",
    "ClusterRouter",
    "TenantClient",
    "Tenant",
    "TenantManager",
    "TenantQuota",
    "UNATTRIBUTED_TENANT",
    "namespace_key",
    "split_namespaced_key",
    "validate_app_key",
]

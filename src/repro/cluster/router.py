"""Tenant-aware routing layer in front of the consistent-hash ring.

The :class:`ClusterRouter` sits between application tenants and one shared
:class:`~repro.cache.client.InfiniCacheClient`:

1. the tenant's request is charged against its rate quota (token bucket) and
   — for PUTs — its byte quota;
2. the key is qualified with the tenant namespace so tenants are isolated on
   the shared ring;
3. the request is forwarded to the client library, whose ring the deployment
   keeps in sync as proxies join and leave;
4. the outcome is folded back into per-tenant accounting: hits/misses, bytes
   stored, and any objects the pool evicted to make room (which may belong
   to *other* tenants — multi-tenant pressure is visible in their gauges).

:class:`TenantClient` is the handle applications hold: the familiar GET/PUT
API bound to one tenant id.
"""

from __future__ import annotations

import dataclasses

from repro.cache.chunk import descriptor_for
from repro.cache.client import GetResult, InfiniCacheClient, PutResult
from repro.cache.deployment import InfiniCacheDeployment
from repro.cluster.tenants import Tenant, TenantManager, namespace_key, validate_app_key
from repro.simulation.metrics import MetricRegistry

#: Reserved client id for the router's shared underlying client.
ROUTER_CLIENT_ID = "cluster-router"


class ClusterRouter:
    """Routes tenant requests onto the shared InfiniCache client library."""

    def __init__(
        self,
        deployment: InfiniCacheDeployment,
        tenants: TenantManager,
        metrics: MetricRegistry | None = None,
    ):
        self.deployment = deployment
        self.tenants = tenants
        self.metrics = metrics or deployment.metrics
        self.client: InfiniCacheClient = deployment.new_client(ROUTER_CLIENT_ID)
        self._clock = deployment.simulator.clock

    # ------------------------------------------------------------------ data path
    def get(self, tenant_id: str, key: str) -> GetResult:
        """GET within a tenant's namespace, subject to its rate quota."""
        tenant = self.tenants.tenant(tenant_id)
        validate_app_key(key)
        self.tenants.authorize_request(tenant, self._clock.now)
        namespaced = namespace_key(tenant_id, key)
        result = self.client.get(namespaced)
        self.tenants.record_get(tenant, result.hit)
        if not result.hit:
            # A plain miss is a no-op here; a reclamation loss (RESET) or an
            # earlier eviction means the tracked bytes are gone.
            self.tenants.record_gone(namespaced)
        self.metrics.counter("cluster.router.gets").increment()
        return dataclasses.replace(result, key=key)

    def get_process(self, tenant_id: str, key: str, env, span=None):
        """Event-driven GET coroutine within a tenant's namespace.

        Quota admission happens synchronously at arrival (before the first
        chunk moves), so a throttled request consumes no pool bandwidth;
        the transfer itself runs as an overlapping process.
        """
        tenant = self.tenants.tenant(tenant_id)
        validate_app_key(key)
        self.tenants.authorize_request(tenant, self._clock.now)
        namespaced = namespace_key(tenant_id, key)
        tracer = env.tracer
        op_span = tracer.begin("router.get", span, tenant=tenant_id, key=key)
        result = yield from self.client.get_process(namespaced, env, span=op_span)
        tracer.finish(op_span, hit=result.hit)
        self.tenants.record_get(tenant, result.hit)
        if not result.hit:
            self.tenants.record_gone(namespaced)
        self.metrics.counter("cluster.router.gets").increment()
        return dataclasses.replace(result, key=key)

    def put_sized_process(self, tenant_id: str, key: str, size: int, env, span=None):
        """Event-driven size-only PUT coroutine within a tenant's namespace."""
        tenant, namespaced = self._admit_put(tenant_id, key, size)
        tracer = env.tracer
        op_span = tracer.begin("router.put", span, tenant=tenant_id, key=key)
        result = yield from self.client.put_sized_process(namespaced, size, env,
                                                          span=op_span)
        tracer.finish(op_span)
        return self._account_put(tenant, namespaced, key, size, result)

    def put(self, tenant_id: str, key: str, value: bytes) -> PutResult:
        """PUT real bytes within a tenant's namespace, subject to both quotas."""
        tenant, namespaced = self._admit_put(tenant_id, key, len(value))
        result = self.client.put(namespaced, value)
        return self._account_put(tenant, namespaced, key, len(value), result)

    def put_sized(self, tenant_id: str, key: str, size: int) -> PutResult:
        """Size-only PUT within a tenant's namespace (trace-replay mode)."""
        tenant, namespaced = self._admit_put(tenant_id, key, size)
        result = self.client.put_sized(namespaced, size)
        return self._account_put(tenant, namespaced, key, size, result)

    def invalidate(self, tenant_id: str, key: str) -> bool:
        """Drop a tenant's object (not charged against the rate quota)."""
        self.tenants.tenant(tenant_id)
        validate_app_key(key)
        namespaced = namespace_key(tenant_id, key)
        existed = self.client.invalidate(namespaced)
        self.tenants.record_gone(namespaced)
        return existed

    def exists(self, tenant_id: str, key: str) -> bool:
        """Whether the responsible proxy still tracks a tenant's key."""
        self.tenants.tenant(tenant_id)
        validate_app_key(key)
        return self.client.exists(namespace_key(tenant_id, key))

    # ------------------------------------------------------------------ internals
    def _stored_bytes(self, size: int) -> int:
        """Parity-inclusive bytes the pool stores for a ``size``-byte object.

        Quotas are charged for the full ``(d+p)``-chunk stripe, so a tenant
        cannot oversubscribe its cap by the erasure-coding overhead.
        """
        config = self.deployment.config
        return descriptor_for(
            "quota", size, config.data_shards, config.parity_shards
        ).stored_bytes

    def _admit_put(self, tenant_id: str, key: str, size: int) -> tuple[Tenant, str]:
        tenant = self.tenants.tenant(tenant_id)
        validate_app_key(key)
        namespaced = namespace_key(tenant_id, key)
        self.tenants.authorize_request(tenant, self._clock.now)
        self.tenants.authorize_put(tenant, namespaced, self._stored_bytes(size))
        return tenant, namespaced

    def _account_put(
        self, tenant: Tenant, namespaced: str, key: str, size: int, result: PutResult
    ) -> PutResult:
        self.tenants.record_put(tenant, namespaced, size, self._stored_bytes(size))
        for evicted in result.evicted_keys:
            self.tenants.record_gone(evicted)
        self.metrics.counter("cluster.router.puts").increment()
        return dataclasses.replace(result, key=key)


class TenantClient:
    """Application-facing GET/PUT handle bound to one tenant."""

    def __init__(self, router: ClusterRouter, tenant_id: str):
        self.router = router
        self.tenant_id = tenant_id

    def __repr__(self) -> str:
        return f"TenantClient({self.tenant_id!r})"

    def get(self, key: str) -> GetResult:
        return self.router.get(self.tenant_id, key)

    def get_process(self, key: str, env, span=None):
        """Event-driven GET coroutine bound to this tenant."""
        return self.router.get_process(self.tenant_id, key, env, span=span)

    def put(self, key: str, value: bytes) -> PutResult:
        return self.router.put(self.tenant_id, key, value)

    def put_sized(self, key: str, size: int) -> PutResult:
        return self.router.put_sized(self.tenant_id, key, size)

    def put_sized_process(self, key: str, size: int, env, span=None):
        """Event-driven size-only PUT coroutine bound to this tenant."""
        return self.router.put_sized_process(self.tenant_id, key, size, env, span=span)

    def invalidate(self, key: str) -> bool:
        return self.router.invalidate(self.tenant_id, key)

    def exists(self, key: str) -> bool:
        return self.router.exists(self.tenant_id, key)

    def usage(self) -> dict[str, float]:
        """This tenant's row of the manager's usage report."""
        return self.router.tenants.report()[self.tenant_id]

"""Multi-tenant namespaces, quotas, and per-tenant accounting.

A production cluster serves many applications from one Lambda pool; the
paper's evaluation (and the seed reproduction) shares everything through a
single anonymous client.  This module adds the isolation layer:

* every tenant owns a **namespace** — its keys are stored under
  ``tenant_id::key``, so tenants can never collide on or read each other's
  objects;
* a tenant may carry a :class:`TenantQuota` — a byte cap on what it may keep
  cached and a token-bucket request-rate cap — enforced *before* the request
  reaches the consistent-hash ring;
* per-tenant counters (gets/puts/hits/misses/throttles/rejections) and
  bytes-stored gauges are recorded in the shared
  :class:`~repro.simulation.metrics.MetricRegistry` under ``tenant.<id>.*``.

Byte accounting is **parity-inclusive**: a tenant's quota is charged for the
``(d+p)/d`` stripe bytes the pool actually stores for it, not just the
logical object bytes (which are kept as a separate gauge).  Usage is
reconciled against the cache's own behaviour: CLOCK evictions,
invalidations, and reclamation-induced object losses all flow back through
:meth:`TenantManager.record_gone`, so a tenant's usage never drifts from
what the pool actually holds for it.

Chargeback: the billing pipeline tags every Lambda invocation with the
tenants whose traffic caused it (see
:meth:`~repro.faas.billing.BillingModel.charge_invocation`);
:meth:`TenantManager.chargeback` folds that ledger into per-tenant rows —
GB-seconds, dollars, and share of the bill — whose totals sum to the
cluster-wide bill by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.namespacing import (  # noqa: F401  (re-exported public API)
    NAMESPACE_SEPARATOR,
    namespace_key,
    split_namespaced_key,
)
from repro.exceptions import (
    ConfigurationError,
    QuotaExceededError,
    RateLimitedError,
    TenantError,
)
from repro.faas.billing import UNATTRIBUTED_TENANT, BillingModel
from repro.simulation.metrics import MetricRegistry


def validate_app_key(key: str) -> str:
    """Reject application keys that could be misread as namespaced keys.

    An app key containing :data:`NAMESPACE_SEPARATOR` would make
    :func:`split_namespaced_key` attribute the stored object (and its bill)
    to whatever precedes the separator, so the separator is reserved at
    request time just as it is in tenant ids at registration time.
    """
    if not key:
        raise TenantError("application key must be non-empty")
    if NAMESPACE_SEPARATOR in key:
        raise TenantError(
            f"application key {key!r} may not contain {NAMESPACE_SEPARATOR!r}"
        )
    return key


@dataclass(frozen=True)
class TenantQuota:
    """Resource limits for one tenant; ``None`` leaves a dimension unlimited."""

    #: Cap on the *stored* (parity-inclusive) bytes the tenant may keep
    #: cached at once — what its objects actually occupy in the Lambda pool.
    max_bytes: Optional[int] = None
    #: Sustained request rate (GETs + PUTs per second, token-bucket refill).
    max_requests_per_s: Optional[float] = None
    #: Bucket depth; defaults to two seconds' worth of the sustained rate.
    burst_requests: Optional[float] = None

    def __post_init__(self):
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise ConfigurationError("max_bytes must be positive when set")
        if self.max_requests_per_s is not None and self.max_requests_per_s <= 0:
            raise ConfigurationError("max_requests_per_s must be positive when set")
        if self.burst_requests is not None:
            if self.max_requests_per_s is None:
                raise ConfigurationError("burst_requests requires max_requests_per_s")
            if self.burst_requests < 1:
                raise ConfigurationError("burst_requests must be at least 1")

    @property
    def burst(self) -> float:
        """Effective token-bucket depth."""
        if self.max_requests_per_s is None:
            return float("inf")
        if self.burst_requests is not None:
            return self.burst_requests
        return max(1.0, 2.0 * self.max_requests_per_s)


class _TokenBucket:
    """A standard token bucket over the simulation clock."""

    def __init__(self, rate: float, burst: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last_refill = 0.0

    def allow(self, now: float) -> bool:
        if now > self.last_refill:
            self.tokens = min(self.burst, self.tokens + (now - self.last_refill) * self.rate)
            self.last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class _ObjectUsage:
    """What one cached object costs its tenant's byte accounting."""

    logical_bytes: int
    stored_bytes: int


class Tenant:
    """One tenant's quota state and live usage."""

    def __init__(self, tenant_id: str, quota: TenantQuota):
        self.tenant_id = tenant_id
        self.quota = quota
        #: namespaced key -> (logical, stored) bytes currently cached.
        self.objects: dict[str, _ObjectUsage] = {}
        #: Parity-inclusive bytes the pool stores for this tenant (the quota
        #: basis).
        self.bytes_stored = 0
        #: Logical object bytes, before erasure-coding overhead.
        self.logical_bytes = 0
        self.bucket: Optional[_TokenBucket] = None
        if quota.max_requests_per_s is not None:
            self.bucket = _TokenBucket(quota.max_requests_per_s, quota.burst)

    def __repr__(self) -> str:
        return (
            f"Tenant({self.tenant_id!r}, objects={len(self.objects)}, "
            f"stored_bytes={self.bytes_stored})"
        )


class TenantManager:
    """Registry of tenants plus quota enforcement and usage accounting."""

    def __init__(self, metrics: MetricRegistry | None = None):
        self.metrics = metrics or MetricRegistry()
        self._tenants: dict[str, Tenant] = {}

    # ------------------------------------------------------------------ registry
    def register(self, tenant_id: str, quota: TenantQuota | None = None) -> Tenant:
        """Create a tenant; identifiers must be unique and separator-free."""
        if not tenant_id:
            raise TenantError("tenant id must be non-empty")
        if NAMESPACE_SEPARATOR in tenant_id:
            raise TenantError(
                f"tenant id {tenant_id!r} may not contain {NAMESPACE_SEPARATOR!r}"
            )
        if tenant_id in self._tenants:
            raise TenantError(f"tenant {tenant_id!r} is already registered")
        tenant = Tenant(tenant_id, quota or TenantQuota())
        self._tenants[tenant_id] = tenant
        return tenant

    def tenant(self, tenant_id: str) -> Tenant:
        """Look up a registered tenant."""
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise TenantError(f"tenant {tenant_id!r} is not registered")
        return tenant

    def tenant_ids(self) -> list[str]:
        """Identifiers of every registered tenant, sorted."""
        return sorted(self._tenants)

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    # ------------------------------------------------------------------ enforcement
    def authorize_request(self, tenant: Tenant, now: float) -> None:
        """Charge one request against the tenant's rate quota.

        Raises:
            RateLimitedError: when the token bucket is empty.
        """
        if tenant.bucket is not None and not tenant.bucket.allow(now):
            self._counter(tenant, "throttled").increment()
            raise RateLimitedError(tenant.tenant_id, tenant.quota.max_requests_per_s)

    def authorize_put(self, tenant: Tenant, namespaced: str, stored_size: int) -> None:
        """Check that storing ``stored_size`` (parity-inclusive) bytes would
        not breach the byte quota.

        Overwrites only charge the delta: the existing object's stored bytes
        are credited back before the check.

        Raises:
            QuotaExceededError: when the projected usage exceeds the cap.
        """
        if tenant.quota.max_bytes is None:
            return
        existing = tenant.objects.get(namespaced)
        credit = existing.stored_bytes if existing is not None else 0
        projected = tenant.bytes_stored - credit + stored_size
        if projected > tenant.quota.max_bytes:
            self._counter(tenant, "rejected_puts").increment()
            raise QuotaExceededError(tenant.tenant_id, projected, tenant.quota.max_bytes)

    # ------------------------------------------------------------------ accounting
    def record_put(
        self,
        tenant: Tenant,
        namespaced: str,
        logical_size: int,
        stored_size: int | None = None,
    ) -> None:
        """Account a successful PUT: logical object bytes plus the
        parity-inclusive stripe bytes the pool stores for them (defaults to
        the logical size for erasure-free callers)."""
        if stored_size is None:
            stored_size = logical_size
        previous = tenant.objects.get(namespaced)
        tenant.objects[namespaced] = _ObjectUsage(logical_size, stored_size)
        tenant.bytes_stored += stored_size - (previous.stored_bytes if previous else 0)
        tenant.logical_bytes += logical_size - (previous.logical_bytes if previous else 0)
        self._counter(tenant, "puts").increment()
        self._set_byte_gauges(tenant)

    def record_get(self, tenant: Tenant, hit: bool) -> None:
        """Account one GET and its outcome."""
        self._counter(tenant, "gets").increment()
        self._counter(tenant, "hits" if hit else "misses").increment()

    def record_gone(self, namespaced: str) -> None:
        """Reconcile an object leaving the cache (eviction, loss, invalidate).

        Safe to call for unknown keys and idempotent per key, so callers can
        report every eviction the proxy surfaces without cross-checking.
        """
        tenant_id, _key = split_namespaced_key(namespaced)
        if tenant_id is None:
            return
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            return
        usage = tenant.objects.pop(namespaced, None)
        if usage is None:
            return
        tenant.bytes_stored -= usage.stored_bytes
        tenant.logical_bytes -= usage.logical_bytes
        self._set_byte_gauges(tenant)

    # ------------------------------------------------------------------ reporting
    def report(self) -> dict[str, dict[str, float]]:
        """Per-tenant usage snapshot keyed by tenant id."""
        counters = self.metrics.counters()
        rows: dict[str, dict[str, float]] = {}
        for tenant_id in self.tenant_ids():
            tenant = self._tenants[tenant_id]

            def count(name: str) -> float:
                return counters.get(f"tenant.{tenant_id}.{name}", 0.0)

            gets = count("gets")
            hits = count("hits")
            rows[tenant_id] = {
                "gets": gets,
                "puts": count("puts"),
                "hits": hits,
                "misses": count("misses"),
                "hit_ratio": hits / gets if gets else 0.0,
                "throttled": count("throttled"),
                "rejected_puts": count("rejected_puts"),
                "bytes_stored": float(tenant.bytes_stored),
                "logical_bytes": float(tenant.logical_bytes),
                "objects": float(len(tenant.objects)),
            }
        return rows

    def chargeback(self, billing: BillingModel) -> dict[str, dict[str, float]]:
        """Per-tenant chargeback rows from the billing ledger.

        Every registered tenant gets a row (zero if it caused no work), plus
        a row for each attribution label the billing saw that is not a
        registered tenant — notably :data:`UNATTRIBUTED_TENANT` for pool
        maintenance on empty nodes.  The ``cost`` column sums to
        ``billing.total_cost`` and ``gb_seconds`` to
        ``billing.total_gb_seconds`` within floating-point tolerance, so the
        report is a complete decomposition of the cluster-wide bill.  Billed
        GB-seconds and dollars are also exported as ``tenant.<id>.*`` gauges.
        """
        ledger = billing.tenant_breakdown()
        labels = sorted(set(self.tenant_ids()) | set(ledger))
        rows: dict[str, dict[str, float]] = {}
        for label in labels:
            entry = ledger.get(label, {})
            cost = entry.get("cost", 0.0)
            gb_seconds = entry.get("gb_seconds", 0.0)
            rows[label] = {
                "gb_seconds": gb_seconds,
                "cost": cost,
                "invocations": entry.get("invocations", 0.0),
                "bill_share": cost / billing.total_cost if billing.total_cost else 0.0,
            }
            if label in self._tenants:
                tenant = self._tenants[label]
                self._gauge(tenant, "billed_gb_seconds").set(gb_seconds)
                self._gauge(tenant, "billed_cost").set(cost)
        return rows

    def _counter(self, tenant: Tenant, name: str):
        return self.metrics.counter(f"tenant.{tenant.tenant_id}.{name}")

    def _gauge(self, tenant: Tenant, name: str):
        return self.metrics.gauge(f"tenant.{tenant.tenant_id}.{name}")

    def _set_byte_gauges(self, tenant: Tenant) -> None:
        self._gauge(tenant, "bytes_stored").set(tenant.bytes_stored)
        self._gauge(tenant, "logical_bytes").set(tenant.logical_bytes)


__all__ = [
    "NAMESPACE_SEPARATOR",
    "UNATTRIBUTED_TENANT",
    "Tenant",
    "TenantManager",
    "TenantQuota",
    "namespace_key",
    "split_namespaced_key",
    "validate_app_key",
]

"""Multi-tenant namespaces, quotas, and per-tenant accounting.

A production cluster serves many applications from one Lambda pool; the
paper's evaluation (and the seed reproduction) shares everything through a
single anonymous client.  This module adds the isolation layer:

* every tenant owns a **namespace** — its keys are stored under
  ``tenant_id::key``, so tenants can never collide on or read each other's
  objects;
* a tenant may carry a :class:`TenantQuota` — a byte cap on what it may keep
  cached and a token-bucket request-rate cap — enforced *before* the request
  reaches the consistent-hash ring;
* per-tenant counters (gets/puts/hits/misses/throttles/rejections) and a
  bytes-stored gauge are recorded in the shared
  :class:`~repro.simulation.metrics.MetricRegistry` under ``tenant.<id>.*``.

Byte accounting tracks *logical* object sizes and is reconciled against the
cache's own behaviour: CLOCK evictions, invalidations, and
reclamation-induced object losses all flow back through
:meth:`TenantManager.record_gone`, so a tenant's usage never drifts from
what the pool actually holds for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import (
    ConfigurationError,
    QuotaExceededError,
    RateLimitedError,
    TenantError,
)
from repro.simulation.metrics import MetricRegistry

#: Separator between the tenant namespace and the application key.
NAMESPACE_SEPARATOR = "::"


@dataclass(frozen=True)
class TenantQuota:
    """Resource limits for one tenant; ``None`` leaves a dimension unlimited."""

    #: Cap on the logical bytes the tenant may keep cached at once.
    max_bytes: Optional[int] = None
    #: Sustained request rate (GETs + PUTs per second, token-bucket refill).
    max_requests_per_s: Optional[float] = None
    #: Bucket depth; defaults to two seconds' worth of the sustained rate.
    burst_requests: Optional[float] = None

    def __post_init__(self):
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise ConfigurationError("max_bytes must be positive when set")
        if self.max_requests_per_s is not None and self.max_requests_per_s <= 0:
            raise ConfigurationError("max_requests_per_s must be positive when set")
        if self.burst_requests is not None:
            if self.max_requests_per_s is None:
                raise ConfigurationError("burst_requests requires max_requests_per_s")
            if self.burst_requests < 1:
                raise ConfigurationError("burst_requests must be at least 1")

    @property
    def burst(self) -> float:
        """Effective token-bucket depth."""
        if self.max_requests_per_s is None:
            return float("inf")
        if self.burst_requests is not None:
            return self.burst_requests
        return max(1.0, 2.0 * self.max_requests_per_s)


class _TokenBucket:
    """A standard token bucket over the simulation clock."""

    def __init__(self, rate: float, burst: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last_refill = 0.0

    def allow(self, now: float) -> bool:
        if now > self.last_refill:
            self.tokens = min(self.burst, self.tokens + (now - self.last_refill) * self.rate)
            self.last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class Tenant:
    """One tenant's quota state and live usage."""

    def __init__(self, tenant_id: str, quota: TenantQuota):
        self.tenant_id = tenant_id
        self.quota = quota
        #: namespaced key -> logical object bytes currently cached.
        self.objects: dict[str, int] = {}
        self.bytes_stored = 0
        self.bucket: Optional[_TokenBucket] = None
        if quota.max_requests_per_s is not None:
            self.bucket = _TokenBucket(quota.max_requests_per_s, quota.burst)

    def __repr__(self) -> str:
        return (
            f"Tenant({self.tenant_id!r}, objects={len(self.objects)}, "
            f"bytes={self.bytes_stored})"
        )


def namespace_key(tenant_id: str, key: str) -> str:
    """The ring key under which a tenant's object is stored."""
    return f"{tenant_id}{NAMESPACE_SEPARATOR}{key}"


def split_namespaced_key(namespaced: str) -> tuple[Optional[str], str]:
    """Invert :func:`namespace_key`; ``(None, key)`` for un-namespaced keys."""
    if NAMESPACE_SEPARATOR not in namespaced:
        return None, namespaced
    tenant_id, key = namespaced.split(NAMESPACE_SEPARATOR, 1)
    return tenant_id, key


class TenantManager:
    """Registry of tenants plus quota enforcement and usage accounting."""

    def __init__(self, metrics: MetricRegistry | None = None):
        self.metrics = metrics or MetricRegistry()
        self._tenants: dict[str, Tenant] = {}

    # ------------------------------------------------------------------ registry
    def register(self, tenant_id: str, quota: TenantQuota | None = None) -> Tenant:
        """Create a tenant; identifiers must be unique and separator-free."""
        if not tenant_id:
            raise TenantError("tenant id must be non-empty")
        if NAMESPACE_SEPARATOR in tenant_id:
            raise TenantError(
                f"tenant id {tenant_id!r} may not contain {NAMESPACE_SEPARATOR!r}"
            )
        if tenant_id in self._tenants:
            raise TenantError(f"tenant {tenant_id!r} is already registered")
        tenant = Tenant(tenant_id, quota or TenantQuota())
        self._tenants[tenant_id] = tenant
        return tenant

    def tenant(self, tenant_id: str) -> Tenant:
        """Look up a registered tenant."""
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise TenantError(f"tenant {tenant_id!r} is not registered")
        return tenant

    def tenant_ids(self) -> list[str]:
        """Identifiers of every registered tenant, sorted."""
        return sorted(self._tenants)

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    # ------------------------------------------------------------------ enforcement
    def authorize_request(self, tenant: Tenant, now: float) -> None:
        """Charge one request against the tenant's rate quota.

        Raises:
            RateLimitedError: when the token bucket is empty.
        """
        if tenant.bucket is not None and not tenant.bucket.allow(now):
            self._counter(tenant, "throttled").increment()
            raise RateLimitedError(tenant.tenant_id, tenant.quota.max_requests_per_s)

    def authorize_put(self, tenant: Tenant, namespaced: str, size: int) -> None:
        """Check that storing ``size`` bytes would not breach the byte quota.

        Overwrites only charge the delta: the existing object's bytes are
        credited back before the check.

        Raises:
            QuotaExceededError: when the projected usage exceeds the cap.
        """
        if tenant.quota.max_bytes is None:
            return
        projected = tenant.bytes_stored - tenant.objects.get(namespaced, 0) + size
        if projected > tenant.quota.max_bytes:
            self._counter(tenant, "rejected_puts").increment()
            raise QuotaExceededError(tenant.tenant_id, projected, tenant.quota.max_bytes)

    # ------------------------------------------------------------------ accounting
    def record_put(self, tenant: Tenant, namespaced: str, size: int) -> None:
        """Account a successful PUT of ``size`` logical bytes."""
        previous = tenant.objects.get(namespaced, 0)
        tenant.objects[namespaced] = size
        tenant.bytes_stored += size - previous
        self._counter(tenant, "puts").increment()
        self._gauge(tenant).set(tenant.bytes_stored)

    def record_get(self, tenant: Tenant, hit: bool) -> None:
        """Account one GET and its outcome."""
        self._counter(tenant, "gets").increment()
        self._counter(tenant, "hits" if hit else "misses").increment()

    def record_gone(self, namespaced: str) -> None:
        """Reconcile an object leaving the cache (eviction, loss, invalidate).

        Safe to call for unknown keys and idempotent per key, so callers can
        report every eviction the proxy surfaces without cross-checking.
        """
        tenant_id, _key = split_namespaced_key(namespaced)
        if tenant_id is None:
            return
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            return
        size = tenant.objects.pop(namespaced, None)
        if size is None:
            return
        tenant.bytes_stored -= size
        self._gauge(tenant).set(tenant.bytes_stored)

    # ------------------------------------------------------------------ reporting
    def report(self) -> dict[str, dict[str, float]]:
        """Per-tenant usage snapshot keyed by tenant id."""
        counters = self.metrics.counters()
        rows: dict[str, dict[str, float]] = {}
        for tenant_id in self.tenant_ids():
            tenant = self._tenants[tenant_id]

            def count(name: str) -> float:
                return counters.get(f"tenant.{tenant_id}.{name}", 0.0)

            gets = count("gets")
            hits = count("hits")
            rows[tenant_id] = {
                "gets": gets,
                "puts": count("puts"),
                "hits": hits,
                "misses": count("misses"),
                "hit_ratio": hits / gets if gets else 0.0,
                "throttled": count("throttled"),
                "rejected_puts": count("rejected_puts"),
                "bytes_stored": float(tenant.bytes_stored),
                "objects": float(len(tenant.objects)),
            }
        return rows

    def _counter(self, tenant: Tenant, name: str):
        return self.metrics.counter(f"tenant.{tenant.tenant_id}.{name}")

    def _gauge(self, tenant: Tenant):
        return self.metrics.gauge(f"tenant.{tenant.tenant_id}.bytes_stored")

"""Placement rebalancing and failure detection for the cluster.

Two maintenance actors keep placements healthy as the cluster changes shape:

* :class:`Rebalancer` — subscribes to deployment membership events and moves
  objects so placement always matches the consistent-hash ring.  When a
  proxy **joins**, the keys the ring now assigns to it are migrated off
  their old owners; when a proxy **leaves**, everything it held is
  evacuated to the surviving owners.  It also fronts the proxy-level drain
  path the autoscaler uses when shrinking a pool.  Migrations reuse the
  proxy's export/placement machinery and are billed under the
  ``"rebalance"`` cost category so experiments can price elasticity.
* :class:`FailureDetector` — a periodic sweep (driven by the shared
  simulator) that audits every proxy for chunks lost to function
  reclamation and repairs them proactively through the same EC-recovery
  path degraded reads use, instead of waiting for the next unlucky GET.

Both mirror the client rings with their own
:class:`~repro.cache.consistent_hash.ConsistentHashRing`, which is
deterministic, so the rebalancer's notion of ownership always agrees with
every client's.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.consistent_hash import ConsistentHashRing
from repro.cache.deployment import InfiniCacheDeployment
from repro.cache.proxy import Proxy
from repro.exceptions import CacheError, TransientFaultError
from repro.simulation.events import PeriodicTask
from repro.simulation.metrics import MetricRegistry
from repro.utils.units import MINUTE


class Rebalancer:
    """Keeps object placement consistent with ring membership."""

    def __init__(
        self,
        deployment: InfiniCacheDeployment,
        metrics: MetricRegistry | None = None,
        on_object_gone: Optional[Callable[[str], None]] = None,
    ):
        self.deployment = deployment
        self.metrics = metrics or deployment.metrics
        #: Called with each key that leaves the cache as a side effect of
        #: rebalancing (evicted on the destination, or dropped during an
        #: evacuation) so tenant byte accounting stays reconciled.
        self.on_object_gone = on_object_gone
        self.ring: ConsistentHashRing[Proxy] = ConsistentHashRing()
        for proxy in deployment.proxies:
            self.ring.add(proxy.proxy_id, proxy)
        deployment.on_membership_change(self._on_membership_change)

    def _report_gone(self, key: str) -> None:
        if self.on_object_gone is not None:
            self.on_object_gone(key)

    # ------------------------------------------------------------------ membership
    def _on_membership_change(self, event: str, proxy: Proxy) -> None:
        if event == "join":
            self.ring.add(proxy.proxy_id, proxy)
            self.rebalance_after_join(proxy)
        elif event == "leave":
            self.ring.remove(proxy.proxy_id)
            self.evacuate(proxy)

    def rebalance_after_join(self, new_proxy: Proxy) -> int:
        """Move the keys the ring now assigns to a freshly joined proxy.

        Returns the number of objects migrated.  Objects that cannot be
        placed on the new proxy stay where they are: clients will miss (the
        ring no longer points at the old owner) and re-insert on RESET.
        """
        now = self.deployment.simulator.now
        moved = 0
        for source in self.deployment.proxies:
            if source is new_proxy:
                continue
            for key in source.object_keys():
                if self.ring.lookup_id(key) != new_proxy.proxy_id:
                    continue
                if self._migrate(source, new_proxy, key, now):
                    moved += 1
        self.metrics.series("cluster.rebalance_events").record(now, float(moved))
        return moved

    def evacuate(self, leaving_proxy: Proxy) -> int:
        """Migrate everything off a proxy that left the ring.

        Objects the surviving owners cannot absorb are dropped (counted
        under ``cluster.rebalance.dropped``); clients RESET them from the
        backing store on the next access.
        """
        now = self.deployment.simulator.now
        moved = 0
        for key in leaving_proxy.object_keys():
            destination = self.ring.lookup(key)
            if self._migrate(leaving_proxy, destination, key, now):
                moved += 1
            else:
                leaving_proxy.invalidate(key)
                self._report_gone(key)
        self.metrics.series("cluster.rebalance_events").record(now, float(moved))
        return moved

    def _migrate(self, source: Proxy, destination: Proxy, key: str, now: float) -> bool:
        exported = source.export_object(key)
        if exported is None:
            return False
        descriptor, chunks = exported
        try:
            result = destination.put(key, descriptor, chunks, now, category="rebalance")
        except CacheError:
            # Destination pool cannot hold the stripe even after evicting.
            self.metrics.counter("cluster.rebalance.dropped").increment()
            return False
        for evicted in result.evicted_keys:
            self._report_gone(evicted)
        source.invalidate(key)
        self.metrics.counter("cluster.rebalance.migrated").increment()
        return True

    # ------------------------------------------------------------------ pool resize
    def drain_node(self, proxy: Proxy, node_id: str, now: float) -> tuple[int, int]:
        """Drain one node's chunks onto the rest of its proxy's pool."""
        moved, dropped = proxy.drain_node(node_id, now)
        self._record_drain(moved, dropped)
        return moved, dropped

    def decommission_node(self, proxy: Proxy, node_id: str, now: float) -> tuple[int, int]:
        """Drain a node and remove it from its proxy's pool (scale-down)."""
        moved, dropped = proxy.decommission_node(node_id, now)
        self._record_drain(moved, dropped)
        return moved, dropped

    def _record_drain(self, moved: int, dropped: int) -> None:
        self.metrics.counter("cluster.rebalance.chunks_moved").increment(moved)
        if dropped:
            self.metrics.counter("cluster.rebalance.chunks_dropped").increment(dropped)


class FailureDetector:
    """Periodic audit-and-repair sweep over every proxy's Lambda pool."""

    def __init__(
        self,
        deployment: InfiniCacheDeployment,
        interval_s: float = 1 * MINUTE,
        metrics: MetricRegistry | None = None,
        on_object_gone: Optional[Callable[[str], None]] = None,
    ):
        self.deployment = deployment
        self.interval_s = interval_s
        self.metrics = metrics or deployment.metrics
        #: Called with each key dropped as unrecoverable during a sweep.
        self.on_object_gone = on_object_gone
        self._task = PeriodicTask(
            deployment.simulator, interval_s, self.sweep_once,
            label="cluster.failure_detector",
        )
        #: Re-entrancy guard: a repair can cold-start replacement nodes,
        #: whose host placement can reclaim residents and fire arbitrary
        #: listeners — if one of those lands back here, the nested sweep is
        #: skipped rather than corrupting the outer sweep's iteration.
        self._sweeping = False

    def start(self) -> None:
        """Begin periodic sweeps on the deployment's simulator."""
        self._task.start()

    def stop(self) -> None:
        """Stop scheduling further sweeps."""
        self._task.stop()

    def sweep_once(self) -> tuple[int, int]:
        """Audit every proxy now; returns total ``(repaired, lost)`` objects.

        Robust to nodes lost *during* the sweep itself: a nested sweep
        (triggered through reclaim listeners while a repair cold-starts
        replacement nodes) is skipped, and a proxy whose audit dies on a
        transient fault is left for the next interval instead of aborting
        the remaining proxies.
        """
        if self._sweeping:
            self.metrics.counter("cluster.failure_detector.reentrant_skips").increment()
            return 0, 0
        self._sweeping = True
        try:
            now = self.deployment.simulator.now
            repaired_total = lost_total = 0
            dead_nodes = 0
            for proxy in list(self.deployment.proxies):
                dead_nodes += sum(1 for node in proxy.nodes if not node.is_alive)
                try:
                    repaired, lost = proxy.audit_and_repair(
                        now, on_loss=self.on_object_gone
                    )
                except TransientFaultError:
                    self.metrics.counter(
                        "cluster.failure_detector.aborted_audits"
                    ).increment()
                    continue
                repaired_total += repaired
                lost_total += lost
            self.metrics.counter("cluster.failure_detector.repairs").increment(repaired_total)
            self.metrics.counter("cluster.failure_detector.losses").increment(lost_total)
            self.metrics.series("cluster.dead_nodes").record(now, float(dead_nodes))
            return repaired_total, lost_total
        finally:
            self._sweeping = False

"""The orchestrated cluster: deployment + autoscaler + tenants + rebalancer.

:class:`InfiniCacheCluster` is the production-shaped entry point the ROADMAP
asks for.  It wraps an :class:`~repro.cache.deployment.InfiniCacheDeployment`
and wires the orchestration actors around it:

* a :class:`~repro.cluster.autoscaler.PoolAutoscaler` resizing each proxy's
  Lambda pool from observed memory pressure and request rate;
* a :class:`~repro.cluster.tenants.TenantManager` plus
  :class:`~repro.cluster.router.ClusterRouter` giving every tenant an
  isolated namespace with byte/rate quotas and per-tenant metrics;
* a :class:`~repro.cluster.rebalancer.Rebalancer` migrating placements when
  proxies join/leave or pools shrink, and a
  :class:`~repro.cluster.rebalancer.FailureDetector` healing
  reclamation losses between requests.

    >>> from repro.cache import InfiniCacheConfig
    >>> from repro.cluster import InfiniCacheCluster, TenantQuota
    >>> cluster = InfiniCacheCluster(InfiniCacheConfig(lambdas_per_proxy=20))
    >>> cluster.start()
    >>> photos = cluster.register_tenant("photos", TenantQuota(max_bytes=10**9))
    >>> photos.put("pic", b"x" * 1_000_000).latency_s > 0
    True
    >>> photos.get("pic").hit
    True
"""

from __future__ import annotations

from repro.cache.config import InfiniCacheConfig
from repro.cache.deployment import InfiniCacheDeployment
from repro.cache.proxy import Proxy
from repro.cluster.autoscaler import AutoscalerConfig, PoolAutoscaler
from repro.cluster.rebalancer import FailureDetector, Rebalancer
from repro.cluster.router import ClusterRouter, TenantClient
from repro.cluster.tenants import TenantManager, TenantQuota
from repro.faas.reclamation import ReclamationPolicy
from repro.simulation.events import Simulator
from repro.utils.units import MINUTE


class InfiniCacheCluster:
    """An autoscaling, multi-tenant InfiniCache cluster."""

    def __init__(
        self,
        config: InfiniCacheConfig | None = None,
        autoscaler_config: AutoscalerConfig | None = None,
        failure_detector_interval_s: float = 1 * MINUTE,
        reclamation_policy: ReclamationPolicy | None = None,
        simulator: Simulator | None = None,
    ):
        self.deployment = InfiniCacheDeployment(
            config=config,
            reclamation_policy=reclamation_policy,
            simulator=simulator,
        )
        self.config = self.deployment.config
        self.simulator = self.deployment.simulator
        self.metrics = self.deployment.metrics
        self.tenants = TenantManager(metrics=self.metrics)
        # Order matters: the rebalancer must see membership events, and the
        # router's shared client ring is maintained by the deployment itself.
        # Objects dropped or evicted by maintenance (migration, repair) are
        # reported back so tenant byte accounting never drifts.
        self.rebalancer = Rebalancer(
            self.deployment, metrics=self.metrics,
            on_object_gone=self.tenants.record_gone,
        )
        self.router = ClusterRouter(self.deployment, self.tenants, metrics=self.metrics)
        self.autoscaler = PoolAutoscaler(
            self.deployment,
            config=autoscaler_config,
            rebalancer=self.rebalancer,
            metrics=self.metrics,
        )
        self.failure_detector = FailureDetector(
            self.deployment, interval_s=failure_detector_interval_s,
            metrics=self.metrics, on_object_gone=self.tenants.record_gone,
        )

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the deployment plus the autoscaler and failure detector."""
        self.deployment.start()
        self.autoscaler.start()
        self.failure_detector.start()

    def run_until(self, time_s: float) -> None:
        """Advance the shared simulation to ``time_s``."""
        self.deployment.run_until(time_s)

    def stop(self) -> None:
        """Stop periodic activities and flush open billing sessions."""
        self.autoscaler.stop()
        self.failure_detector.stop()
        self.deployment.stop()

    # ------------------------------------------------------------------ tenants
    def register_tenant(
        self, tenant_id: str, quota: TenantQuota | None = None
    ) -> TenantClient:
        """Register a tenant and hand back its namespaced client."""
        self.tenants.register(tenant_id, quota)
        return TenantClient(self.router, tenant_id)

    def tenant_client(self, tenant_id: str) -> TenantClient:
        """A client for an already-registered tenant."""
        self.tenants.tenant(tenant_id)
        return TenantClient(self.router, tenant_id)

    # ------------------------------------------------------------------ membership
    def add_proxy(self) -> Proxy:
        """Grow the cluster by one proxy; placements rebalance automatically."""
        return self.deployment.add_proxy()

    def remove_proxy(self, proxy_id: str) -> Proxy:
        """Shrink the cluster; the leaving proxy's objects are evacuated."""
        return self.deployment.remove_proxy(proxy_id)

    def pool_sizes(self) -> dict[str, int]:
        """Current Lambda-pool size per proxy."""
        return {proxy.proxy_id: proxy.pool_size for proxy in self.deployment.proxies}

    # ------------------------------------------------------------------ reporting
    def tenant_report(self) -> dict[str, dict[str, float]]:
        """Per-tenant usage and quota-enforcement snapshot."""
        return self.tenants.report()

    def chargeback_report(self) -> dict[str, dict[str, float]]:
        """Per-tenant GB-seconds and dollars, summing to the cluster bill.

        Every row decomposes :meth:`total_cost`: registered tenants pay for
        the invocations their traffic caused (serving, backup, warm-up,
        rebalance, and repair attributed by busy time), and the
        ``UNATTRIBUTED_TENANT`` row holds pool maintenance no tenant caused.
        """
        return self.tenants.chargeback(self.deployment.billing)

    def total_cost(self) -> float:
        """Total tenant-side dollars spent so far."""
        return self.deployment.total_cost()

    def cost_breakdown(self) -> dict[str, float]:
        """Dollars by category, including the ``rebalance`` migrations."""
        return self.deployment.cost_breakdown()

    def describe(self) -> dict[str, object]:
        """Configuration and orchestration summary, for experiment reports."""
        description = self.deployment.describe()
        description["tenants"] = self.tenants.tenant_ids()
        description["pool_sizes"] = self.pool_sizes()
        description["autoscaler"] = {
            "interval_s": self.autoscaler.config.interval_s,
            "policy": self.autoscaler.config.policy,
            "min_nodes": self.autoscaler.min_nodes,
            "max_nodes": self.autoscaler.max_nodes,
        }
        return description

"""Synthetic IBM Docker-registry trace generator.

The original traces (Anwar et al., FAST'18) are not redistributable, so this
generator produces traces matched to the characteristics the InfiniCache
paper reports about them (Section 2.1, Figure 1, Table 1):

* object sizes span about nine orders of magnitude and >20 % of objects are
  larger than 10 MB (Figure 1(a));
* objects larger than 10 MB account for more than 95 % of the byte footprint
  (Figure 1(b));
* access counts are long-tailed: ~30 % of large objects are accessed 10+
  times, the hottest exceed 10^4 accesses (Figure 1(c));
* 37-46 % of large-object reuses happen within one hour (Figure 1(d));
* the Dallas deployment serves large objects at an average rate below 3 500
  GETs per hour, with visible burst periods (the request spikes around hours
  15-20 and 34-42 of the replay that drive Figure 14);
* the 50-hour all-object working set is roughly 1.2 TB and the large-object
  working set roughly 1.0 TB (Table 1).

Two named presets, ``dallas`` and ``london``, differ in catalogue size and
burstiness so the Figure 1 reproduction can plot two datacentres.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeededRNG
from repro.utils.units import GB, HOUR, MB
from repro.workload.distributions import (
    ObjectSizeDistribution,
    ZipfPopularity,
    diurnal_rate_multiplier,
)
from repro.workload.trace import Trace, TraceRecord


@dataclass(frozen=True)
class BurstWindow:
    """A period of elevated request rate within the trace."""

    start_hour: float
    end_hour: float
    multiplier: float

    def __post_init__(self):
        if self.end_hour <= self.start_hour:
            raise ConfigurationError("burst window must end after it starts")
        if self.multiplier < 1.0:
            raise ConfigurationError("burst multiplier must be >= 1")

    def active(self, hour: float) -> bool:
        """Whether the burst covers the given hour of the trace."""
        return self.start_hour <= hour < self.end_hour


@dataclass(frozen=True)
class RegistryTraceConfig:
    """Parameters of one synthesised registry deployment."""

    name: str = "dallas"
    duration_hours: float = 50.0
    catalogue_size: int = 12_000
    base_requests_per_hour: float = 3_654.0
    popularity_exponent: float = 0.95
    #: Probability that a request re-reads an object accessed in the last hour
    #: (drives Figure 1(d)'s 37-46 % short-term reuse).
    short_reuse_probability: float = 0.42
    size_distribution: ObjectSizeDistribution = field(default_factory=ObjectSizeDistribution)
    burst_windows: tuple[BurstWindow, ...] = (
        BurstWindow(start_hour=15.0, end_hour=20.0, multiplier=2.4),
        BurstWindow(start_hour=34.0, end_hour=42.0, multiplier=2.0),
    )
    seed: int = 17

    def __post_init__(self):
        if self.duration_hours <= 0:
            raise ConfigurationError("duration must be positive")
        if self.catalogue_size < 1:
            raise ConfigurationError("catalogue size must be >= 1")
        if self.base_requests_per_hour <= 0:
            raise ConfigurationError("request rate must be positive")
        if not 0.0 <= self.short_reuse_probability < 1.0:
            raise ConfigurationError("short_reuse_probability must be in [0, 1)")


#: Named presets for the two datacentres plotted in Figure 1.
PRESETS: dict[str, RegistryTraceConfig] = {
    "dallas": RegistryTraceConfig(name="dallas", seed=17),
    "london": RegistryTraceConfig(
        name="london",
        catalogue_size=9_000,
        base_requests_per_hour=2_400.0,
        popularity_exponent=1.05,
        short_reuse_probability=0.38,
        burst_windows=(BurstWindow(start_hour=10.0, end_hour=14.0, multiplier=2.0),),
        seed=23,
    ),
}


class DockerRegistryTraceGenerator:
    """Generates synthetic Docker-registry traces."""

    def __init__(self, config: RegistryTraceConfig | str = "dallas"):
        if isinstance(config, str):
            preset = PRESETS.get(config)
            if preset is None:
                raise ConfigurationError(
                    f"unknown preset {config!r}; available presets: {sorted(PRESETS)}"
                )
            config = preset
        self.config = config
        self.rng = SeededRNG(config.seed)

    # ------------------------------------------------------------------ catalogue
    def _build_catalogue(self) -> list[tuple[str, int]]:
        """Create the (key, size) catalogue the trace draws from."""
        sizes = self.config.size_distribution.sample_many(
            self.rng.child("sizes"), self.config.catalogue_size
        )
        return [
            (f"{self.config.name}/blob-{index:07d}", size)
            for index, size in enumerate(sizes)
        ]

    # ------------------------------------------------------------------ generation
    def generate(self) -> Trace:
        """Produce the full trace for the configured duration."""
        config = self.config
        catalogue = self._build_catalogue()
        popularity = ZipfPopularity(
            catalogue_size=len(catalogue), exponent=config.popularity_exponent
        )
        rng = self.rng.child("requests")
        reuse_rng = self.rng.child("reuse")

        trace = Trace(name=config.name)
        recently_accessed: list[int] = []
        timestamp = 0.0
        horizon = config.duration_hours * HOUR
        while timestamp < horizon:
            hour = timestamp / HOUR
            rate = config.base_requests_per_hour * diurnal_rate_multiplier(hour % 24.0)
            for window in config.burst_windows:
                if window.active(hour):
                    rate *= window.multiplier
            # Poisson arrivals at the current rate.
            inter_arrival = rng.exponential(HOUR / rate)
            timestamp += inter_arrival
            if timestamp >= horizon:
                break
            # Temporal locality: with some probability, re-read something hot
            # from the last hour instead of drawing from the global popularity.
            if recently_accessed and reuse_rng.random() < config.short_reuse_probability:
                rank = recently_accessed[
                    reuse_rng.integers(0, len(recently_accessed))
                ]
            else:
                rank = popularity.sample_rank(rng)
            key, size = catalogue[rank]
            trace.append(
                TraceRecord(timestamp=timestamp, operation="GET", key=key, size=size)
            )
            recently_accessed.append(rank)
            # Keep the reuse window to roughly the last hour of requests.
            max_window = max(10, int(rate))
            if len(recently_accessed) > max_window:
                del recently_accessed[: len(recently_accessed) - max_window]
        return trace

    def generate_large_only(self, threshold_bytes: int = 10 * MB) -> Trace:
        """Generate and immediately filter to the large-object-only setting."""
        return self.generate().large_objects_only(threshold_bytes)


def summarize_trace(trace: Trace, large_threshold: int = 10 * MB) -> dict[str, float]:
    """Key statistics used by Table 1 and the Figure 1 reproduction."""
    sizes = trace.object_sizes()
    total_bytes = sum(sizes)
    large_bytes = sum(size for size in sizes if size > large_threshold)
    large_objects = sum(1 for size in sizes if size > large_threshold)
    return {
        "objects": len(sizes),
        "requests": trace.request_count(),
        "working_set_gb": trace.working_set_bytes() / GB,
        "gets_per_hour": trace.gets_per_hour(),
        "large_object_fraction": large_objects / len(sizes) if sizes else 0.0,
        "large_byte_fraction": large_bytes / total_bytes if total_bytes else 0.0,
    }

"""Trace records and trace containers.

A trace is an ordered sequence of :class:`TraceRecord` — (timestamp, op,
key, size) — the same shape as the parsed IBM Docker-registry trace the
paper replays.  Traces can be filtered (e.g. "objects larger than 10 MB",
the paper's *large object only* setting), truncated to a time window (the
paper replays the first 50 hours), and summarised (working-set size, request
rate) for Table 1.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.exceptions import WorkloadError
from repro.utils.units import HOUR, MB


@dataclass(frozen=True)
class TraceRecord:
    """One request in a workload trace."""

    timestamp: float
    operation: str
    key: str
    size: int

    def __post_init__(self):
        if self.timestamp < 0:
            raise WorkloadError(f"timestamp must be non-negative, got {self.timestamp}")
        if self.operation not in ("GET", "PUT"):
            raise WorkloadError(f"operation must be GET or PUT, got {self.operation!r}")
        if not self.key:
            raise WorkloadError("record key must be non-empty")
        if self.size <= 0:
            raise WorkloadError(f"record size must be positive, got {self.size}")


@dataclass
class Trace:
    """An ordered sequence of trace records with convenience analytics."""

    records: list[TraceRecord] = field(default_factory=list)
    name: str = "trace"

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def append(self, record: TraceRecord) -> None:
        """Append one record (timestamps must be non-decreasing)."""
        if self.records and record.timestamp < self.records[-1].timestamp:
            raise WorkloadError(
                "trace records must be appended in timestamp order "
                f"({record.timestamp} < {self.records[-1].timestamp})"
            )
        self.records.append(record)

    # ------------------------------------------------------------------ filtering
    def filter(self, predicate: Callable[[TraceRecord], bool], name: str | None = None) -> "Trace":
        """A new trace containing only records matching the predicate."""
        return Trace(
            records=[record for record in self.records if predicate(record)],
            name=name or f"{self.name}-filtered",
        )

    def large_objects_only(self, threshold_bytes: int = 10 * MB) -> "Trace":
        """The paper's *large object only* setting: objects above 10 MB."""
        return self.filter(lambda r: r.size > threshold_bytes, name=f"{self.name}-large")

    def first_hours(self, hours: float) -> "Trace":
        """Restrict to the first ``hours`` of the trace (paper: first 50 hours)."""
        horizon = hours * HOUR
        return self.filter(lambda r: r.timestamp < horizon, name=f"{self.name}-{hours:g}h")

    def gets_only(self) -> "Trace":
        """Only the GET requests (the paper parses the Dallas trace for GETs)."""
        return self.filter(lambda r: r.operation == "GET", name=f"{self.name}-gets")

    # ------------------------------------------------------------------ analytics
    def duration_s(self) -> float:
        """Time span covered by the trace."""
        if not self.records:
            return 0.0
        return self.records[-1].timestamp - self.records[0].timestamp

    def unique_objects(self) -> dict[str, int]:
        """Mapping of key to (last seen) object size."""
        sizes: dict[str, int] = {}
        for record in self.records:
            sizes[record.key] = record.size
        return sizes

    def working_set_bytes(self) -> int:
        """Working-set size: total bytes across unique objects (Table 1's WSS)."""
        return sum(self.unique_objects().values())

    def request_count(self) -> int:
        """Total number of requests."""
        return len(self.records)

    def gets_per_hour(self) -> float:
        """Average GET throughput (Table 1's Thpt column)."""
        duration = self.duration_s()
        gets = sum(1 for record in self.records if record.operation == "GET")
        if duration <= 0:
            return float(gets)
        return gets / (duration / HOUR)

    def object_sizes(self) -> list[int]:
        """Sizes of unique objects (Figure 1(a)/(b) inputs)."""
        return list(self.unique_objects().values())

    def access_counts(self, min_size_bytes: int = 0) -> list[int]:
        """Per-object access counts, optionally only for objects above a size."""
        counts: dict[str, int] = {}
        sizes = self.unique_objects()
        for record in self.records:
            if sizes[record.key] >= min_size_bytes:
                counts[record.key] = counts.get(record.key, 0) + 1
        return list(counts.values())

    def reuse_intervals_s(self, min_size_bytes: int = 0) -> list[float]:
        """Time between successive accesses to the same object (Figure 1(d))."""
        last_seen: dict[str, float] = {}
        sizes = self.unique_objects()
        intervals: list[float] = []
        for record in self.records:
            if sizes[record.key] < min_size_bytes:
                continue
            previous = last_seen.get(record.key)
            if previous is not None:
                intervals.append(record.timestamp - previous)
            last_seen[record.key] = record.timestamp
        return intervals

    # ------------------------------------------------------------------ serialisation
    def to_csv(self) -> str:
        """Serialise to CSV (timestamp, operation, key, size)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["timestamp", "operation", "key", "size"])
        for record in self.records:
            writer.writerow([f"{record.timestamp:.6f}", record.operation, record.key, record.size])
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str, name: str = "trace") -> "Trace":
        """Parse a trace previously produced by :meth:`to_csv`."""
        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        if header != ["timestamp", "operation", "key", "size"]:
            raise WorkloadError(f"unexpected trace CSV header: {header}")
        trace = cls(name=name)
        for row in reader:
            if not row:
                continue
            if len(row) != 4:
                raise WorkloadError(f"malformed trace CSV row: {row}")
            trace.append(
                TraceRecord(
                    timestamp=float(row[0]),
                    operation=row[1],
                    key=row[2],
                    size=int(row[3]),
                )
            )
        return trace

    @classmethod
    def from_records(cls, records: Iterable[TraceRecord], name: str = "trace") -> "Trace":
        """Build a trace from an iterable of records (must be time-ordered)."""
        trace = cls(name=name)
        for record in records:
            trace.append(record)
        return trace

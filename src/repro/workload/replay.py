"""Trace replayers: sequential facade plus event-driven request drivers.

Three ways to drive a cache with a workload:

* :class:`TraceReplayer` — the original **sequential facade**: one implicit
  client, strictly one request at a time, replayed in (virtual) real time by
  advancing the simulator to each record's timestamp.  Sufficient for the
  single-client figures (13-16, Table 1) and kept as the stable API.
* :class:`OpenLoopDriver` — **arrival-timestamped injection**: every trace
  record is scheduled as an event at its timestamp and runs as a coroutine
  process, so a slow request is still in flight when the next one arrives.
* :class:`ClosedLoopDriver` — **N concurrent clients**: each client is a
  coroutine issuing its next request the moment the previous one completes;
  this is the driver behind the Figure 12-style concurrent-throughput
  scaling measurements.

Common semantics follow the paper's evaluation:

* the cache is **read-only and write-through**: a GET miss triggers a RESET —
  fetch the object from the backing store and insert it into the cache —
  whose latency includes the backing-store fetch;
* every object in the trace is assumed to exist in the backing store (it is
  pre-populated before the replay starts).

The sequential facade produces a :class:`ReplayReport`; the event-driven
drivers produce a :class:`ConcurrentReplayReport`, which additionally
carries per-request intervals and the flow-level transfer trace so genuine
request overlap is assertable (and the run fingerprintable for determinism
checks).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.baselines.elasticache import ElastiCacheCluster
from repro.baselines.s3 import ObjectStore
from repro.cache.deployment import InfiniCacheDeployment
from repro.exceptions import WorkloadError
from repro.network.flows import FlowInterval, peak_concurrency
from repro.sim.process import CountdownLatch, all_of
from repro.simulation.metrics import TimeSeries
from repro.utils.stats import summarize
from repro.utils.units import HOUR
from repro.workload.trace import Trace


@dataclass
class ReplayReport:
    """Everything measured during one trace replay."""

    system: str
    trace_name: str
    requests: int = 0
    hits: int = 0
    misses: int = 0
    #: Misses caused by reclamation-induced data loss (the paper's RESETs);
    #: compulsory/capacity misses are counted in ``misses`` but not here.
    resets: int = 0
    recoveries: int = 0
    #: (object size, latency seconds) for every GET, hit or miss.
    latencies: list[tuple[int, float]] = field(default_factory=list)
    reset_events: TimeSeries = field(default_factory=lambda: TimeSeries("resets"))
    recovery_events: TimeSeries = field(default_factory=lambda: TimeSeries("recoveries"))
    total_cost: float = 0.0
    cost_breakdown: dict[str, float] = field(default_factory=dict)
    hourly_cost: dict[str, list[float]] = field(default_factory=dict)

    @property
    def hit_ratio(self) -> float:
        """Fraction of GETs served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def latency_values(self) -> list[float]:
        """All latency samples in seconds."""
        return [latency for _size, latency in self.latencies]

    def latency_summary(self) -> dict[str, float]:
        """Percentile summary of the latency samples."""
        return summarize(self.latency_values())

    def latencies_by_size_bucket(self) -> dict[str, list[float]]:
        """Latencies grouped into the paper's Figure 16 size buckets."""
        buckets: dict[str, list[float]] = {
            "<1MB": [],
            "[1,10)MB": [],
            "[10,100)MB": [],
            ">=100MB": [],
        }
        for size, latency in self.latencies:
            if size < 1_000_000:
                buckets["<1MB"].append(latency)
            elif size < 10_000_000:
                buckets["[1,10)MB"].append(latency)
            elif size < 100_000_000:
                buckets["[10,100)MB"].append(latency)
            else:
                buckets[">=100MB"].append(latency)
        return buckets


class TraceReplayer:
    """Replays a trace against InfiniCache, ElastiCache, or the bare object store."""

    def __init__(self, backing_store: Optional[ObjectStore] = None):
        self.backing_store = backing_store or ObjectStore()

    def _populate_backing_store(self, trace: Trace) -> None:
        for key, size in trace.unique_objects().items():
            self.backing_store.put(key, size)

    # ------------------------------------------------------------------ InfiniCache
    def replay_infinicache(
        self,
        trace: Trace,
        deployment: InfiniCacheDeployment,
        insert_on_miss: bool = True,
    ) -> ReplayReport:
        """Replay the trace against a started InfiniCache deployment."""
        if not trace.records:
            raise WorkloadError("cannot replay an empty trace")
        self._populate_backing_store(trace)
        deployment.start()
        client = deployment.new_client("replayer")
        report = ReplayReport(system="infinicache", trace_name=trace.name)

        for record in trace.records:
            deployment.run_until(record.timestamp)
            if record.operation == "PUT":
                client.invalidate(record.key)
                client.put_sized(record.key, record.size)
                continue
            report.requests += 1
            result = client.get(record.key)
            if result.hit:
                report.hits += 1
                latency = result.latency_s
                if result.recovery_performed:
                    report.recoveries += 1
                    report.recovery_events.record(record.timestamp, 1.0)
            else:
                report.misses += 1
                if result.data_lost:
                    report.resets += 1
                    report.reset_events.record(record.timestamp, 1.0)
                fetched = self.backing_store.get(record.key)
                if fetched is None:
                    raise WorkloadError(
                        f"object {record.key!r} is missing from the backing store"
                    )
                _size, store_latency = fetched
                latency = store_latency
                if insert_on_miss:
                    put_result = client.put_sized(record.key, record.size)
                    latency += put_result.latency_s
            report.latencies.append((record.size, latency))

        deployment.run_until(trace.records[-1].timestamp)
        deployment.stop()
        report.total_cost = deployment.total_cost()
        report.cost_breakdown = deployment.cost_breakdown()
        report.hourly_cost = self._hourly_costs(deployment, trace.records[-1].timestamp)
        return report

    def _hourly_costs(
        self, deployment: InfiniCacheDeployment, end_time: float
    ) -> dict[str, list[float]]:
        """Per-hour cost increments by category (Figure 13(b)-(d))."""
        hourly: dict[str, list[float]] = {}
        hours = int(end_time // HOUR) + 1
        for category in ("serving", "warmup", "backup", "total"):
            name = f"cost.cumulative.{category}"
            if not deployment.metrics.has_series(name):
                hourly[category] = [0.0] * hours
                continue
            series = deployment.metrics.series(name)
            per_hour = []
            previous = 0.0
            for hour in range(1, hours + 1):
                window = series.window(0.0, hour * HOUR)
                cumulative = window[-1][1] if window else previous
                per_hour.append(max(0.0, cumulative - previous))
                previous = cumulative
            hourly[category] = per_hour
        return hourly

    # ------------------------------------------------------------------ ElastiCache
    def replay_elasticache(
        self, trace: Trace, cluster: ElastiCacheCluster, insert_on_miss: bool = True
    ) -> ReplayReport:
        """Replay the trace against an ElastiCache cluster."""
        if not trace.records:
            raise WorkloadError("cannot replay an empty trace")
        self._populate_backing_store(trace)
        report = ReplayReport(system="elasticache", trace_name=trace.name)
        for record in trace.records:
            now = record.timestamp
            if record.operation == "PUT":
                cluster.put(record.key, record.size, now)
                continue
            report.requests += 1
            latency = cluster.get(record.key, now)
            if latency is None:
                # ElastiCache misses are compulsory or capacity misses; the
                # provider never reclaims its memory, so they are not RESETs.
                report.misses += 1
                fetched = self.backing_store.get(record.key)
                if fetched is None:
                    raise WorkloadError(
                        f"object {record.key!r} is missing from the backing store"
                    )
                _size, store_latency = fetched
                total_latency = store_latency
                if insert_on_miss:
                    total_latency += cluster.put(record.key, record.size, now)
                report.latencies.append((record.size, total_latency))
            else:
                report.hits += 1
                report.latencies.append((record.size, latency))
        duration = trace.records[-1].timestamp
        report.total_cost = cluster.cost_for_duration(duration)
        report.cost_breakdown = {"capacity": report.total_cost, "total": report.total_cost}
        return report

    # ------------------------------------------------------------------ bare object store
    def replay_object_store(self, trace: Trace) -> ReplayReport:
        """Replay the trace directly against the backing store (the S3 baseline)."""
        if not trace.records:
            raise WorkloadError("cannot replay an empty trace")
        self._populate_backing_store(trace)
        report = ReplayReport(system="s3", trace_name=trace.name)
        for record in trace.records:
            if record.operation == "PUT":
                self.backing_store.put(record.key, record.size)
                continue
            report.requests += 1
            fetched = self.backing_store.get(record.key)
            if fetched is None:
                raise WorkloadError(f"object {record.key!r} is missing from the backing store")
            _size, latency = fetched
            report.hits += 1
            report.latencies.append((record.size, latency))
        report.total_cost = self.backing_store.request_cost()
        report.cost_breakdown = {"requests": report.total_cost, "total": report.total_cost}
        return report


# ---------------------------------------------------------------------- event-driven drivers
@dataclass(frozen=True)
class RequestSample:
    """One request's interval on the virtual clock, as a driver recorded it."""

    client_id: str
    key: str
    size: int
    started_at: float
    finished_at: float
    hit: bool
    reset: bool = False

    @property
    def latency_s(self) -> float:
        """End-to-end request latency, RESET handling included."""
        return self.finished_at - self.started_at

    def overlaps(self, other: "RequestSample") -> bool:
        """Whether two requests were in flight at the same instant."""
        return self.started_at < other.finished_at and other.started_at < self.finished_at


@dataclass
class ConcurrentReplayReport:
    """Everything measured by an event-driven (overlapping-request) replay."""

    system: str
    #: ``"closed-loop"`` or ``"open-loop"``.
    mode: str
    clients: int
    requests: int = 0
    hits: int = 0
    misses: int = 0
    resets: int = 0
    recoveries: int = 0
    samples: list[RequestSample] = field(default_factory=list)
    #: Chunk-transfer intervals recorded by the flow network during the run.
    flow_intervals: list[FlowInterval] = field(default_factory=list)
    #: High-water mark of simultaneously-active transfers on the underlying
    #: flow network up to the end of this run (O(1) to maintain, available
    #: even under trace limits).  Equals this run's peak whenever the run is
    #: the deployment's first replay — the usual pattern; a later run on a
    #: reused deployment inherits any higher earlier peak.
    peak_active_flows: int = 0
    #: Transfers retired during the run but evicted from ``flow_intervals``
    #: by a ``flow_trace_limit``.  Non-zero means the interval-derived views
    #: (``fingerprint()``, ``max_concurrent_flows()``, overlap counts) cover
    #: only the retained tail of the run.
    flow_intervals_dropped: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Object bytes delivered to clients (hits plus RESET fetches).
    total_bytes: int = 0
    total_cost: float = 0.0

    @property
    def hit_ratio(self) -> float:
        """Fraction of GETs served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def duration_s(self) -> float:
        """Virtual seconds between the first request start and the last finish."""
        return self.finished_at - self.started_at

    @property
    def aggregate_throughput_bps(self) -> float:
        """Object bytes per second of simulated wall-clock time."""
        return self.total_bytes / self.duration_s if self.duration_s > 0 else 0.0

    def latency_values(self) -> list[float]:
        """All request latency samples in seconds."""
        return [sample.latency_s for sample in self.samples]

    def latency_summary(self) -> dict[str, float]:
        """Percentile summary of the latency samples."""
        return summarize(self.latency_values())

    def max_concurrent_flows(self) -> int:
        """Peak number of simultaneously in-flight chunk transfers."""
        return peak_concurrency(
            [(i.started_at, i.ended_at) for i in self.flow_intervals]
        )

    def overlapping_flow_pairs(self) -> int:
        """Number of chunk-transfer interval pairs that overlap in time.

        Strictly zero for the sequential facade (one transfer's interval is
        collapsed to a point before the next starts); positive as soon as
        two transfers — of one request or of two concurrent requests —
        genuinely share the wire.
        """
        intervals = sorted(self.flow_intervals, key=lambda i: i.started_at)
        pairs = 0
        for index, interval in enumerate(intervals):
            for other in intervals[index + 1:]:
                if other.started_at >= interval.ended_at:
                    break
                pairs += 1
        return pairs

    def fingerprint(self) -> str:
        """Deterministic digest of the run (for seeds-fixed determinism checks).

        Covers every request interval and every flow interval, rounded to
        nanoseconds so the digest is stable across platforms.
        """
        hasher = hashlib.sha256()
        for sample in self.samples:
            hasher.update(
                f"{sample.client_id}|{sample.key}|{sample.size}|"
                f"{sample.started_at:.9f}|{sample.finished_at:.9f}|"
                f"{int(sample.hit)}|{int(sample.reset)}\n".encode()
            )
        for interval in self.flow_intervals:
            hasher.update(
                f"{interval.label}|{interval.host_id}|{interval.size_bytes}|"
                f"{interval.started_at:.9f}|{interval.ended_at:.9f}|"
                f"{int(interval.completed)}\n".encode()
            )
        return hasher.hexdigest()


class _EventDriver:
    """Shared machinery of the open- and closed-loop drivers."""

    def __init__(
        self,
        deployment: InfiniCacheDeployment,
        backing_store: Optional[ObjectStore] = None,
        insert_on_miss: bool = True,
    ):
        self.deployment = deployment
        self.backing_store = backing_store or ObjectStore()
        self.insert_on_miss = insert_on_miss

    def _request_process(self, client, client_id: str, key: str, size: int,
                         report: ConcurrentReplayReport):
        """Coroutine for one GET, including the RESET path on a miss."""
        env = self.deployment.request_env
        started = env.now
        report.requests += 1
        result = yield from client.get_process(key, env)
        reset = False
        if result.hit:
            report.hits += 1
            report.total_bytes += result.size
            if result.recovery_performed:
                report.recoveries += 1
        else:
            report.misses += 1
            reset = result.data_lost
            if reset:
                report.resets += 1
            fetched = self.backing_store.get(key)
            if fetched is None:
                raise WorkloadError(f"object {key!r} is missing from the backing store")
            _size, store_latency = fetched
            yield store_latency
            if self.insert_on_miss:
                yield from client.put_sized_process(key, size, env)
            report.total_bytes += size
        report.samples.append(RequestSample(
            client_id=client_id, key=key, size=size,
            started_at=started, finished_at=env.now,
            hit=result.hit, reset=reset,
        ))

    def _finish(self, report: ConcurrentReplayReport, trace_marker: int) -> ConcurrentReplayReport:
        flows = self.deployment.flows
        report.flow_intervals = flows.trace_since(trace_marker)
        report.peak_active_flows = flows.max_concurrent()
        retired_during_run = flows.trace_marker() - trace_marker
        report.flow_intervals_dropped = retired_during_run - len(report.flow_intervals)
        if report.samples:
            report.started_at = min(s.started_at for s in report.samples)
            report.finished_at = max(s.finished_at for s in report.samples)
        self.deployment.stop()
        report.total_cost = self.deployment.total_cost()
        return report


class ClosedLoopDriver(_EventDriver):
    """N concurrent clients, each issuing back-to-back requests.

    Every client is a coroutine process: it waits for its own previous
    request (decode included) before issuing the next one, so offered load
    rises with the client count exactly as in the paper's Figure 12 setup.
    """

    def _client_process(self, client, client_id: str,
                        requests: Sequence[tuple[str, int]],
                        report: ConcurrentReplayReport):
        for key, size in requests:
            yield from self._request_process(client, client_id, key, size, report)
        return client_id

    def run(self, requests_by_client: Sequence[Sequence[tuple[str, int]]]) -> ConcurrentReplayReport:
        """Drive one coroutine client per request list until all complete.

        Args:
            requests_by_client: per client, the ``(key, size)`` GETs it
                issues in order; sizes are used to pre-populate the backing
                store and to re-insert on miss.
        """
        if not requests_by_client:
            raise WorkloadError("the closed-loop driver needs at least one client")
        for requests in requests_by_client:
            for key, size in requests:
                self.backing_store.put(key, size)
        report = ConcurrentReplayReport(
            system="infinicache", mode="closed-loop", clients=len(requests_by_client),
        )
        trace_marker = self.deployment.flows.trace_marker()
        self.deployment.start()
        loop = self.deployment.simulator
        processes = [
            loop.spawn(
                self._client_process(
                    self.deployment.new_client(f"closed-loop-{index}"),
                    f"closed-loop-{index}", list(requests), report,
                ),
                label=f"driver.client.{index}",
            )
            for index, requests in enumerate(requests_by_client)
        ]
        loop.run_until_complete(all_of([process.future for process in processes]))
        return self._finish(report, trace_marker)


class OpenLoopDriver(_EventDriver):
    """Arrival-timestamped request injection from a trace.

    Every record is scheduled at its trace timestamp and spawned as a
    process when the clock reaches it — the offered load follows the trace
    regardless of how long individual requests take, so slow requests
    overlap with later arrivals instead of delaying them (which is what the
    sequential facade does).
    """

    def run(self, trace: Trace) -> ConcurrentReplayReport:
        """Inject every trace record at its timestamp; returns when all finish."""
        if not trace.records:
            raise WorkloadError("cannot replay an empty trace")
        for key, size in trace.unique_objects().items():
            self.backing_store.put(key, size)
        report = ConcurrentReplayReport(
            system="infinicache", mode="open-loop", clients=1,
        )
        trace_marker = self.deployment.flows.trace_marker()
        self.deployment.start()
        loop = self.deployment.simulator
        client = self.deployment.new_client("open-loop")
        latch = CountdownLatch(len(trace.records), label="open_loop.complete")

        def inject(record) -> None:
            if record.operation == "PUT":
                def put_process():
                    client.invalidate(record.key)
                    yield from client.put_sized_process(
                        record.key, record.size, self.deployment.request_env
                    )
                process = loop.spawn(put_process(), label=f"driver.put.{record.key}")
            else:
                process = loop.spawn(
                    self._request_process(
                        client, "open-loop", record.key, record.size, report
                    ),
                    label=f"driver.get.{record.key}",
                )
            process.future.add_done_callback(latch.count_down)

        for record in trace.records:
            loop.schedule_at(
                record.timestamp, lambda r=record: inject(r), label="driver.arrival"
            )
        loop.run_until_complete(latch.future)
        return self._finish(report, trace_marker)

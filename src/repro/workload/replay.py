"""Event-driven trace replay: the paper's single execution path.

Every experiment drives the cache through one of the drivers in this
module, all of which run on the discrete-event engine (`repro.sim`):

* :class:`ClosedLoopDriver` — **N concurrent clients**: each client is a
  coroutine issuing its next operation the moment the previous one
  completes; this is the driver behind the Figure 12-style concurrent
  throughput scaling measurements.  Plans may mix GET/PUT/INVALIDATE/SLEEP
  operations (:class:`ClientOp`), which is how the microbenchmark figures
  (4 and 11) express their re-place-then-measure rounds.
* :class:`OpenLoopDriver` — **arrival-timestamped injection**: every trace
  record is scheduled as an event at its timestamp and runs as a coroutine
  process, so a slow request is still in flight when the next one arrives.
  :meth:`OpenLoopDriver.run_schedule` exposes the same injection machinery
  for custom per-arrival coroutines (the multi-tenant ``cluster_scale``
  replay).
* :class:`OpenLoopBaselineDriver` — the same open-loop injection against a
  latency-model baseline (ElastiCache or the raw object store) on its own
  event loop, so the comparison systems of Figures 13, 15, 16 and Table 1
  replay through the identical arrival path as the cache.

Common semantics follow the paper's evaluation:

* the cache is **read-only and write-through**: a GET miss triggers a RESET —
  fetch the object from the backing store and insert it into the cache —
  whose latency includes the backing-store fetch;
* every object in the trace is assumed to exist in the backing store (it is
  pre-populated before the replay starts).

All drivers produce a :class:`ConcurrentReplayReport` carrying per-request
intervals, hit/miss/RESET accounting and time series, latency projections
(percentiles, the Figure 16 size buckets), cost breakdowns, the flow-level
transfer trace, and a :meth:`~ConcurrentReplayReport.fingerprint` digest —
the quantity the golden differential-replay suite pins per figure.

The original synchronous facade (``TraceReplayer``) is quarantined in
:mod:`repro.workload.legacy`; it survives only as a differential baseline
for driver tests and must not be used by experiments.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.baselines.elasticache import ElastiCacheCluster
from repro.baselines.s3 import ObjectStore
from repro.cache.deployment import InfiniCacheDeployment
from repro.exceptions import WorkloadError
from repro.network.flows import FlowInterval, peak_concurrency
from repro.sim.loop import EventLoop
from repro.sim.process import CountdownLatch, all_of
from repro.simulation.metrics import MetricRegistry, TimeSeries
from repro.utils.stats import summarize
from repro.utils.units import HOUR
from repro.workload.trace import Trace


#: The paper's Figure 16 object-size buckets.
SIZE_BUCKETS = ("<1MB", "[1,10)MB", "[10,100)MB", ">=100MB")


def bucket_latencies(pairs: Sequence[tuple[int, float]]) -> dict[str, list[float]]:
    """Group ``(object size, latency)`` pairs into the Figure 16 size buckets."""
    buckets: dict[str, list[float]] = {bucket: [] for bucket in SIZE_BUCKETS}
    for size, latency in pairs:
        if size < 1_000_000:
            buckets["<1MB"].append(latency)
        elif size < 10_000_000:
            buckets["[1,10)MB"].append(latency)
        elif size < 100_000_000:
            buckets["[10,100)MB"].append(latency)
        else:
            buckets[">=100MB"].append(latency)
    return buckets


def hourly_costs(metrics: MetricRegistry, end_time: float) -> dict[str, list[float]]:
    """Per-hour cost increments by category (Figure 13(b)-(d)).

    Reads the cumulative cost series the deployment samples every minute
    and differences them into hourly buckets.
    """
    hourly: dict[str, list[float]] = {}
    hours = int(end_time // HOUR) + 1
    for category in ("serving", "warmup", "backup", "total"):
        name = f"cost.cumulative.{category}"
        if not metrics.has_series(name):
            hourly[category] = [0.0] * hours
            continue
        series = metrics.series(name)
        per_hour = []
        previous = 0.0
        for hour in range(1, hours + 1):
            window = series.window(0.0, hour * HOUR)
            cumulative = window[-1][1] if window else previous
            per_hour.append(max(0.0, cumulative - previous))
            previous = cumulative
        hourly[category] = per_hour
    return hourly


# ---------------------------------------------------------------------- samples and reports
@dataclass(frozen=True)
class RequestSample:
    """One request's interval on the virtual clock, as a driver recorded it."""

    client_id: str
    key: str
    size: int
    started_at: float
    finished_at: float
    hit: bool
    reset: bool = False
    #: Whether the hit needed an erasure-coded degraded read (Figure 14).
    recovery: bool = False
    #: Distinct VM hosts the request's chunks touched (Figure 4's x-axis);
    #: zero for baseline systems, which have no chunk fan-out.
    hosts_touched: int = 0
    #: Hardened path only: the request was served from the backing store
    #: because fewer than ``data_shards`` chunks were reachable (a degraded
    #: hit).  Deliberately *not* part of :meth:`ConcurrentReplayReport.
    #: fingerprint` — fault-free runs never set it, so the golden figure
    #: fingerprints are untouched.
    degraded: bool = False

    @property
    def latency_s(self) -> float:
        """End-to-end request latency, RESET handling included."""
        return self.finished_at - self.started_at

    def overlaps(self, other: "RequestSample") -> bool:
        """Whether two requests were in flight at the same instant."""
        return self.started_at < other.finished_at and other.started_at < self.finished_at


@dataclass
class ConcurrentReplayReport:
    """Everything measured by an event-driven (overlapping-request) replay."""

    system: str
    #: ``"closed-loop"`` or ``"open-loop"``.
    mode: str
    clients: int
    trace_name: str = ""
    requests: int = 0
    hits: int = 0
    misses: int = 0
    resets: int = 0
    recoveries: int = 0
    #: Requests served from the backing store because the cache's chunks
    #: were transiently unreachable (hardened path under fault injection).
    degraded_hits: int = 0
    #: Resilience counters harvested from the deployment after the run
    #: (chunk retries, hedges, breaker rejections, injected faults, ...).
    resilience: dict[str, float] = field(default_factory=dict)
    samples: list[RequestSample] = field(default_factory=list)
    #: RESET / recovery occurrences on the virtual clock (Figure 14's
    #: per-hour activity series).  Each event is stamped at the clock
    #: instant its outcome became known — miss detection for a RESET, GET
    #: completion for a recovery — which may trail the request's arrival;
    #: the clock only moves forward, so the series stays monotone even
    #: though overlapping requests resolve out of arrival order.
    reset_events: TimeSeries = field(default_factory=lambda: TimeSeries("resets"))
    recovery_events: TimeSeries = field(default_factory=lambda: TimeSeries("recoveries"))
    #: Chunk-transfer intervals recorded by the flow network during the run.
    flow_intervals: list[FlowInterval] = field(default_factory=list)
    #: High-water mark of simultaneously-active transfers on the underlying
    #: flow network up to the end of this run (O(1) to maintain, available
    #: even under trace limits).  Equals this run's peak whenever the run is
    #: the deployment's first replay — the usual pattern; a later run on a
    #: reused deployment inherits any higher earlier peak.
    peak_active_flows: int = 0
    #: Transfers retired during the run but evicted from ``flow_intervals``
    #: by a ``flow_trace_limit``.  Non-zero means the interval-derived views
    #: (``fingerprint()``, ``max_concurrent_flows()``, overlap counts) cover
    #: only the retained tail of the run.
    flow_intervals_dropped: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Object bytes delivered to clients (hits plus RESET fetches).
    total_bytes: int = 0
    total_cost: float = 0.0
    cost_breakdown: dict[str, float] = field(default_factory=dict)
    #: Per-hour cost increments by category (Figure 13(b)-(d)).
    hourly_cost: dict[str, list[float]] = field(default_factory=dict)

    @property
    def hit_ratio(self) -> float:
        """Fraction of GETs served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def duration_s(self) -> float:
        """Virtual seconds between the first request start and the last finish."""
        return self.finished_at - self.started_at

    @property
    def aggregate_throughput_bps(self) -> float:
        """Object bytes per second of simulated wall-clock time."""
        return self.total_bytes / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def latencies(self) -> list[tuple[int, float]]:
        """``(object size, latency seconds)`` for every GET, hit or miss."""
        return [(sample.size, sample.latency_s) for sample in self.samples]

    def latency_values(self) -> list[float]:
        """All request latency samples in seconds."""
        return [sample.latency_s for sample in self.samples]

    def latency_summary(self) -> dict[str, float]:
        """Percentile summary of the latency samples."""
        return summarize(self.latency_values())

    def latencies_by_size_bucket(self) -> dict[str, list[float]]:
        """Latencies grouped into the paper's Figure 16 size buckets."""
        return bucket_latencies(self.latencies)

    def hit_samples(self) -> list[RequestSample]:
        """Only the requests served from the cache (microbenchmark figures)."""
        return [sample for sample in self.samples if sample.hit]

    def fold_sample_bounds(self) -> None:
        """Set ``started_at``/``finished_at`` from the recorded samples.

        Shared by every driver so cache and baseline reports derive their
        ``duration_s`` (and therefore throughput) identically.
        """
        if self.samples:
            self.started_at = min(s.started_at for s in self.samples)
            self.finished_at = max(s.finished_at for s in self.samples)

    def max_concurrent_flows(self) -> int:
        """Peak number of simultaneously in-flight chunk transfers."""
        return peak_concurrency(
            [(i.started_at, i.ended_at) for i in self.flow_intervals]
        )

    def overlapping_flow_pairs(self) -> int:
        """Number of chunk-transfer interval pairs that overlap in time.

        Strictly zero for the sequential facade (one transfer's interval is
        collapsed to a point before the next starts); positive as soon as
        two transfers — of one request or of two concurrent requests —
        genuinely share the wire.
        """
        intervals = sorted(self.flow_intervals, key=lambda i: i.started_at)
        pairs = 0
        for index, interval in enumerate(intervals):
            for other in intervals[index + 1:]:
                if other.started_at >= interval.ended_at:
                    break
                pairs += 1
        return pairs

    def fingerprint(self) -> str:
        """Deterministic digest of the run (for seeds-fixed determinism checks).

        Covers every request interval and every flow interval, rounded to
        nanoseconds so the digest is stable across platforms.
        """
        hasher = hashlib.sha256()
        for sample in self.samples:
            hasher.update(
                f"{sample.client_id}|{sample.key}|{sample.size}|"
                f"{sample.started_at:.9f}|{sample.finished_at:.9f}|"
                f"{int(sample.hit)}|{int(sample.reset)}\n".encode()
            )
        for interval in self.flow_intervals:
            hasher.update(
                f"{interval.label}|{interval.host_id}|{interval.size_bytes}|"
                f"{interval.started_at:.9f}|{interval.ended_at:.9f}|"
                f"{int(interval.completed)}\n".encode()
            )
        return hasher.hexdigest()


# ---------------------------------------------------------------------- client operations
@dataclass(frozen=True)
class ClientOp:
    """One scripted closed-loop client operation.

    Plans handed to :class:`ClosedLoopDriver` may mix plain ``(key, size)``
    tuples (GETs, the common case) with explicit operations:

    * ``GET`` — fetch, with the RESET path on a miss (recorded as a sample);
    * ``PUT`` — sized insert (re-placement rounds of Figures 4 and 11);
    * ``INVALIDATE`` — drop the cached object (write-through overwrite);
    * ``SLEEP`` — advance this client's virtual time by ``delay_s`` (the
      between-rounds idle the microbenchmark figures use, during which
      warm-ups, backups, and reclamations keep ticking).
    """

    op: str
    key: str = ""
    size: int = 0
    delay_s: float = 0.0

    def __post_init__(self):
        if self.op not in ("GET", "PUT", "INVALIDATE", "SLEEP"):
            raise WorkloadError(f"unsupported client op {self.op!r}")
        if self.op in ("GET", "PUT") and (not self.key or self.size <= 0):
            raise WorkloadError(f"{self.op} ops need a key and a positive size")
        if self.op == "INVALIDATE" and not self.key:
            raise WorkloadError("INVALIDATE ops need a key")
        if self.op == "SLEEP" and self.delay_s < 0:
            raise WorkloadError("SLEEP delay must be non-negative")


#: What a closed-loop plan may contain: a GET tuple or an explicit op.
PlanEntry = Union[tuple[str, int], ClientOp]


def _normalise_plan(entries: Sequence[PlanEntry]) -> list[ClientOp]:
    ops = []
    for entry in entries:
        if isinstance(entry, ClientOp):
            ops.append(entry)
        else:
            key, size = entry
            ops.append(ClientOp("GET", key=key, size=size))
    return ops


# ---------------------------------------------------------------------- arrival injection
def _run_arrivals(
    loop: EventLoop,
    arrivals: Sequence[tuple[float, str, Callable[[], object]]],
    latch_label: str,
) -> None:
    """Schedule every ``(timestamp, label, coroutine factory)`` arrival and
    run the loop until all spawned processes finish."""
    latch = CountdownLatch(len(arrivals), label=latch_label)

    def inject(label: str, factory: Callable[[], object]) -> None:
        process = loop.spawn(factory(), label=label)
        process.future.add_done_callback(latch.count_down)

    for timestamp, label, factory in arrivals:
        loop.schedule_at(
            timestamp, lambda l=label, f=factory: inject(l, f), label="driver.arrival"
        )
    loop.run_until_complete(latch.future)


class _EventDriver:
    """Shared machinery of the open- and closed-loop drivers."""

    def __init__(
        self,
        deployment: InfiniCacheDeployment,
        backing_store: Optional[ObjectStore] = None,
        insert_on_miss: bool = True,
        warm_pool: bool = False,
    ):
        self.deployment = deployment
        self.backing_store = backing_store or ObjectStore()
        self.insert_on_miss = insert_on_miss
        #: Warm every proxy's full Lambda pool before the first request, so
        #: the pool is spread over its full set of VM hosts (the Figure 4
        #: methodology deploys the pool before measuring).
        self.warm_pool = warm_pool

    def _start(self) -> int:
        """Start the deployment (and optional warm-up phase); returns the
        flow-trace marker bounding this run's transfer intervals."""
        trace_marker = self.deployment.flows.trace_marker()
        self.deployment.start()
        if self.warm_pool:
            now = self.deployment.simulator.now
            for proxy in self.deployment.proxies:
                proxy.warm_up_pool(now)
        return trace_marker

    def _request_process(self, client, client_id: str, key: str, size: int,
                         report: ConcurrentReplayReport):
        """Coroutine for one GET, including the RESET path on a miss."""
        env = self.deployment.request_env
        started = env.now
        report.requests += 1
        tracer = env.tracer
        span = tracer.begin("request", client=client_id, key=key, op="GET")
        result = yield from client.get_process(key, env, span=span)
        reset = False
        if result.hit:
            report.hits += 1
            report.total_bytes += result.size
            if result.recovery_performed:
                report.recoveries += 1
                # Stamped at the instant the outcome is known (env.now, not
                # the arrival time): the clock only moves forward, so the
                # series stays monotone even when requests overlap.
                report.recovery_events.record(env.now, 1.0)
        elif result.degraded:
            # Hardened path: the object is still cached but its chunks were
            # transiently unreachable — serve from the backing store and
            # count a degraded hit (not an error, not a RESET), leaving the
            # mapping for the failure detector to heal.
            report.degraded_hits += 1
            fetched = self.backing_store.get(key)
            if fetched is None:
                raise WorkloadError(f"object {key!r} is missing from the backing store")
            _size, store_latency = fetched
            fetch_span = tracer.begin("store.fetch", span, key=key)
            yield store_latency
            tracer.finish(fetch_span)
            report.total_bytes += size
            tracer.finish(span, hit=True, reset=False, degraded=True)
            report.samples.append(RequestSample(
                client_id=client_id, key=key, size=size,
                started_at=started, finished_at=env.now,
                hit=True, reset=False, degraded=True,
                hosts_touched=result.hosts_touched,
            ))
            return
        else:
            report.misses += 1
            reset = result.data_lost
            if reset:
                report.resets += 1
                report.reset_events.record(env.now, 1.0)
            fetched = self.backing_store.get(key)
            if fetched is None:
                raise WorkloadError(f"object {key!r} is missing from the backing store")
            _size, store_latency = fetched
            fetch_span = tracer.begin("store.fetch", span, key=key)
            yield store_latency
            tracer.finish(fetch_span)
            if self.insert_on_miss:
                yield from client.put_sized_process(key, size, env, span=span)
            report.total_bytes += size
        tracer.finish(span, hit=result.hit, reset=reset)
        report.samples.append(RequestSample(
            client_id=client_id, key=key, size=size,
            started_at=started, finished_at=env.now,
            hit=result.hit, reset=reset,
            recovery=result.hit and result.recovery_performed,
            hosts_touched=result.hosts_touched,
        ))

    def _collect(self, report: ConcurrentReplayReport, trace_marker: int) -> None:
        """Fold the run's flow-trace window and request bounds into the report."""
        flows = self.deployment.flows
        report.flow_intervals = flows.trace_since(trace_marker)
        report.peak_active_flows = flows.max_concurrent()
        retired_during_run = flows.trace_marker() - trace_marker
        report.flow_intervals_dropped = retired_during_run - len(report.flow_intervals)
        report.fold_sample_bounds()

    #: Deployment counters folded into ``report.resilience`` after a run.
    RESILIENCE_COUNTERS = (
        "proxy.chunk_retries",
        "proxy.chunk_hedges",
        "proxy.chunk_faults",
        "proxy.breaker_rejections",
        "proxy.degraded_fallbacks",
        "proxy.put_failures",
        "proxy.repair_faults",
        "faas.injected_faults",
        "faas.reclaims",
        "backup.interrupted_rounds",
    )

    def _finish(self, report: ConcurrentReplayReport, trace_marker: int) -> ConcurrentReplayReport:
        self._collect(report, trace_marker)
        all_counters = self.deployment.counters()
        report.resilience = {
            name: all_counters[name]
            for name in self.RESILIENCE_COUNTERS
            if name in all_counters
        }
        self.deployment.stop()
        report.total_cost = self.deployment.total_cost()
        report.cost_breakdown = self.deployment.cost_breakdown()
        report.hourly_cost = hourly_costs(
            self.deployment.metrics, self.deployment.simulator.now
        )
        # Fold the final billing ledgers into the deployment's registry so a
        # metrics export after the run carries the labelled cost breakdowns.
        self.deployment.billing.publish_metrics(self.deployment.metrics)
        return report


class ClosedLoopDriver(_EventDriver):
    """N concurrent clients, each issuing back-to-back operations.

    Every client is a coroutine process: it waits for its own previous
    operation (decode included) before issuing the next one, so offered load
    rises with the client count exactly as in the paper's Figure 12 setup.
    """

    def _client_process(self, client, client_id: str, ops: Sequence[ClientOp],
                        report: ConcurrentReplayReport):
        env = self.deployment.request_env
        for op in ops:
            if op.op == "GET":
                yield from self._request_process(client, client_id, op.key, op.size, report)
            elif op.op == "PUT":
                yield from client.put_sized_process(op.key, op.size, env)
            elif op.op == "INVALIDATE":
                client.invalidate(op.key)
            elif op.op == "SLEEP" and op.delay_s > 0:
                yield op.delay_s
        return client_id

    def run(self, requests_by_client: Sequence[Sequence[PlanEntry]]) -> ConcurrentReplayReport:
        """Drive one coroutine client per plan until all complete.

        Args:
            requests_by_client: per client, the operations it issues in
                order — ``(key, size)`` GET tuples and/or :class:`ClientOp`
                entries.  GET sizes pre-populate the backing store for the
                RESET path and are re-inserted on miss.
        """
        if not requests_by_client:
            raise WorkloadError("the closed-loop driver needs at least one client")
        plans = [_normalise_plan(entries) for entries in requests_by_client]
        for ops in plans:
            for op in ops:
                if op.op == "GET":
                    self.backing_store.put(op.key, op.size)
        report = ConcurrentReplayReport(
            system="infinicache", mode="closed-loop", clients=len(plans),
        )
        trace_marker = self._start()
        loop = self.deployment.simulator
        processes = [
            loop.spawn(
                self._client_process(
                    self.deployment.new_client(f"closed-loop-{index}"),
                    f"closed-loop-{index}", ops, report,
                ),
                label=f"driver.client.{index}",
            )
            for index, ops in enumerate(plans)
        ]
        loop.run_until_complete(all_of([process.future for process in processes]))
        return self._finish(report, trace_marker)


class OpenLoopDriver(_EventDriver):
    """Arrival-timestamped request injection from a trace.

    Every record is scheduled at its trace timestamp and spawned as a
    process when the clock reaches it — the offered load follows the trace
    regardless of how long individual requests take, so slow requests
    overlap with later arrivals instead of delaying them (which is what the
    quarantined sequential facade does).
    """

    def run(self, trace: Trace) -> ConcurrentReplayReport:
        """Inject every trace record at its timestamp; returns when all finish."""
        if not trace.records:
            raise WorkloadError("cannot replay an empty trace")
        for key, size in trace.unique_objects().items():
            self.backing_store.put(key, size)
        report = ConcurrentReplayReport(
            system="infinicache", mode="open-loop", clients=1, trace_name=trace.name,
        )
        trace_marker = self._start()
        client = self.deployment.new_client("open-loop")
        env = self.deployment.request_env

        def put_factory(record):
            def put_process():
                client.invalidate(record.key)
                yield from client.put_sized_process(record.key, record.size, env)
            return put_process

        arrivals = []
        for record in trace.records:
            if record.operation == "PUT":
                arrivals.append(
                    (record.timestamp, f"driver.put.{record.key}", put_factory(record))
                )
            else:
                arrivals.append((
                    record.timestamp,
                    f"driver.get.{record.key}",
                    lambda r=record: self._request_process(
                        client, "open-loop", r.key, r.size, report
                    ),
                ))
        _run_arrivals(self.deployment.simulator, arrivals, "open_loop.complete")
        return self._finish(report, trace_marker)

    def run_schedule(
        self,
        arrivals: Sequence[tuple[float, str, Callable[[], object]]],
        report: ConcurrentReplayReport,
        finalize: bool = True,
    ) -> ConcurrentReplayReport:
        """Open-loop injection of custom coroutines (multi-tenant replays).

        Each arrival is ``(timestamp, label, factory)`` where ``factory()``
        builds the coroutine to spawn at that virtual time.  The caller owns
        the report (and may have its coroutines append
        :class:`RequestSample` records to it); the driver owns the arrival
        scheduling, the completion latch, and the flow-trace window.  With
        ``finalize=False`` the deployment is left running — the cluster
        experiments stop the cluster themselves and read costs from it.
        """
        trace_marker = self._start()
        _run_arrivals(self.deployment.simulator, arrivals, "open_loop.schedule")
        if finalize:
            return self._finish(report, trace_marker)
        self._collect(report, trace_marker)
        return report


# ---------------------------------------------------------------------- baseline replays
class ElastiCacheTarget:
    """Adapter driving an :class:`ElastiCacheCluster` under the open loop."""

    system = "elasticache"

    def __init__(self, cluster: ElastiCacheCluster):
        self.cluster = cluster

    def get(self, key: str, now: float) -> Optional[float]:
        """Latency of a GET served at ``now``, or ``None`` on a miss."""
        return self.cluster.get(key, now)

    def put(self, key: str, size: int, now: float) -> float:
        """Latency of a PUT served at ``now``."""
        return self.cluster.put(key, size, now)

    def finalize(self, trace: Trace, report: ConcurrentReplayReport) -> None:
        """Capacity-billed cost for the replay window."""
        report.total_cost = self.cluster.cost_for_duration(trace.records[-1].timestamp)
        report.cost_breakdown = {"capacity": report.total_cost, "total": report.total_cost}


class ObjectStoreTarget:
    """Adapter replaying directly against the backing store (the S3 baseline)."""

    system = "s3"

    def __init__(self, store: ObjectStore):
        self.store = store

    def get(self, key: str, now: float) -> Optional[float]:
        """Latency of fetching the object from the store (never a miss once
        the trace has been pre-populated)."""
        fetched = self.store.get(key)
        if fetched is None:
            return None
        _size, latency = fetched
        return latency

    def put(self, key: str, size: int, now: float) -> float:
        """Latency of uploading the object to the store."""
        return self.store.put(key, size)

    def finalize(self, trace: Trace, report: ConcurrentReplayReport) -> None:
        """Per-request cost accumulated over the replay."""
        report.total_cost = self.store.request_cost()
        report.cost_breakdown = {"requests": report.total_cost, "total": report.total_cost}


class OpenLoopBaselineDriver:
    """Open-loop trace replay against a latency-model baseline system.

    The comparison systems of Figures 13, 15, 16 and Table 1 (ElastiCache,
    raw S3) have no chunk fan-out to simulate, but their replays still run
    through the same arrival-timestamped injection as the cache — each
    record spawns a coroutine on a private event loop at its trace
    timestamp — so every system in a comparison replays the identical
    offered load and produces the same :class:`ConcurrentReplayReport`
    shape (and fingerprint) as the event-driven cache replay.
    """

    def __init__(
        self,
        target,
        backing_store: Optional[ObjectStore] = None,
        insert_on_miss: bool = True,
    ):
        self.target = target
        self.backing_store = backing_store or ObjectStore()
        self.insert_on_miss = insert_on_miss

    def _request_process(self, loop: EventLoop, key: str, size: int,
                         report: ConcurrentReplayReport):
        started = loop.now
        report.requests += 1
        latency = self.target.get(key, started)
        if latency is not None:
            report.hits += 1
            report.total_bytes += size
            if latency > 0:
                yield latency
        else:
            # Baseline misses are compulsory or capacity misses; the
            # provider never reclaims its memory, so they are not RESETs.
            report.misses += 1
            fetched = self.backing_store.get(key)
            if fetched is None:
                raise WorkloadError(f"object {key!r} is missing from the backing store")
            _size, store_latency = fetched
            yield store_latency
            if self.insert_on_miss:
                insert_latency = self.target.put(key, size, loop.now)
                if insert_latency > 0:
                    yield insert_latency
            report.total_bytes += size
        report.samples.append(RequestSample(
            client_id=self.target.system, key=key, size=size,
            started_at=started, finished_at=loop.now,
            hit=latency is not None,
        ))

    def _put_process(self, loop: EventLoop, key: str, size: int):
        latency = self.target.put(key, size, loop.now)
        if latency > 0:
            yield latency

    def run(self, trace: Trace) -> ConcurrentReplayReport:
        """Inject every trace record at its timestamp; returns when all finish."""
        if not trace.records:
            raise WorkloadError("cannot replay an empty trace")
        for key, size in trace.unique_objects().items():
            self.backing_store.put(key, size)
        loop = EventLoop()
        report = ConcurrentReplayReport(
            system=self.target.system, mode="open-loop", clients=1,
            trace_name=trace.name,
        )
        arrivals = []
        for record in trace.records:
            if record.operation == "PUT":
                arrivals.append((
                    record.timestamp,
                    f"baseline.put.{record.key}",
                    lambda r=record: self._put_process(loop, r.key, r.size),
                ))
            else:
                arrivals.append((
                    record.timestamp,
                    f"baseline.get.{record.key}",
                    lambda r=record: self._request_process(loop, r.key, r.size, report),
                ))
        _run_arrivals(loop, arrivals, "baseline.complete")
        report.fold_sample_bounds()
        self.target.finalize(trace, report)
        return report

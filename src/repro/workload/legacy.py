"""QUARANTINED: the original synchronous (sequential-facade) trace replayer.

Every experiment has been ported onto the event-driven drivers in
:mod:`repro.workload.replay` — this module must not be imported by anything
under :mod:`repro.experiments`.  It survives for exactly one purpose: the
driver test suite replays small traces through both paths and asserts the
drivers' request accounting degenerates to the sequential result when
concurrency is one (``tests/test_workload_drivers.py``).

The facade replays strictly one request at a time by advancing the
simulator to each record's timestamp; requests never overlap, chunk
transfers collapse to static-snapshot latency estimates, and no flow
intervals are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.elasticache import ElastiCacheCluster
from repro.baselines.s3 import ObjectStore
from repro.cache.deployment import InfiniCacheDeployment
from repro.exceptions import WorkloadError
from repro.simulation.metrics import TimeSeries
from repro.utils.stats import summarize
from repro.workload.replay import bucket_latencies, hourly_costs
from repro.workload.trace import Trace


@dataclass
class ReplayReport:
    """Everything measured during one sequential-facade trace replay."""

    system: str
    trace_name: str
    requests: int = 0
    hits: int = 0
    misses: int = 0
    #: Misses caused by reclamation-induced data loss (the paper's RESETs);
    #: compulsory/capacity misses are counted in ``misses`` but not here.
    resets: int = 0
    recoveries: int = 0
    #: (object size, latency seconds) for every GET, hit or miss.
    latencies: list[tuple[int, float]] = field(default_factory=list)
    reset_events: TimeSeries = field(default_factory=lambda: TimeSeries("resets"))
    recovery_events: TimeSeries = field(default_factory=lambda: TimeSeries("recoveries"))
    total_cost: float = 0.0
    cost_breakdown: dict[str, float] = field(default_factory=dict)
    hourly_cost: dict[str, list[float]] = field(default_factory=dict)

    @property
    def hit_ratio(self) -> float:
        """Fraction of GETs served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def latency_values(self) -> list[float]:
        """All latency samples in seconds."""
        return [latency for _size, latency in self.latencies]

    def latency_summary(self) -> dict[str, float]:
        """Percentile summary of the latency samples."""
        return summarize(self.latency_values())

    def latencies_by_size_bucket(self) -> dict[str, list[float]]:
        """Latencies grouped into the paper's Figure 16 size buckets."""
        return bucket_latencies(self.latencies)


class TraceReplayer:
    """Replays a trace against InfiniCache, ElastiCache, or the bare object store."""

    def __init__(self, backing_store: Optional[ObjectStore] = None):
        self.backing_store = backing_store or ObjectStore()

    def _populate_backing_store(self, trace: Trace) -> None:
        for key, size in trace.unique_objects().items():
            self.backing_store.put(key, size)

    # ------------------------------------------------------------------ InfiniCache
    def replay_infinicache(
        self,
        trace: Trace,
        deployment: InfiniCacheDeployment,
        insert_on_miss: bool = True,
    ) -> ReplayReport:
        """Replay the trace against a started InfiniCache deployment."""
        if not trace.records:
            raise WorkloadError("cannot replay an empty trace")
        self._populate_backing_store(trace)
        deployment.start()
        client = deployment.new_client("replayer")
        report = ReplayReport(system="infinicache", trace_name=trace.name)

        for record in trace.records:
            deployment.run_until(record.timestamp)
            if record.operation == "PUT":
                client.invalidate(record.key)
                client.put_sized(record.key, record.size)
                continue
            report.requests += 1
            result = client.get(record.key)
            if result.hit:
                report.hits += 1
                latency = result.latency_s
                if result.recovery_performed:
                    report.recoveries += 1
                    report.recovery_events.record(record.timestamp, 1.0)
            else:
                report.misses += 1
                if result.data_lost:
                    report.resets += 1
                    report.reset_events.record(record.timestamp, 1.0)
                fetched = self.backing_store.get(record.key)
                if fetched is None:
                    raise WorkloadError(
                        f"object {record.key!r} is missing from the backing store"
                    )
                _size, store_latency = fetched
                latency = store_latency
                if insert_on_miss:
                    put_result = client.put_sized(record.key, record.size)
                    latency += put_result.latency_s
            report.latencies.append((record.size, latency))

        deployment.run_until(trace.records[-1].timestamp)
        deployment.stop()
        report.total_cost = deployment.total_cost()
        report.cost_breakdown = deployment.cost_breakdown()
        report.hourly_cost = hourly_costs(
            deployment.metrics, trace.records[-1].timestamp
        )
        return report

    # ------------------------------------------------------------------ ElastiCache
    def replay_elasticache(
        self, trace: Trace, cluster: ElastiCacheCluster, insert_on_miss: bool = True
    ) -> ReplayReport:
        """Replay the trace against an ElastiCache cluster."""
        if not trace.records:
            raise WorkloadError("cannot replay an empty trace")
        self._populate_backing_store(trace)
        report = ReplayReport(system="elasticache", trace_name=trace.name)
        for record in trace.records:
            now = record.timestamp
            if record.operation == "PUT":
                cluster.put(record.key, record.size, now)
                continue
            report.requests += 1
            latency = cluster.get(record.key, now)
            if latency is None:
                # ElastiCache misses are compulsory or capacity misses; the
                # provider never reclaims its memory, so they are not RESETs.
                report.misses += 1
                fetched = self.backing_store.get(record.key)
                if fetched is None:
                    raise WorkloadError(
                        f"object {record.key!r} is missing from the backing store"
                    )
                _size, store_latency = fetched
                total_latency = store_latency
                if insert_on_miss:
                    total_latency += cluster.put(record.key, record.size, now)
                report.latencies.append((record.size, total_latency))
            else:
                report.hits += 1
                report.latencies.append((record.size, latency))
        duration = trace.records[-1].timestamp
        report.total_cost = cluster.cost_for_duration(duration)
        report.cost_breakdown = {"capacity": report.total_cost, "total": report.total_cost}
        return report

    # ------------------------------------------------------------------ bare object store
    def replay_object_store(self, trace: Trace) -> ReplayReport:
        """Replay the trace directly against the backing store (the S3 baseline)."""
        if not trace.records:
            raise WorkloadError("cannot replay an empty trace")
        self._populate_backing_store(trace)
        report = ReplayReport(system="s3", trace_name=trace.name)
        for record in trace.records:
            if record.operation == "PUT":
                self.backing_store.put(record.key, record.size)
                continue
            report.requests += 1
            fetched = self.backing_store.get(record.key)
            if fetched is None:
                raise WorkloadError(f"object {record.key!r} is missing from the backing store")
            _size, latency = fetched
            report.hits += 1
            report.latencies.append((record.size, latency))
        report.total_cost = self.backing_store.request_cost()
        report.cost_breakdown = {"requests": report.total_cost, "total": report.total_cost}
        return report

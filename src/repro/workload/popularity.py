"""Popularity processes: which object each request touches.

A popularity spec is a frozen, picklable description; :meth:`sampler` binds
it to a catalogue size and a seeded RNG and returns the stateful sampler
the scenario executor draws from, one request at a time **in arrival
order** (samplers may carry time-evolving state — a churned rank mapping, a
scan cursor — that only moves forward).

* :class:`StaticZipf` — the classic fixed Zipf ranking
  (:class:`~repro.workload.distributions.ZipfPopularity`).
* :class:`ZipfChurn` — Zipf whose rank→object mapping partially reshuffles
  every ``churn_interval_s`` (popularity churn: yesterday's hot objects go
  cold, cold ones become hot).
* :class:`FlashCrowd` — Zipf plus a window during which a configurable
  fraction of requests hammers a tiny set of previously-unseen objects
  (the flash-crowd / thundering-herd shape).
* :class:`ScanMix` — Zipf interleaved with a sequential one-touch scan over
  the catalogue (the scan-resistance adversary: a cache that evicts its
  hot set for scan traffic collapses).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeededRNG
from repro.workload.distributions import ZipfPopularity


def _check_exponent(exponent: float) -> None:
    if not math.isfinite(exponent) or exponent <= 0:
        raise ConfigurationError(
            f"Zipf exponent must be positive and finite, got {exponent}"
        )


class _ZipfSampler:
    """Stateless base sampler: rank straight from the Zipf draw."""

    def __init__(self, spec, catalogue_size: int, rng: SeededRNG):
        self.spec = spec
        self.catalogue_size = catalogue_size
        self.rng = rng
        self.popularity = ZipfPopularity(catalogue_size, spec.exponent)

    def draw(self, now: float) -> int:
        return self.popularity.sample_rank(self.rng)


@dataclass(frozen=True)
class StaticZipf:
    """A fixed Zipf ranking over the catalogue."""

    exponent: float = 0.9

    #: Objects beyond the catalogue this process can touch (none).
    extra_objects: ClassVar[int] = 0
    #: Rank draws ignore virtual time.
    time_dependent: ClassVar[bool] = False

    def __post_init__(self):
        _check_exponent(self.exponent)

    def sampler(self, catalogue_size: int, rng: SeededRNG) -> _ZipfSampler:
        return _ZipfSampler(self, catalogue_size, rng)


class _ChurnSampler(_ZipfSampler):
    """Zipf through a rank→object mapping that reshuffles per epoch.

    The churn stream is a dedicated RNG child consumed once per epoch
    boundary, in epoch order — requests arrive time-sorted, so the mapping
    evolution is independent of how many requests land in each epoch.
    """

    def __init__(self, spec, catalogue_size: int, rng: SeededRNG):
        super().__init__(spec, catalogue_size, rng)
        self.churn_rng = rng.child("churn")
        self.mapping = list(range(catalogue_size))
        self.epoch = 0
        self.rotate = max(1, round(spec.rotate_fraction * catalogue_size))

    def _advance_to(self, epoch: int) -> None:
        while self.epoch < epoch:
            self.epoch += 1
            if self.catalogue_size < 2:
                continue
            slots = self.churn_rng.sample_without_replacement(
                self.catalogue_size, min(self.rotate, self.catalogue_size)
            )
            values = [self.mapping[slot] for slot in slots]
            self.churn_rng.shuffle(values)
            for slot, value in zip(slots, values):
                self.mapping[slot] = value

    def draw(self, now: float) -> int:
        self._advance_to(int(now // self.spec.churn_interval_s))
        return self.mapping[self.popularity.sample_rank(self.rng)]


@dataclass(frozen=True)
class ZipfChurn:
    """Zipf with periodic partial reshuffles of the rank→object mapping."""

    exponent: float = 0.9
    churn_interval_s: float = 30.0
    #: Fraction of the catalogue whose ranks are permuted each epoch.
    rotate_fraction: float = 0.25

    extra_objects: ClassVar[int] = 0
    #: Churn epochs advance with virtual time, so this process needs
    #: timestamped (open-loop) arrivals.
    time_dependent: ClassVar[bool] = True

    def __post_init__(self):
        _check_exponent(self.exponent)
        if not math.isfinite(self.churn_interval_s) or self.churn_interval_s <= 0:
            raise ConfigurationError("churn interval must be positive and finite")
        if not 0.0 < self.rotate_fraction <= 1.0:
            raise ConfigurationError("rotate fraction must be in (0, 1]")

    def sampler(self, catalogue_size: int, rng: SeededRNG) -> _ChurnSampler:
        return _ChurnSampler(self, catalogue_size, rng)


class _FlashSampler(_ZipfSampler):
    def draw(self, now: float) -> int:
        spec = self.spec
        in_window = spec.at_s <= now < spec.at_s + spec.duration_s
        if in_window and self.rng.random() < spec.flash_fraction:
            # Flash objects live past the catalogue end (previously unseen).
            return self.catalogue_size + self.rng.integers(0, spec.flash_objects)
        return self.popularity.sample_rank(self.rng)


@dataclass(frozen=True)
class FlashCrowd:
    """Zipf plus a flash window hammering a tiny set of new objects."""

    exponent: float = 0.9
    at_s: float = 20.0
    duration_s: float = 20.0
    #: Fraction of in-window requests redirected to the flash set.
    flash_fraction: float = 0.7
    #: How many distinct objects the flash set contains.
    flash_objects: int = 3

    time_dependent: ClassVar[bool] = True

    def __post_init__(self):
        _check_exponent(self.exponent)
        if self.at_s < 0:
            raise ConfigurationError("flash window start must be non-negative")
        if not math.isfinite(self.duration_s) or self.duration_s <= 0:
            raise ConfigurationError("flash window duration must be positive")
        if not 0.0 < self.flash_fraction <= 1.0:
            raise ConfigurationError("flash fraction must be in (0, 1]")
        if self.flash_objects < 1:
            raise ConfigurationError("the flash set needs at least one object")

    @property
    def extra_objects(self) -> int:
        return self.flash_objects

    def sampler(self, catalogue_size: int, rng: SeededRNG) -> _FlashSampler:
        return _FlashSampler(self, catalogue_size, rng)


class _ScanSampler(_ZipfSampler):
    def __init__(self, spec, catalogue_size: int, rng: SeededRNG):
        super().__init__(spec, catalogue_size, rng)
        self.cursor = 0

    def draw(self, now: float) -> int:
        if self.rng.random() < self.spec.scan_fraction:
            rank = self.cursor
            self.cursor = (self.cursor + 1) % self.catalogue_size
            return rank
        return self.popularity.sample_rank(self.rng)


@dataclass(frozen=True)
class ScanMix:
    """Zipf interleaved with a sequential one-touch catalogue scan."""

    exponent: float = 0.9
    #: Fraction of requests issued by the scanning adversary.
    scan_fraction: float = 0.3

    extra_objects: ClassVar[int] = 0
    time_dependent: ClassVar[bool] = False

    def __post_init__(self):
        _check_exponent(self.exponent)
        if not 0.0 < self.scan_fraction < 1.0:
            raise ConfigurationError("scan fraction must be in (0, 1)")

    def sampler(self, catalogue_size: int, rng: SeededRNG) -> _ScanSampler:
        return _ScanSampler(self, catalogue_size, rng)


#: Every popularity process a scenario may declare.
PopularitySpec = StaticZipf | ZipfChurn | FlashCrowd | ScanMix

"""Arrival processes for the declarative scenario engine.

An arrival process turns one seeded RNG stream into the *offered load* of a
scenario: either a closed loop (N clients, each back-to-back) or an open
loop (a sorted list of arrival timestamps the drivers inject at).  Four
processes cover the scenario library:

* :class:`ClosedLoopArrivals` — N concurrent clients issuing back-to-back
  requests (the Figure 12 shape); no timestamps, load is self-clocking.
* :class:`PoissonArrivals` — homogeneous open-loop Poisson at a fixed rate.
* :class:`MMPPArrivals` — a two-state Markov-modulated Poisson process:
  the rate switches between a quiet and a bursty state with exponentially
  distributed dwell times (the classic bursty-traffic model).
* :class:`DiurnalArrivals` — a non-homogeneous Poisson process whose rate
  follows :func:`repro.workload.distributions.diurnal_rate_multiplier`
  (day/night modulation), sampled by thinning.

Every process is a frozen, validated, picklable dataclass — scenario cells
cross process boundaries under the parallel runner — and draws exclusively
from the RNG handed to :meth:`times`, so one scenario seed fully determines
the schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeededRNG
from repro.workload.distributions import diurnal_rate_multiplier


def _check_positive(name: str, value: float) -> None:
    if not math.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be positive and finite, got {value}")


@dataclass(frozen=True)
class ClosedLoopArrivals:
    """N concurrent closed-loop clients, ``requests_per_client`` ops each.

    Closed-loop load has no arrival timestamps — each client issues its next
    request the moment the previous one completes — so :meth:`times` is
    deliberately unsupported; the scenario executor builds per-client plans
    instead.
    """

    clients: int = 4
    requests_per_client: int = 8

    def __post_init__(self):
        if self.clients < 1:
            raise ConfigurationError("a closed loop needs at least one client")
        if self.requests_per_client < 1:
            raise ConfigurationError("each client needs at least one request")

    @property
    def total_requests(self) -> int:
        return self.clients * self.requests_per_client

    def times(self, rng: SeededRNG) -> list[float]:
        raise ConfigurationError(
            "closed-loop arrivals have no timestamps; the executor drives "
            "clients back-to-back instead"
        )


@dataclass(frozen=True)
class PoissonArrivals:
    """Open-loop Poisson arrivals at ``rate_rps`` for ``duration_s``."""

    rate_rps: float = 2.0
    duration_s: float = 60.0

    def __post_init__(self):
        _check_positive("arrival rate", self.rate_rps)
        _check_positive("arrival duration", self.duration_s)

    def times(self, rng: SeededRNG) -> list[float]:
        """Exponential inter-arrival gaps until the horizon."""
        out: list[float] = []
        now = rng.exponential(1.0 / self.rate_rps)
        while now < self.duration_s:
            out.append(now)
            now += rng.exponential(1.0 / self.rate_rps)
        return out


@dataclass(frozen=True)
class MMPPArrivals:
    """Two-state Markov-modulated Poisson process (quiet / burst).

    The process alternates between a quiet state at ``quiet_rate_rps`` and a
    burst state at ``burst_rate_rps``; dwell times in each state are
    exponential with the given means.  Starts in the quiet state.
    """

    quiet_rate_rps: float = 1.0
    burst_rate_rps: float = 10.0
    quiet_dwell_s: float = 30.0
    burst_dwell_s: float = 5.0
    duration_s: float = 60.0

    def __post_init__(self):
        _check_positive("quiet rate", self.quiet_rate_rps)
        _check_positive("burst rate", self.burst_rate_rps)
        _check_positive("quiet dwell", self.quiet_dwell_s)
        _check_positive("burst dwell", self.burst_dwell_s)
        _check_positive("arrival duration", self.duration_s)

    def times(self, rng: SeededRNG) -> list[float]:
        """Arrivals drawn per state window; windows drawn first, in order."""
        out: list[float] = []
        now = 0.0
        bursting = False
        while now < self.duration_s:
            dwell = rng.exponential(self.burst_dwell_s if bursting else self.quiet_dwell_s)
            window_end = min(now + dwell, self.duration_s)
            rate = self.burst_rate_rps if bursting else self.quiet_rate_rps
            at = now + rng.exponential(1.0 / rate)
            while at < window_end:
                out.append(at)
                at += rng.exponential(1.0 / rate)
            now = window_end
            bursting = not bursting
        return out


@dataclass(frozen=True)
class DiurnalArrivals:
    """Non-homogeneous Poisson arrivals following a day/night cosine.

    The instantaneous rate is ``base_rate_rps`` scaled by
    :func:`diurnal_rate_multiplier` at the virtual hour of day (the scenario
    clock starts at ``start_hour``); sampling is by thinning against the
    peak rate, so the schedule is exact for the modulated intensity.
    """

    base_rate_rps: float = 2.0
    duration_s: float = 120.0
    start_hour: float = 8.0
    peak_hour: float = 14.0
    amplitude: float = 0.6
    #: Virtual seconds per simulated "hour" — scenarios compress the diurnal
    #: cycle so a short replay still sweeps through day and night.
    seconds_per_hour: float = 60.0

    def __post_init__(self):
        _check_positive("base rate", self.base_rate_rps)
        _check_positive("arrival duration", self.duration_s)
        _check_positive("seconds per hour", self.seconds_per_hour)
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigurationError("amplitude must be in [0, 1)")

    def rate_at(self, now_s: float) -> float:
        """The modulated instantaneous rate at virtual time ``now_s``."""
        hour = self.start_hour + now_s / self.seconds_per_hour
        return self.base_rate_rps * diurnal_rate_multiplier(
            hour % 24.0, peak_hour=self.peak_hour, amplitude=self.amplitude
        )

    def times(self, rng: SeededRNG) -> list[float]:
        """Thinning: draw at the peak rate, keep with probability rate/peak."""
        peak = self.base_rate_rps * (1.0 + self.amplitude)
        out: list[float] = []
        now = rng.exponential(1.0 / peak)
        while now < self.duration_s:
            if rng.random() < self.rate_at(now) / peak:
                out.append(now)
            now += rng.exponential(1.0 / peak)
        return out


#: Every open-loop arrival process (``times()``-capable).
OpenLoopArrivalSpec = PoissonArrivals | MMPPArrivals | DiurnalArrivals

#: Every arrival process a scenario may declare.
ArrivalSpec = ClosedLoopArrivals | OpenLoopArrivalSpec

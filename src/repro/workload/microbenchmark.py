"""Microbenchmark workload generator (paper Section 5.1).

The microbenchmarks are GET-only runs over fixed-size objects: the object is
PUT once, then fetched repeatedly while the experiment sweeps the erasure
code, the object size (10-100 MB) and the Lambda memory configuration
(128-3008 MB).  This module produces those request sequences so the
Figure 11 and Figure 12 reproductions and the pytest benchmarks share one
definition of the workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeededRNG
from repro.utils.units import MB
from repro.workload.trace import Trace, TraceRecord

#: Object sizes swept by Figure 11 (bytes).
FIGURE11_OBJECT_SIZES = (10 * MB, 20 * MB, 40 * MB, 60 * MB, 80 * MB, 100 * MB)

#: Erasure codes swept by Figure 11, as (data, parity) pairs.
FIGURE11_RS_CODES = ((10, 0), (10, 1), (10, 2), (10, 4), (4, 2), (5, 1))


@dataclass(frozen=True)
class MicrobenchmarkWorkload:
    """A GET-only workload over a small set of fixed-size objects."""

    object_size_bytes: int = 100 * MB
    object_count: int = 5
    requests: int = 50
    inter_arrival_s: float = 1.0
    seed: int = 7

    def __post_init__(self):
        if self.object_size_bytes <= 0:
            raise ConfigurationError("object size must be positive")
        if self.object_count < 1:
            raise ConfigurationError("object count must be >= 1")
        if self.requests < 1:
            raise ConfigurationError("request count must be >= 1")
        if self.inter_arrival_s < 0:
            raise ConfigurationError("inter-arrival time must be non-negative")

    def object_keys(self) -> list[str]:
        """Keys of the benchmark objects."""
        return [
            f"bench/{self.object_size_bytes}/obj-{index:03d}"
            for index in range(self.object_count)
        ]

    def populate_records(self) -> list[TraceRecord]:
        """The PUT records that load the objects before the GET phase."""
        return [
            TraceRecord(timestamp=0.0, operation="PUT", key=key, size=self.object_size_bytes)
            for key in self.object_keys()
        ]

    def get_records(self, start_time: float = 1.0) -> list[TraceRecord]:
        """The GET request sequence (uniform over the benchmark objects)."""
        rng = SeededRNG(self.seed)
        keys = self.object_keys()
        records = []
        timestamp = start_time
        for _ in range(self.requests):
            key = keys[rng.integers(0, len(keys))]
            records.append(
                TraceRecord(timestamp=timestamp, operation="GET", key=key,
                            size=self.object_size_bytes)
            )
            timestamp += self.inter_arrival_s
        return records

    def as_trace(self) -> Trace:
        """The full workload (PUT phase then GET phase) as a trace."""
        records = self.populate_records() + self.get_records()
        return Trace.from_records(records, name=f"microbench-{self.object_size_bytes}")

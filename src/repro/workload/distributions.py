"""Statistical building blocks for workload synthesis.

Two distributions drive the Docker-registry trace generator:

* :class:`ObjectSizeDistribution` — a mixture that reproduces Figure 1(a):
  object sizes span from hundreds of bytes to gigabytes (nine orders of
  magnitude), with a configurable fraction of "large" objects (>10 MB) that
  dominates the byte footprint (Figure 1(b)).
* :class:`ZipfPopularity` — long-tailed object popularity, reproducing the
  access-count CDF of Figure 1(c) where ~30 % of large objects are accessed
  at least 10 times and the hottest absorb >10^4 accesses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeededRNG
from repro.utils.units import GB, KB, MB


@dataclass(frozen=True)
class ObjectSizeDistribution:
    """Mixture model for object sizes.

    With probability ``large_fraction`` an object is "large": its size is
    drawn log-uniformly from ``[large_min, large_max]``.  Otherwise it is
    "small": drawn log-uniformly from ``[small_min, small_max]``.  The
    defaults put ~22 % of objects above 10 MB while those objects carry the
    overwhelming majority of the bytes, matching the published CDFs.
    """

    small_min_bytes: int = 200
    small_max_bytes: int = 10 * MB
    large_min_bytes: int = 10 * MB
    large_max_bytes: int = 4 * GB
    large_fraction: float = 0.22

    def __post_init__(self):
        if not 0 < self.small_min_bytes <= self.small_max_bytes:
            raise ConfigurationError("invalid small-object size range")
        if not 0 < self.large_min_bytes <= self.large_max_bytes:
            raise ConfigurationError("invalid large-object size range")
        if not 0.0 <= self.large_fraction <= 1.0:
            raise ConfigurationError("large_fraction must be in [0, 1]")

    def sample(self, rng: SeededRNG) -> int:
        """Draw one object size in bytes."""
        if rng.random() < self.large_fraction:
            low, high = self.large_min_bytes, self.large_max_bytes
        else:
            low, high = self.small_min_bytes, self.small_max_bytes
        # int() truncates, and exp(uniform(log low, log high)) can land a few
        # ulps outside [low, high] — clamp so a draw never escapes its band
        # (a degenerate band like [10**6, 10**6] used to yield 10**6 - 1).
        return min(max(int(rng.log_uniform(low, high)), low), high)

    def sample_many(self, rng: SeededRNG, count: int) -> list[int]:
        """Draw ``count`` independent object sizes."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        return [self.sample(rng) for _ in range(count)]


@dataclass(frozen=True)
class ZipfPopularity:
    """Zipf-distributed object popularity over a fixed catalogue.

    ``exponent`` around 0.9-1.1 produces the long-tailed access-count curves
    of production object stores: a small set of very hot objects and a long
    tail of objects accessed a handful of times.
    """

    catalogue_size: int
    exponent: float = 1.0

    def __post_init__(self):
        if self.catalogue_size < 1:
            raise ConfigurationError("catalogue size must be >= 1")
        # ``<= 0`` alone would wave NaN through (every NaN comparison is
        # False) and a NaN exponent poisons the whole inverse CDF, making
        # searchsorted return catalogue_size — an out-of-range rank.
        if not math.isfinite(self.exponent) or self.exponent <= 0:
            raise ConfigurationError("Zipf exponent must be positive and finite")

    def sample_rank(self, rng: SeededRNG) -> int:
        """Draw the rank (0 = most popular) of the object for one request."""
        return rng.bounded_zipf(self.catalogue_size, self.exponent)

    def sample_ranks(self, rng: SeededRNG, count: int) -> list[int]:
        """Draw ``count`` request ranks."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        return [self.sample_rank(rng) for _ in range(count)]


def diurnal_rate_multiplier(hour_of_day: float, peak_hour: float = 14.0,
                            amplitude: float = 0.6) -> float:
    """A smooth day/night load modulation used by the trace generator.

    Returns a multiplier in ``[1 - amplitude, 1 + amplitude]`` following a
    cosine with its maximum at ``peak_hour``.  The Dallas trace in the paper
    shows clear request spikes at particular hours; the generator combines
    this baseline with explicit burst windows.
    """
    if not 0.0 <= amplitude < 1.0:
        raise ConfigurationError("amplitude must be in [0, 1)")
    if not math.isfinite(hour_of_day) or not math.isfinite(peak_hour):
        raise ConfigurationError("hour_of_day and peak_hour must be finite")
    phase = (hour_of_day - peak_hour) / 24.0 * 2.0 * math.pi
    return 1.0 + amplitude * math.cos(phase)

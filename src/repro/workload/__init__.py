"""Workload generation and replay.

The paper evaluates InfiniCache with two kinds of workloads:

* **Microbenchmarks** (Section 5.1): synthetic GET-only runs over fixed-size
  objects (10-100 MB), sweeping the erasure code and the Lambda memory.
* **Production traces** (Section 5.2): 50 hours of the IBM Docker-registry
  trace (Dallas datacentre), replayed in real time against InfiniCache,
  ElastiCache, and S3.

The original traces are proprietary, so :mod:`repro.workload.docker_registry`
synthesises traces that match the published marginals of Figure 1: object
sizes spanning nine orders of magnitude with >20 % of objects above 10 MB,
large objects accounting for >95 % of bytes, a long-tailed access-count
distribution, and 37-46 % of large-object reuses within an hour.
"""

from repro.workload.trace import TraceRecord, Trace
from repro.workload.arrivals import (
    ClosedLoopArrivals,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.workload.distributions import ObjectSizeDistribution, ZipfPopularity
from repro.workload.popularity import FlashCrowd, ScanMix, StaticZipf, ZipfChurn
from repro.workload.docker_registry import DockerRegistryTraceGenerator, RegistryTraceConfig
from repro.workload.microbenchmark import MicrobenchmarkWorkload
from repro.workload.replay import (
    ClientOp,
    ClosedLoopDriver,
    ConcurrentReplayReport,
    ElastiCacheTarget,
    ObjectStoreTarget,
    OpenLoopBaselineDriver,
    OpenLoopDriver,
    RequestSample,
)

# The synchronous sequential facade (``TraceReplayer``) is quarantined in
# ``repro.workload.legacy`` and deliberately NOT re-exported here: every
# experiment replays through the event-driven drivers above.

__all__ = [
    "TraceRecord",
    "Trace",
    "ClosedLoopArrivals",
    "PoissonArrivals",
    "MMPPArrivals",
    "DiurnalArrivals",
    "ObjectSizeDistribution",
    "ZipfPopularity",
    "StaticZipf",
    "ZipfChurn",
    "FlashCrowd",
    "ScanMix",
    "DockerRegistryTraceGenerator",
    "RegistryTraceConfig",
    "MicrobenchmarkWorkload",
    "ClientOp",
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "OpenLoopBaselineDriver",
    "ElastiCacheTarget",
    "ObjectStoreTarget",
    "ConcurrentReplayReport",
    "RequestSample",
]

"""InfiniCache reproduction: a serverless in-memory object cache.

This library reproduces *InfiniCache: Exploiting Ephemeral Serverless
Functions to Build a Cost-Effective Memory Cache* (Wang et al., FAST 2020)
as a pure-Python system running on a simulated AWS substrate.

The most common entry points:

* :class:`repro.cache.InfiniCacheConfig` and
  :class:`repro.cache.InfiniCacheDeployment` — configure and build a cache.
* :meth:`repro.cache.InfiniCacheDeployment.new_client` — obtain the
  application-facing GET/PUT client library.
* :class:`repro.workload.DockerRegistryTraceGenerator` plus the
  event-driven :class:`repro.workload.ClosedLoopDriver` /
  :class:`repro.workload.OpenLoopDriver` — synthesise and replay the
  production-style workload with genuinely overlapping requests.
* :class:`repro.cluster.InfiniCacheCluster` — the orchestrated multi-tenant
  cluster: pool autoscaling, tenant quotas, rebalancing, failure detection.
* :mod:`repro.analysis` — the availability and cost models of Section 4.3.
* :mod:`repro.experiments` — one module per figure/table of the paper.
"""

from repro.cache import (
    GetResult,
    InfiniCacheClient,
    InfiniCacheConfig,
    InfiniCacheDeployment,
    PutResult,
)
from repro.analysis import AvailabilityModel, CostModel, CostModelParams
from repro.cluster import (
    AutoscalerConfig,
    InfiniCacheCluster,
    TenantClient,
    TenantQuota,
)
from repro.erasure import ErasureCodec, ReedSolomon
from repro.workload import (
    ClosedLoopDriver,
    DockerRegistryTraceGenerator,
    MicrobenchmarkWorkload,
    OpenLoopDriver,
    Trace,
    TraceRecord,
)

__version__ = "1.0.0"

__all__ = [
    "InfiniCacheConfig",
    "InfiniCacheDeployment",
    "InfiniCacheClient",
    "GetResult",
    "PutResult",
    "AutoscalerConfig",
    "InfiniCacheCluster",
    "TenantClient",
    "TenantQuota",
    "AvailabilityModel",
    "CostModel",
    "CostModelParams",
    "ErasureCodec",
    "ReedSolomon",
    "DockerRegistryTraceGenerator",
    "MicrobenchmarkWorkload",
    "Trace",
    "TraceRecord",
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "__version__",
]

"""The violation record every rule emits."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit at one source location.

    Violations order by ``(path, line, col, code)`` so reports and baseline
    files are stable across runs regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str = field(compare=False)
    #: The stripped source line, used by the baseline to survive line drift.
    snippet: str = field(default="", compare=False)

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of the text format."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form (the ``--format=json`` / report payload)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "snippet": self.snippet,
        }

"""Per-file analysis context shared by every rule.

A :class:`FileContext` parses the file once and precomputes what most rules
need: the AST, the source lines, the inline ``# repro: allow[...]``
suppressions, a best-effort import-alias map for resolving dotted names
(``np.random.shuffle`` → ``numpy.random.shuffle``), and the path
classification the exemption lists key on (scheduling path, profiling
allowlist, config module).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.lint.violations import Violation

#: ``# repro: allow[D101]`` / ``# repro: allow[D101, S203]``
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)\]")

#: Modules under these directories drive the event schedule; the
#: unordered-iteration rule (D103) only applies here.
_SCHEDULING_DIRS = ("sim", "network", "cache", "cluster", "faas")
_SCHEDULING_RE = re.compile(
    r"(^|/)repro/(%s)/" % "|".join(_SCHEDULING_DIRS)
)

#: Wall-clock reads are legitimate in the perf harness and the
#: observability layer — both measure *real* time by design (D102).
_WALLCLOCK_EXEMPT_RE = re.compile(r"(^|/)(repro/obs/|experiments/perf\.py$)")

#: Environment reads are config loading's job (D105).
_CONFIG_RE = re.compile(r"(^|/)(config|settings)\.py$")


class FileContext:
    """Everything a rule needs to analyse one file."""

    def __init__(self, source: str, path: str = "<string>"):
        self.source = source
        self.path = path
        #: Forward-slashed path used for exemption matching, so the same
        #: rules fire identically on every platform and invocation dir.
        self.posix_path = path.replace("\\", "/")
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        #: line number -> set of rule codes allowed on that line.
        self.suppressions = self._parse_suppressions()
        #: import alias -> fully dotted module ("np" -> "numpy"), plus
        #: from-imports ("perf_counter" -> "time.perf_counter").
        self.aliases, self.from_imports = self._parse_imports()

    # ------------------------------------------------------------------ classification
    @property
    def in_scheduling_path(self) -> bool:
        """Whether this module feeds the event schedule (D103 scope)."""
        return _SCHEDULING_RE.search(self.posix_path) is not None

    @property
    def wallclock_exempt(self) -> bool:
        """Whether wall-clock reads are expected here (D102 allowlist)."""
        return _WALLCLOCK_EXEMPT_RE.search(self.posix_path) is not None

    @property
    def is_config_module(self) -> bool:
        """Whether environment reads are this module's job (D105 allowlist)."""
        return _CONFIG_RE.search(self.posix_path) is not None

    # ------------------------------------------------------------------ suppressions
    def _parse_suppressions(self) -> dict[int, set[str]]:
        allowed: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _ALLOW_RE.search(line)
            if match is None:
                continue
            codes = {code.strip() for code in match.group(1).split(",")}
            allowed.setdefault(lineno, set()).update(codes)
            # A standalone comment line suppresses the line below it, so a
            # justification can sit above long statements.
            if line.split("#", 1)[0].strip() == "":
                allowed.setdefault(lineno + 1, set()).update(codes)
        return allowed

    def is_suppressed(self, violation: Violation) -> bool:
        """Whether an inline ``allow`` comment covers this violation."""
        return violation.code in self.suppressions.get(violation.line, ())

    # ------------------------------------------------------------------ imports
    def _parse_imports(self) -> tuple[dict[str, str], dict[str, str]]:
        aliases: dict[str, str] = {}
        from_imports: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.asname:
                        aliases[item.asname] = item.name
                    else:
                        # `import numpy.random` binds the root name `numpy`.
                        root = item.name.split(".")[0]
                        aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for item in node.names:
                    if item.name == "*":
                        continue
                    from_imports[item.asname or item.name] = f"{node.module}.{item.name}"
        return aliases, from_imports

    def resolve_call_name(self, func: ast.expr) -> Optional[str]:
        """Fully dotted name of a call target, through import aliases.

        ``np.random.shuffle(...)`` resolves to ``"numpy.random.shuffle"``
        when ``np`` aliases ``numpy``; a bare ``perf_counter(...)`` resolves
        to ``"time.perf_counter"`` when imported ``from time``.  Returns
        ``None`` for targets that are not plain dotted names (subscripts,
        call results, locals of unknown origin).
        """
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        parts.append(self.from_imports.get(root, self.aliases.get(root, root)))
        return ".".join(reversed(parts))

    # ------------------------------------------------------------------ helpers
    def snippet(self, lineno: int) -> str:
        """The stripped source line at ``lineno`` (1-based), or ``""``."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def violation(self, code: str, message: str, node: ast.AST) -> Violation:
        """Build a :class:`Violation` anchored at ``node``'s location."""
        lineno = getattr(node, "lineno", 1)
        return Violation(
            path=self.path,
            line=lineno,
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
            snippet=self.snippet(lineno),
        )

    def functions(self) -> Iterator[ast.FunctionDef]:
        """Every (sync) function definition in the file, outermost first."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.FunctionDef):
                yield node

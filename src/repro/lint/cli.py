"""``repro lint`` — the command-line front end and CI gate.

Exit codes: 0 clean (or everything grandfathered), 1 new violations (or a
baseline check problem), 2 usage errors.  See ``docs/static-analysis.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.exceptions import ConfigurationError
from repro.lint.baseline import Baseline
from repro.lint.engine import lint_paths
from repro.lint.registry import rule_codes
from repro.lint.reporting import render, render_json, render_rule_list

DEFAULT_BASELINE = "lint_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Determinism & sim-protocol static analysis over the source tree.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="report format (default: text; github emits ::error annotations)",
    )
    parser.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=DEFAULT_BASELINE,
        help=f"baseline file for grandfathered violations (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record the current violations as the new baseline and exit 0",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="fail (exit 1) on violations not covered by the baseline; "
        "stale baseline entries are reported but only warn",
    )
    parser.add_argument(
        "--strict-baseline", action="store_true",
        help="with --check-baseline, also fail on stale baseline entries",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="additionally write the full JSON report to PATH (the CI artifact)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue (code, name, rationale) and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    select = None
    if args.select:
        select = tuple(code.strip() for code in args.select.split(",") if code.strip())
        unknown = [code for code in select if code not in rule_codes()]
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(unknown)}")

    try:
        violations = lint_paths(args.paths, select=select)
    except SyntaxError as exc:
        print(f"repro lint: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 1

    if args.write_baseline:
        Baseline.from_violations(violations).write(args.baseline)
        print(
            f"wrote {len(violations)} grandfathered violation(s) to {args.baseline}"
        )
        return 0

    grandfathered: list = []
    stale: list = []
    if args.check_baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except FileNotFoundError:
            print(
                f"repro lint: baseline {args.baseline} not found; create it "
                "with --write-baseline (an empty run writes an empty baseline)",
                file=sys.stderr,
            )
            return 1
        except ConfigurationError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 1
        violations, grandfathered, stale = baseline.partition(violations)

    if args.format == "json":
        report = render_json(violations, grandfathered=grandfathered,
                             stale_baseline=stale)
        print(report)
    else:
        print(render(args.format, violations))
        if grandfathered:
            print(f"({len(grandfathered)} grandfathered by {args.baseline})")
        for entry in stale:
            print(
                f"stale baseline entry (code fixed? remove it): "
                f"{entry.path} {entry.code} ×{entry.count} — {entry.snippet!r}"
            )

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(render_json(violations, grandfathered=grandfathered,
                                     stale_baseline=stale))
            handle.write("\n")

    if violations:
        return 1
    if args.check_baseline and args.strict_baseline and stale:
        return 1
    return 0

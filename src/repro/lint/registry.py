"""Pluggable rule registry.

Mirrors the strategy-registry idiom used by the autoscaler policies: rules
are classes registered under a stable code via :func:`register_rule`, and
the engine instantiates every registered rule for each file.  Adding a rule
is therefore one decorated class — no engine changes (see
``docs/static-analysis.md`` for the recipe).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Type

from repro.exceptions import ConfigurationError
from repro.lint.context import FileContext
from repro.lint.violations import Violation


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`; the
    registry keys on :attr:`code`.  ``D`` codes are determinism hazards,
    ``S`` codes are sim-protocol violations.
    """

    #: Stable short code, e.g. ``"D101"`` — what suppressions and the
    #: baseline reference.
    code: str = ""
    #: Kebab-case human name, e.g. ``"unseeded-global-random"``.
    name: str = ""
    #: One-line rationale shown by ``repro lint --list-rules`` and the docs.
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        """Yield every violation of this rule found in ``ctx``."""
        raise NotImplementedError


_RULES: dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if not cls.code or not cls.name:
        raise ConfigurationError(f"rule {cls.__name__} must define a code and a name")
    if cls.code in _RULES:
        raise ConfigurationError(
            f"duplicate rule code {cls.code!r}: {_RULES[cls.code].__name__} "
            f"is already registered"
        )
    _RULES[cls.code] = cls
    return cls


def rule_codes() -> tuple[str, ...]:
    """Every registered code, sorted."""
    return tuple(sorted(_RULES))


def get_rule(code: str) -> Type[Rule]:
    """The rule class registered under ``code``.

    Raises:
        ConfigurationError: for an unknown code (e.g. a typo in
            ``--select`` or in an ``allow[...]`` comment audit).
    """
    try:
        return _RULES[code]
    except KeyError:
        raise ConfigurationError(
            f"unknown rule code {code!r}; registered: {', '.join(rule_codes())}"
        ) from None


def all_rules(select: Iterable[str] | None = None) -> Iterator[Rule]:
    """Instantiate every registered rule (or just the ``select`` codes)."""
    codes = rule_codes() if select is None else tuple(select)
    for code in codes:
        yield get_rule(code)()

"""The lint engine: file discovery, rule execution, suppression filtering."""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Optional, Sequence

from repro.lint.context import FileContext
from repro.lint.registry import all_rules
from repro.lint.violations import Violation

#: Directories never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    found: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name for name in dirnames
                if name not in _SKIP_DIRS and not name.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.join(dirpath, filename))
    return iter(sorted(dict.fromkeys(found)))


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> list[Violation]:
    """Lint one source string; returns unsuppressed violations, sorted.

    Raises:
        SyntaxError: if the source does not parse — a file the linter
            cannot read is a build break, not something to skip silently.
    """
    ctx = FileContext(source, path=path)
    violations: list[Violation] = []
    for rule in all_rules(select):
        for violation in rule.check(ctx):
            if not ctx.is_suppressed(violation):
                violations.append(violation)
    return sorted(violations)


def lint_file(path: str, select: Optional[Iterable[str]] = None) -> list[Violation]:
    """Lint one file from disk (paths reported exactly as given)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=_normalise(path), select=select)


def lint_paths(
    paths: Sequence[str], select: Optional[Iterable[str]] = None
) -> list[Violation]:
    """Lint every Python file under ``paths``; the CLI's workhorse."""
    violations: list[Violation] = []
    for filename in iter_python_files(paths):
        violations.extend(lint_file(filename, select=select))
    return sorted(violations)


def _normalise(path: str) -> str:
    """Forward-slashed relative-ish path so reports and baselines are
    identical across platforms and invocation directories."""
    return os.path.relpath(path).replace(os.sep, "/")

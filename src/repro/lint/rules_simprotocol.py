"""S-rules: sim-protocol invariants for coroutine processes.

The event engine's contract (see ``docs/simulation.md``): a ``*_process``
generator runs on the virtual clock, may only yield the documented waitable
types (a numeric delay, a SimFuture, a Process), must never block the real
thread, and must pair every billed transfer with a ``finally`` so abandoned
stragglers still settle their bills.  These rules machine-check that
contract so refactors of the hot paths cannot silently break it.
"""

from __future__ import annotations

import ast
import math
from typing import Iterable, Iterator, Optional

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register_rule
from repro.lint.violations import Violation

#: Calls that block the real thread (never legal on the event loop).
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.system", "os.popen", "os.waitpid",
    "input",
})
_BLOCKING_PREFIXES = (
    "socket.", "subprocess.", "requests.", "urllib.", "http.client.",
    "shutil.", "select.",
)


def sim_coroutines(ctx: FileContext) -> Iterator[ast.FunctionDef]:
    """Generator functions bound by the sim-protocol contract.

    A function is a sim coroutine when it is a generator (contains a yield)
    and either its name ends in ``_process`` (the repo-wide convention) or
    it is passed to an ``EventLoop.spawn(...)`` call in the same file.
    """
    spawned: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "spawn" and node.args:
                factory = node.args[0]
                if isinstance(factory, ast.Call) and isinstance(factory.func, ast.Name):
                    spawned.add(factory.func.id)
                elif isinstance(factory, ast.Call) and isinstance(factory.func, ast.Attribute):
                    spawned.add(factory.func.attr)
    for func in ctx.functions():
        if not _is_generator(func):
            continue
        if func.name.endswith("_process") or func.name in spawned:
            yield func


def _is_generator(func: ast.FunctionDef) -> bool:
    for node in _walk_function(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _walk_function(func: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk a function's own body, not descending into nested defs."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class BlockingIoRule(Rule):
    """S201 — blocking I/O inside a sim coroutine."""

    code = "S201"
    name = "blocking-io-in-coroutine"
    rationale = (
        "time.sleep/open/sockets/subprocess block the real thread, freezing "
        "every other coroutine sharing the EventLoop; sleep by yielding a "
        "delay and model I/O as flows or scheduled events."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for func in sim_coroutines(ctx):
            for node in _walk_function(func):
                if not isinstance(node, ast.Call):
                    continue
                name = ctx.resolve_call_name(node.func)
                if name is None:
                    continue
                if name in ("open", "io.open", "gzip.open", "bz2.open", "lzma.open"):
                    blocking = f"{name}()"
                elif name in _BLOCKING_CALLS or name.startswith(_BLOCKING_PREFIXES):
                    blocking = f"{name}()"
                else:
                    continue
                yield ctx.violation(
                    self.code,
                    f"blocking call {blocking} inside sim coroutine "
                    f"`{func.name}`; it would stall the entire event loop — "
                    "yield a delay or model the I/O as a flow",
                    node,
                )


@register_rule
class InvalidYieldRule(Rule):
    """S202 — yielding a value the event loop cannot wait on."""

    code = "S202"
    name = "invalid-yield-type"
    rationale = (
        "A process may only yield a numeric delay, a SimFuture, or a Process "
        "(Process._wait_on raises on anything else at runtime); yielding "
        "strings/None/containers is a latent crash on a rarely-taken path."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for func in sim_coroutines(ctx):
            for node in _walk_function(func):
                if not isinstance(node, ast.Yield):
                    continue
                problem = self._invalid_reason(node.value)
                if problem is not None:
                    yield ctx.violation(
                        self.code,
                        f"sim coroutine `{func.name}` yields {problem}; only a "
                        "non-negative delay, a SimFuture, or a Process are "
                        "waitable",
                        node,
                    )

    @staticmethod
    def _invalid_reason(value: Optional[ast.expr]) -> Optional[str]:
        if value is None:
            return "nothing (bare yield sends None into the loop)"
        if isinstance(value, ast.Constant):
            if isinstance(value.value, bool) or not isinstance(value.value, (int, float)):
                return f"the constant {value.value!r}"
            return None
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.Tuple)):
            return "a container literal"
        if isinstance(value, ast.JoinedStr):
            return "an f-string"
        return None  # dynamic expressions are assumed waitable (runtime checks them)


def _guarded_spans(func: ast.FunctionDef) -> list[tuple[int, int]]:
    """Line ranges of try-bodies whose ``finally`` calls ``end_transfer``."""
    spans: list[tuple[int, int]] = []
    for node in _walk_function(func):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        closes = any(
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "end_transfer"
            for stmt in node.finalbody
            for call in ast.walk(stmt)
        )
        if closes:
            start = node.body[0].lineno
            end = max(
                getattr(stmt, "end_lineno", stmt.lineno)
                for stmt in (node.body + node.handlers + node.orelse)
            )
            spans.append((start, end))
    return spans


@register_rule
class UnguardedBilledSessionRule(Rule):
    """S203 — a billed transfer held across an unguarded yield/return."""

    code = "S203"
    name = "unguarded-billed-session"
    rationale = (
        "Between env.begin_transfer(node) and env.end_transfer(node) the "
        "node's billed session is pinned open; a yield outside a try/finally "
        "that calls end_transfer leaks the pin when the coroutine is "
        "cancelled mid-wait (the straggler-abandonment path), inflating "
        "billed duration forever."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for func in ctx.functions():
            begins = [
                node
                for node in _walk_function(func)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "begin_transfer"
            ]
            if not begins:
                continue
            spans = _guarded_spans(func)
            if not spans:
                yield ctx.violation(
                    self.code,
                    f"`{func.name}` calls begin_transfer() but has no "
                    "try/finally calling end_transfer(); a cancelled or "
                    "early-returning coroutine would pin the billed session "
                    "open forever",
                    begins[0],
                )
                continue
            first_begin = min(node.lineno for node in begins)
            for node in _walk_function(func):
                if not isinstance(node, (ast.Yield, ast.YieldFrom)):
                    continue
                if node.lineno <= first_begin:
                    continue
                if any(start <= node.lineno <= end for start, end in spans):
                    continue
                yield ctx.violation(
                    self.code,
                    f"`{func.name}` yields while holding a billed transfer "
                    "outside the try/finally that calls end_transfer(); "
                    "cancellation at this yield leaks the session pin",
                    node,
                )


def _literal_number(node: ast.expr) -> Optional[float]:
    """The numeric value of a literal (including ``-x`` and ``float('nan')``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_number(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "float" and len(node.args) == 1:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                try:
                    return float(arg.value)
                except ValueError:
                    return None
    if isinstance(node, ast.Attribute) and node.attr in ("nan", "inf"):
        return float(node.attr)
    return None


#: Scheduling entry points whose first argument is a delay or absolute time.
_SCHEDULE_METHODS = frozenset({"schedule", "schedule_at", "timeout", "sleep"})


@register_rule
class NegativeDelayRule(Rule):
    """S204 — scheduling an event at a negative or NaN delay."""

    code = "S204"
    name = "negative-or-nan-delay"
    rationale = (
        "Negative delays would run events in the past and NaN delays poison "
        "the event heap's ordering invariant (every comparison is False); "
        "EventQueue rejects both at runtime, and this rule catches the "
        "literal cases before they ever run."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr not in _SCHEDULE_METHODS:
                    continue
                delay = self._delay_argument(node)
                if delay is None:
                    continue
                value = _literal_number(delay)
                if value is not None and (value < 0 or math.isnan(value)):
                    yield ctx.violation(
                        self.code,
                        f"`{node.func.attr}({ast.unparse(delay)}, ...)` "
                        "schedules at a negative/NaN delay; delays must be "
                        "finite and non-negative",
                        node,
                    )
        for func in sim_coroutines(ctx):
            for node in _walk_function(func):
                if isinstance(node, ast.Yield) and node.value is not None:
                    value = _literal_number(node.value)
                    if value is not None and (value < 0 or math.isnan(value)):
                        yield ctx.violation(
                            self.code,
                            f"sim coroutine `{func.name}` yields the delay "
                            f"{ast.unparse(node.value)}; sleeps must be finite "
                            "and non-negative",
                            node,
                        )

    @staticmethod
    def _delay_argument(node: ast.Call) -> Optional[ast.expr]:
        if node.args:
            return node.args[0]
        for keyword in node.keywords:
            if keyword.arg in ("delay", "time", "interval_s"):
                return keyword.value
        return None


#: Exception names too broad for a silent handler in a sim coroutine.
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


@register_rule
class SwallowedExceptionRule(Rule):
    """S205 — a sim coroutine swallowing exceptions wholesale."""

    code = "S205"
    name = "swallowed-exception-in-coroutine"
    rationale = (
        "A bare `except:` (or `except Exception:`) without a re-raise inside "
        "a sim coroutine hides protocol bugs as silent request corruption: "
        "the process keeps running with half-applied state and the replay "
        "stays 'green' while diverging.  Hardened paths must catch the "
        "*typed* transient-fault exceptions and account for them; anything "
        "unexpected should crash the run loudly."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for func in sim_coroutines(ctx):
            for node in _walk_function(func):
                if not isinstance(node, ast.Try):
                    continue
                for handler in node.handlers:
                    label = self._broad_label(handler.type)
                    if label is None:
                        continue
                    if self._reraises(handler):
                        continue
                    yield ctx.violation(
                        self.code,
                        f"sim coroutine `{func.name}` swallows all errors "
                        f"with `{label}` and never re-raises; catch the typed "
                        "transient-fault exceptions instead so real protocol "
                        "bugs still crash the run",
                        handler,
                    )

    @staticmethod
    def _broad_label(kind: Optional[ast.expr]) -> Optional[str]:
        if kind is None:
            return "except:"
        if isinstance(kind, ast.Name) and kind.id in _BROAD_EXCEPTIONS:
            return f"except {kind.id}:"
        if isinstance(kind, ast.Tuple):
            for element in kind.elts:
                if isinstance(element, ast.Name) and element.id in _BROAD_EXCEPTIONS:
                    return f"except (..., {element.id}):"
        return None

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(node, ast.Raise)
            for stmt in handler.body
            for node in ast.walk(stmt)
        )

"""Baseline file: grandfathered violations that do not fail the gate.

A baseline entry keys on ``(path, code, stripped source line)`` with a
multiplicity count, so entries survive unrelated edits that shift line
numbers but expire the moment the offending line itself changes — exactly
when a human should re-justify the exception.  ``repro lint
--write-baseline`` records the current violations; ``--check-baseline``
fails only on violations *not* covered, and reports entries that no longer
match anything (stale grandfathering to clean up).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import ConfigurationError
from repro.lint.violations import Violation

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered violation pattern."""

    path: str
    code: str
    snippet: str
    count: int = 1

    def key(self) -> tuple[str, str, str]:
        return (self.path, self.code, self.snippet)


def _key_of(violation: Violation) -> tuple[str, str, str]:
    return (violation.path.replace("\\", "/"), violation.code, violation.snippet)


class Baseline:
    """An in-memory baseline with match/consume semantics."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()):
        self._counts: dict[tuple[str, str, str], int] = {}
        for entry in entries:
            key = entry.key()
            self._counts[key] = self._counts.get(key, 0) + entry.count

    def __len__(self) -> int:
        return sum(self._counts.values())

    # ------------------------------------------------------------------ matching
    def partition(
        self, violations: Iterable[Violation]
    ) -> tuple[list[Violation], list[Violation], list[BaselineEntry]]:
        """Split violations into (new, grandfathered) and find stale entries.

        Each baseline entry absorbs at most ``count`` matching violations;
        anything beyond that is new.  Entries left with remaining count are
        stale — the code they grandfathered has been fixed or rewritten.
        """
        remaining = dict(self._counts)
        fresh: list[Violation] = []
        grandfathered: list[Violation] = []
        for violation in sorted(violations):
            key = _key_of(violation)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                grandfathered.append(violation)
            else:
                fresh.append(violation)
        stale = [
            BaselineEntry(path=key[0], code=key[1], snippet=key[2], count=count)
            for key, count in sorted(remaining.items())
            if count > 0
        ]
        return fresh, grandfathered, stale

    # ------------------------------------------------------------------ serialisation
    @classmethod
    def from_violations(cls, violations: Iterable[Violation]) -> "Baseline":
        counts: dict[tuple[str, str, str], int] = {}
        for violation in violations:
            key = _key_of(violation)
            counts[key] = counts.get(key, 0) + 1
        return cls(
            BaselineEntry(path=key[0], code=key[1], snippet=key[2], count=count)
            for key, count in counts.items()
        )

    def to_payload(self) -> dict[str, object]:
        return {
            "version": BASELINE_VERSION,
            "entries": [
                {"path": key[0], "code": key[1], "snippet": key[2], "count": count}
                for key, count in sorted(self._counts.items())
            ],
        }

    @classmethod
    def from_payload(cls, payload: object) -> "Baseline":
        if not isinstance(payload, dict):
            raise ConfigurationError("baseline file must hold a JSON object")
        if payload.get("version") != BASELINE_VERSION:
            raise ConfigurationError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"(expected {BASELINE_VERSION})"
            )
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise ConfigurationError("baseline file must hold an `entries` list")
        parsed = []
        for raw in entries:
            try:
                parsed.append(
                    BaselineEntry(
                        path=str(raw["path"]),
                        code=str(raw["code"]),
                        snippet=str(raw["snippet"]),
                        count=int(raw.get("count", 1)),
                    )
                )
            except (TypeError, KeyError) as exc:
                raise ConfigurationError(f"malformed baseline entry {raw!r}") from exc
        return cls(parsed)

    # ------------------------------------------------------------------ file I/O
    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_payload(json.load(handle))

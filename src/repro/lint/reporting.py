"""Violation report renderers: text, JSON, GitHub annotations."""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.lint.registry import all_rules
from repro.lint.violations import Violation


def render_text(violations: Sequence[Violation]) -> str:
    """Human-readable report: one ``path:line:col: CODE message`` per hit."""
    lines = [
        f"{violation.location()}: {violation.code} {violation.message}"
        for violation in violations
    ]
    counts: dict[str, int] = {}
    for violation in violations:
        counts[violation.code] = counts.get(violation.code, 0) + 1
    if violations:
        summary = ", ".join(f"{code}×{count}" for code, count in sorted(counts.items()))
        lines.append(f"{len(violations)} violation(s): {summary}")
    else:
        lines.append("clean: no violations")
    return "\n".join(lines)


def render_json(
    violations: Sequence[Violation],
    grandfathered: Sequence[Violation] = (),
    stale_baseline: Sequence[object] = (),
) -> str:
    """Machine-readable report (also the CI artifact payload)."""
    payload = {
        "violations": [violation.to_dict() for violation in violations],
        "grandfathered": [violation.to_dict() for violation in grandfathered],
        "stale_baseline": [
            {"path": entry.path, "code": entry.code,
             "snippet": entry.snippet, "count": entry.count}
            for entry in stale_baseline
        ],
        "summary": {
            "new": len(violations),
            "grandfathered": len(grandfathered),
            "stale_baseline": len(stale_baseline),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _escape_annotation(text: str) -> str:
    """GitHub workflow-command escaping for the message portion."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def render_github(violations: Sequence[Violation]) -> str:
    """GitHub Actions ``::error`` annotations, one per violation."""
    lines = []
    for violation in violations:
        message = _escape_annotation(violation.message)
        lines.append(
            f"::error file={violation.path},line={violation.line},"
            f"col={violation.col},title={violation.code}::{message}"
        )
    if not lines:
        lines.append("::notice::repro lint: no new violations")
    return "\n".join(lines)


def render_rule_list() -> str:
    """The ``--list-rules`` catalogue: code, name, one-line rationale."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"      {rule.rationale}")
    return "\n".join(lines)


def render(fmt: str, violations: Sequence[Violation], **kwargs: object) -> str:
    """Dispatch on ``--format`` value."""
    if fmt == "text":
        return render_text(violations)
    if fmt == "json":
        return render_json(violations, **kwargs)  # type: ignore[arg-type]
    if fmt == "github":
        return render_github(violations)
    raise ValueError(f"unknown format {fmt!r}")

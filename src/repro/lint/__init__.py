"""Static analysis for determinism and sim-protocol invariants.

The whole reproduction rests on byte-identical deterministic replay: every
experiment is pinned by a golden fingerprint, the incremental flow arbiter
is differentially tested against a reference sweep, and the tracer must
observe without perturbing the schedule.  Those guarantees are invariants
of the *source*, not of any particular run — one unseeded ``random`` call,
one ``time.time()`` feeding a decision, or one iteration over an unordered
``set`` in a scheduling path silently breaks fingerprints in a way tests
only catch after the fact.

``repro.lint`` machine-checks those invariants with an AST rule engine:

* **D-rules** (determinism hazards): global/unseeded RNG use, wall-clock
  reads outside the profiling allowlist, unordered-collection iteration in
  scheduling paths, identity-based sort keys, environment reads outside
  config loading.
* **S-rules** (sim-protocol): coroutine processes must not block the event
  loop with real I/O, must only yield the documented waitable types, must
  not hold a billed transfer across an unguarded ``yield``/``return``, and
  must not schedule events at negative or NaN delays.

Violations are suppressed inline with ``# repro: allow[CODE]`` or
grandfathered through a committed baseline file; ``repro lint`` is the CLI
and the CI gate.  See ``docs/static-analysis.md``.
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.context import FileContext
from repro.lint.engine import lint_file, lint_paths, lint_source
from repro.lint.registry import Rule, all_rules, get_rule, register_rule, rule_codes
from repro.lint.reporting import render_github, render_json, render_text
from repro.lint.violations import Violation

# Importing the rule modules registers every built-in rule.
from repro.lint import rules_determinism as _rules_determinism  # noqa: F401
from repro.lint import rules_simprotocol as _rules_simprotocol  # noqa: F401

__all__ = [
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_github",
    "render_json",
    "render_text",
    "rule_codes",
]

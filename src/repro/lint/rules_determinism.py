"""D-rules: determinism hazards.

Everything here guards the same invariant: a seeded run must replay
byte-identically, so no decision feeding the event schedule may depend on
process-global RNG state, real time, hash-randomised iteration order,
object identity, or the environment.  See ``docs/static-analysis.md`` for
the catalogue with per-rule rationale.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register_rule
from repro.lint.violations import Violation

#: numpy.random entry points that *construct seeded generators* — the
#: sanctioned pattern (see ``repro.utils.rng``) — rather than touching the
#: module-global RNG state.
_SEEDED_NUMPY_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
})

#: Wall-clock entry points in the time module (D102).
_TIME_READS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
})

#: Wall-clock entry points in the datetime module (D102).
_DATETIME_READS = frozenset({
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


def _call_names(ctx: FileContext) -> Iterator[tuple[ast.Call, str]]:
    """Every call in the file paired with its resolved dotted name."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = ctx.resolve_call_name(node.func)
            if name is not None:
                yield node, name


@register_rule
class GlobalRandomRule(Rule):
    """D101 — calls into the process-global (unseeded) RNG."""

    code = "D101"
    name = "unseeded-global-random"
    rationale = (
        "Module-level random.* / numpy.random.* calls draw from process-global "
        "state shared across components, so one extra draw anywhere reorders "
        "every later decision; use a seeded repro.utils.rng.Rng instance."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node, name in _call_names(ctx):
            if name.startswith("random.") and name.count(".") == 1:
                attr = name.split(".", 1)[1]
                # Constructing a Random instance is the seeded idiom; the
                # module-level draws (random.random, random.choice, even
                # random.seed) all mutate shared global state.
                if attr == "Random":
                    continue
                yield ctx.violation(
                    self.code,
                    f"call to global RNG `{name}`; use a seeded "
                    "repro.utils.rng.Rng (or random.Random(seed)) instead",
                    node,
                )
            elif name.startswith("numpy.random."):
                attr = name.split(".", 2)[2]
                if attr in _SEEDED_NUMPY_CONSTRUCTORS:
                    continue
                yield ctx.violation(
                    self.code,
                    f"call to numpy global RNG `{name}`; construct a seeded "
                    "generator via numpy.random.default_rng(seed) instead",
                    node,
                )


@register_rule
class WallClockRule(Rule):
    """D102 — reads of real (wall-clock) time outside the profiling allowlist."""

    code = "D102"
    name = "wall-clock-read"
    rationale = (
        "Real time varies run to run; any value of time.time()/perf_counter()/"
        "datetime.now() that feeds simulation state breaks byte-identical "
        "replay.  Use the SimClock.  (experiments/perf.py and repro.obs "
        "measure real time by design and are exempt.)"
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        if ctx.wallclock_exempt:
            return
        for node, name in _call_names(ctx):
            if name in _TIME_READS or name in _DATETIME_READS:
                yield ctx.violation(
                    self.code,
                    f"wall-clock read `{name}` outside the profiling allowlist; "
                    "simulation code must read time from the SimClock",
                    node,
                )


def _is_literal_set(node: ast.Set) -> bool:
    """A set display whose every element is a constant literal."""
    return all(isinstance(elt, ast.Constant) for elt in node.elts)


class _SetTracker:
    """Best-effort tracking of which local names hold set values."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()

    def is_set_valued(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Set):
            return not _is_literal_set(node)
        if isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                # A no-arg set() is empty at that point; what matters is
                # whether a populated one is *iterated*, and a populated
                # local is caught through the assignment tracking below.
                return bool(node.args)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set_valued(node.left) or self.is_set_valued(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        return False

    def note_assignments(self, scope: ast.AST) -> None:
        """Record local names bound to set values anywhere in ``scope``."""
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if self.is_set_valued(node.value) or (
                        isinstance(node.value, ast.Call)
                        and isinstance(node.value.func, ast.Name)
                        and node.value.func.id in ("set", "frozenset")
                    ):
                        self.set_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                annotation = ast.unparse(node.annotation)
                if annotation.startswith(("set", "frozenset", "Set", "FrozenSet")):
                    self.set_names.add(node.target.id)


#: Order-insensitive consumers: a set argument to these cannot leak hash
#: order into the schedule, so wrapping is the sanctioned fix.
_ORDER_INSENSITIVE = frozenset({"sorted", "min", "max", "sum", "len", "any", "all"})


@register_rule
class UnorderedIterationRule(Rule):
    """D103 — iterating an unordered collection in a scheduling path."""

    code = "D103"
    name = "unordered-iteration"
    rationale = (
        "set/frozenset iteration order follows the per-process string hash "
        "seed; in repro/{sim,network,cache,cluster,faas} that order can decide "
        "event scheduling, so iterate sorted(...) or an insertion-ordered dict."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        if not ctx.in_scheduling_path:
            return
        scopes: list[ast.AST] = [ctx.tree]
        scopes.extend(ctx.functions())
        seen: set[tuple[int, int]] = set()
        for scope in scopes:
            tracker = _SetTracker()
            tracker.note_assignments(scope)
            for violation in self._check_scope(ctx, scope, tracker):
                key = (violation.line, violation.col)
                if key not in seen:
                    seen.add(key)
                    yield violation

    def _check_scope(
        self, ctx: FileContext, scope: ast.AST, tracker: _SetTracker
    ) -> Iterator[Violation]:
        for node in ast.walk(scope):
            if isinstance(node, ast.FunctionDef) and node is not scope:
                continue  # inner functions get their own scope pass
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                # list(<set>) / tuple(<set>) materialise the unordered order
                # — unless they feed an order-insensitive consumer, which
                # the parentless walk approximates by flagging only the
                # bare materialisation.
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple")
                    and len(node.args) == 1
                    and tracker.is_set_valued(node.args[0])
                ):
                    yield ctx.violation(
                        self.code,
                        f"{node.func.id}() over an unordered set materialises "
                        "hash order; wrap in sorted(...) instead",
                        node,
                    )
                # sorted(<set>)/min/max/... consume the set order-insensitively;
                # also stop their argument from being re-flagged below.
                continue
            for candidate in iters:
                if isinstance(candidate, ast.Call) and isinstance(candidate.func, ast.Name):
                    if candidate.func.id in _ORDER_INSENSITIVE:
                        continue
                if isinstance(candidate, ast.Call) and isinstance(candidate.func, ast.Attribute):
                    if candidate.func.attr == "keys":
                        receiver = candidate.func.value
                        if not isinstance(receiver, (ast.Dict, ast.Constant)):
                            yield ctx.violation(
                                self.code,
                                "iteration over .keys() of a non-literal receiver "
                                "in a scheduling path; iterate the mapping "
                                "directly (or sorted(...)) so intent is explicit",
                                candidate,
                            )
                        continue
                if tracker.is_set_valued(candidate):
                    yield ctx.violation(
                        self.code,
                        "iteration over an unordered set/frozenset in a "
                        "scheduling path; iterate sorted(...) or an "
                        "insertion-ordered dict",
                        candidate,
                    )


def _is_identity_key(node: ast.expr) -> Optional[str]:
    """The offending builtin name if ``key=`` is identity/hash based."""
    if isinstance(node, ast.Name) and node.id in ("id", "hash"):
        return node.id
    if isinstance(node, ast.Lambda) and isinstance(node.body, ast.Call):
        func = node.body.func
        if isinstance(func, ast.Name) and func.id in ("id", "hash"):
            return func.id
    return None


@register_rule
class IdentitySortKeyRule(Rule):
    """D104 — sorting by object identity or default hash."""

    code = "D104"
    name = "identity-sort-key"
    rationale = (
        "id() is an allocation address and the default hash() of objects (and "
        "of str) varies per process, so sorts keyed on them produce a "
        "different order every run; sort by a stable domain key instead."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            is_sort = (
                isinstance(node.func, ast.Name) and node.func.id == "sorted"
            ) or (
                isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
            )
            if not is_sort:
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                offender = _is_identity_key(keyword.value)
                if offender is not None:
                    yield ctx.violation(
                        self.code,
                        f"sort keyed on `{offender}()` is process-dependent; "
                        "use a stable domain key (sequence number, name, id "
                        "field) instead",
                        node,
                    )


@register_rule
class EnvironReadRule(Rule):
    """D105 — environment reads outside config loading."""

    code = "D105"
    name = "environ-read-outside-config"
    rationale = (
        "os.environ consulted deep in the library makes behaviour depend on "
        "invisible machine state; environment lookups belong in the config "
        "modules, which turn them into explicit, logged parameters."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        if ctx.is_config_module:
            return
        for node in ast.walk(ctx.tree):
            name: Optional[str] = None
            if isinstance(node, ast.Attribute):
                name = ctx.resolve_call_name(node)
            elif isinstance(node, ast.Name):
                name = ctx.from_imports.get(node.id)
            if name in ("os.environ", "os.getenv"):
                yield ctx.violation(
                    self.code,
                    f"`{name}` read outside a config module; thread the value "
                    "through explicit configuration instead",
                    node,
                )

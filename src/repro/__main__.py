"""``python -m repro`` — experiment runner plus cluster subcommands.

Without a subcommand this regenerates the paper's tables and figures (a
thin alias for :mod:`repro.experiments.runner`; see that module for the
available flags — ``--only``, ``--output-dir``, ``--list``, and
``--fingerprints PATH``, which also writes every experiment's event-driver
fingerprints as the JSON artifact the ``figures-smoke`` CI job uploads).
Every experiment replays through the event-driven drivers
(:mod:`repro.workload.replay`) — the synchronous facade is quarantined in
:mod:`repro.workload.legacy` and not used by any experiment.

``python -m repro cluster-demo [--duration SECONDS]`` instead runs the
:mod:`repro.cluster` orchestration demo: autoscaling under a load surge,
tenant quota enforcement, a live proxy join with rebalancing, and an
injected-failure repair sweep.

``python -m repro chargeback [--duration SECONDS] [--requests N]`` runs a
small multi-tenant replay and prints the per-tenant GB-second chargeback
view: who caused which share of the Lambda bill, with the conservation
check that the per-tenant totals sum to the cluster-wide bill.

``python -m repro sim-smoke [--clients N]`` runs the closed-loop
event-driven replay driver twice with a fixed seed and verifies the runs
are bit-for-bit deterministic (same request intervals, same chunk-flow
intervals) and that concurrent clients genuinely overlap on the wire; CI
uses it as the concurrency smoke check.

``python -m repro perf [--quick] [--output BENCH_perf.json]`` runs the
simulator performance harness (micro event-queue/flow-churn benchmarks
plus the closed-loop fleet sweep), writes ``BENCH_perf.json``, and exits
non-zero if the incremental flow arbiter's replay fingerprint drifts from
the global-recompute reference — a correctness gate immune to timing
noise.  See ``docs/performance.md``.

``python -m repro chaos [--seed N] [--clients N] [--rounds N] [--json
PATH]`` replays the canonical fault storm (:mod:`repro.faults.scenario`)
twice through the deterministic chaos engine, asserts the two runs produce
byte-identical replay fingerprints, and prints the resilience report:
per-fault-window availability, degraded-hit and RESET counts, recovery
times, and the faulted-vs-clean SLO percentile deltas.  Exits non-zero on
fingerprint divergence, on any unhandled request failure, or if the
degraded-fallback path never engaged.  CI runs it as the ``chaos-smoke``
job.  See ``docs/robustness.md``.

``python -m repro scenarios {list,describe,run}`` drives the declarative
scenario engine (:mod:`repro.scenarios`): list the built-in grid library,
inspect a grid's axes and cells, or expand and execute one —
``run NAME --parallel N`` fans the (cell, replication) units over a spawn
process pool with per-unit fingerprints byte-identical to a serial run,
and ``--output PATH`` writes the grid summary JSON (fingerprints,
collector digests, per-cell metric rows).  See ``docs/scenarios.md``.

``python -m repro lint [PATHS] [--format text|json|github] [--baseline
PATH] [--write-baseline | --check-baseline]`` runs the determinism &
sim-protocol static analyser (:mod:`repro.lint`) over the source tree and
exits non-zero on violations not grandfathered by the committed baseline;
CI runs it with ``--format=github --check-baseline``.  See
``docs/static-analysis.md``.

``python -m repro trace [--clients N] [--output trace.json]`` runs the
same closed-loop replay twice — once untraced, once with the span tracer
attached — asserts the two produce identical replay fingerprints (tracing
must be a pure observer), writes a Perfetto-loadable Chrome trace-event
file, and prints the per-request critical-path breakdown: which stage
(lambda invoke, network transfer, decode, ...) dominated each request.
See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import main as runner_main


def _cluster_demo(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cluster-demo",
        description="Exercise the autoscaling multi-tenant cluster subsystem.",
    )
    parser.add_argument(
        "--duration", type=float, default=240.0, metavar="SECONDS",
        help="simulated seconds of load to drive (default: 240)",
    )
    args = parser.parse_args(argv)
    from repro.cluster.demo import run_demo

    run_demo(duration_s=args.duration)
    return 0


def _chargeback(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro chargeback",
        description="Per-tenant GB-second chargeback view over a multi-tenant replay.",
    )
    parser.add_argument(
        "--duration", type=float, default=300.0, metavar="SECONDS",
        help="simulated seconds to replay (default: 300)",
    )
    parser.add_argument(
        "--requests", type=int, default=150, metavar="N",
        help="requests per tenant (default: 150)",
    )
    parser.add_argument(
        "--policy", choices=("reactive", "predictive", "predictive_trend"),
        default="reactive",
        help="autoscaler policy to run under (default: reactive)",
    )
    args = parser.parse_args(argv)
    from repro.cluster import AutoscalerConfig
    from repro.experiments import cluster_scale
    from repro.experiments.report import format_table
    from repro.faas.billing import UNATTRIBUTED_TENANT

    result = cluster_scale.run(
        tenants=cluster_scale.default_tenants(args.requests),
        duration_s=args.duration,
        autoscaler_config=AutoscalerConfig(policy=args.policy),
    )
    rows = []
    for tenant_id, row in sorted(result.chargeback.items()):
        label = "(cluster)" if tenant_id == UNATTRIBUTED_TENANT else tenant_id
        rows.append([
            label, row["gb_seconds"], row["cost"], row["bill_share"],
        ])
    print(format_table(
        ["tenant", "gb_seconds", "cost_$", "bill_share"],
        rows,
        title=f"Chargeback ({args.policy} autoscaler, {args.duration:g}s replay)",
    ))
    drift = abs(result.chargeback_total_cost - result.total_cost)
    print(
        f"\nconservation: per-tenant sum ${result.chargeback_total_cost:.6f} vs "
        f"cluster bill ${result.total_cost:.6f} (drift ${drift:.2e})"
    )
    return 0 if drift <= 1e-9 + 1e-9 * result.total_cost else 1


def _sim_smoke(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro sim-smoke",
        description="Determinism + concurrency smoke test of the event-driven driver.",
    )
    parser.add_argument(
        "--clients", type=int, default=16, metavar="N",
        help="concurrent closed-loop clients (default: 16)",
    )
    parser.add_argument(
        "--requests", type=int, default=4, metavar="N",
        help="requests per client (default: 4)",
    )
    parser.add_argument(
        "--seed", type=int, default=2020, help="simulation seed (default: 2020)",
    )
    args = parser.parse_args(argv)
    from repro.cache.config import InfiniCacheConfig, StragglerModel
    from repro.cache.deployment import InfiniCacheDeployment
    from repro.utils.units import MB, MIB
    from repro.workload.replay import ClosedLoopDriver

    def run_once():
        deployment = InfiniCacheDeployment(InfiniCacheConfig(
            num_proxies=2,
            lambdas_per_proxy=10,
            lambda_memory_bytes=512 * MIB,
            data_shards=4,
            parity_shards=2,
            backup_enabled=False,
            straggler=StragglerModel(probability=0.1),
            seed=args.seed,
        ))
        seeder = deployment.new_client("smoke-seeder")
        objects = 4
        for index in range(args.clients):
            for obj in range(objects):
                seeder.put_sized(f"smoke/{index}/obj-{obj}", 4 * MB)
        plans = [
            [(f"smoke/{index}/obj-{r % objects}", 4 * MB) for r in range(args.requests)]
            for index in range(args.clients)
        ]
        return ClosedLoopDriver(deployment).run(plans)

    first, second = run_once(), run_once()
    deterministic = first.fingerprint() == second.fingerprint()
    overlap = first.overlapping_flow_pairs()
    print(
        f"closed-loop smoke: clients={args.clients} requests={first.requests} "
        f"hits={first.hits} duration={first.duration_s:.3f}s "
        f"throughput={first.aggregate_throughput_bps / 1e6:.1f} MB/s"
    )
    print(
        f"flow trace: {len(first.flow_intervals)} transfers, "
        f"peak concurrent={first.max_concurrent_flows()}, overlapping pairs={overlap}"
    )
    print(f"deterministic across seeds-fixed runs: {deterministic}")
    if not deterministic:
        print("FAIL: two runs with the same seed diverged", file=sys.stderr)
        return 1
    if args.clients > 1 and overlap == 0:
        print("FAIL: concurrent clients produced no overlapping transfers", file=sys.stderr)
        return 1
    return 0


def _chaos(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Replay the canonical fault storm twice, assert same-seed "
        "fingerprint stability, and print the resilience report.",
    )
    parser.add_argument(
        "--seed", type=int, default=2020, help="simulation seed (default: 2020)",
    )
    parser.add_argument(
        "--clients", type=int, default=6, metavar="N",
        help="closed-loop clients (default: 6)",
    )
    parser.add_argument(
        "--rounds", type=int, default=70, metavar="N",
        help="requests per client (default: 70)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the resilience report as JSON",
    )
    args = parser.parse_args(argv)
    from repro.faults import run_chaos_scenario

    def run_once():
        return run_chaos_scenario(
            seed=args.seed, clients=args.clients, rounds=args.rounds,
        )

    first, second = run_once(), run_once()
    expected = args.clients * args.rounds
    print(
        f"chaos storm: requests={first.replay.requests}/{expected} "
        f"hits={first.replay.hits} degraded_hits={first.replay.degraded_hits} "
        f"resets={first.replay.resets} duration={first.replay.duration_s:.1f}s"
    )
    for line in first.resilience.format_lines():
        print(line)
    print(f"fingerprint run 1: {first.fingerprint}")
    print(f"fingerprint run 2: {second.fingerprint}")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(first.resilience.to_dict(), handle, indent=2, sort_keys=True)
        print(f"(wrote {args.json})")
    if first.fingerprint != second.fingerprint:
        print(
            "FAIL: same seed + same fault schedule produced divergent "
            "fingerprints — the chaos engine is non-deterministic",
            file=sys.stderr,
        )
        return 1
    if first.replay.requests != expected:
        print(
            f"FAIL: {expected - first.replay.requests} requests never "
            "completed — the hardened path leaked a failure",
            file=sys.stderr,
        )
        return 1
    if first.replay.degraded_hits == 0:
        print(
            "FAIL: the storm never engaged the degraded-fallback path — "
            "the scenario lost its teeth",
            file=sys.stderr,
        )
        return 1
    print("determinism: OK (two runs byte-identical)")
    return 0


def _trace(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Traced closed-loop replay: emit a Perfetto-loadable trace "
        "and print the per-request critical-path breakdown.",
    )
    parser.add_argument(
        "--clients", type=int, default=16, metavar="N",
        help="concurrent closed-loop clients (default: 16)",
    )
    parser.add_argument(
        "--requests", type=int, default=4, metavar="N",
        help="requests per client (default: 4)",
    )
    parser.add_argument(
        "--seed", type=int, default=2020, help="simulation seed (default: 2020)",
    )
    parser.add_argument(
        "--output", default="trace.json", metavar="PATH",
        help="Chrome trace-event file, loadable in Perfetto / chrome://tracing "
        "(default: trace.json)",
    )
    parser.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also write the raw spans as JSON lines",
    )
    parser.add_argument(
        "--slowest", type=int, default=5, metavar="N",
        help="how many slowest requests to list (default: 5)",
    )
    args = parser.parse_args(argv)
    from repro.cache.config import InfiniCacheConfig, StragglerModel
    from repro.cache.deployment import InfiniCacheDeployment
    from repro.obs import (
        SpanTracer,
        analyze,
        format_summary,
        validate_chrome_trace,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.utils.units import MB, MIB
    from repro.workload.replay import ClosedLoopDriver

    def build():
        # Stragglers are likelier than in sim-smoke so the trace reliably
        # shows racing chunk fetches being abandoned by the first-d barrier.
        deployment = InfiniCacheDeployment(InfiniCacheConfig(
            num_proxies=2,
            lambdas_per_proxy=10,
            lambda_memory_bytes=512 * MIB,
            data_shards=4,
            parity_shards=2,
            backup_enabled=False,
            straggler=StragglerModel(probability=0.3),
            seed=args.seed,
        ))
        seeder = deployment.new_client("trace-seeder")
        objects = 4
        for index in range(args.clients):
            for obj in range(objects):
                seeder.put_sized(f"trace/{index}/obj-{obj}", 4 * MB)
        plans = [
            [(f"trace/{index}/obj-{r % objects}", 4 * MB) for r in range(args.requests)]
            for index in range(args.clients)
        ]
        return deployment, plans

    deployment, plans = build()
    baseline = ClosedLoopDriver(deployment).run(plans)

    deployment, plans = build()
    tracer = SpanTracer(deployment.simulator.clock)
    deployment.request_env.attach_tracer(tracer)
    traced = ClosedLoopDriver(deployment).run(plans)
    tracer.finish_open()

    if traced.fingerprint() != baseline.fingerprint():
        print(
            "FAIL: tracing perturbed the replay — traced and untraced "
            "fingerprints diverged",
            file=sys.stderr,
        )
        return 1
    names = {span.name for span in tracer.spans}
    required = {
        "request", "client.get", "proxy.get", "chunk.fetch",
        "net.flow", "lambda.invoke", "lambda.session", "client.decode",
    }
    missing = sorted(required - names)
    if missing:
        print(f"FAIL: trace is missing span kinds: {missing}", file=sys.stderr)
        return 1
    payload = write_chrome_trace(args.output, tracer.spans)
    errors = validate_chrome_trace(payload)
    if errors:
        for error in errors:
            print(f"FAIL: invalid trace: {error}", file=sys.stderr)
        return 1
    if args.jsonl:
        write_jsonl(args.jsonl, tracer.spans)
        print(f"(wrote {len(tracer.spans)} spans to {args.jsonl})")
    print(
        f"traced replay: clients={args.clients} requests={traced.requests} "
        f"hits={traced.hits} duration={traced.duration_s:.3f}s "
        f"spans={len(tracer.spans)} ({len(names)} kinds)"
    )
    print(f"fingerprint parity with untraced run: OK ({traced.fingerprint()[:16]}...)")
    print(f"(wrote Chrome trace to {args.output} — load it in Perfetto)\n")
    print(format_summary(analyze(tracer.spans, slowest=args.slowest)))
    return 0


def _perf(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="Simulator performance harness: events/sec, fleet sweep, "
        "and the incremental-vs-reference arbiter comparison.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: small fleets only, seconds-fast",
    )
    parser.add_argument(
        "--rungs", "--clients", type=int, nargs="+", default=None, metavar="N",
        dest="clients",
        help="fleet-size rungs for the closed-loop macro sweep (default: "
        "8 64 256 1024 4096, or 8 64 256 under --quick; explicit values "
        "are honored as given)",
    )
    parser.add_argument(
        "--compare-clients", type=int, default=None, metavar="N",
        help="fleet size for the arbiter comparison (default: 256, or the "
        "largest swept fleet under --quick)",
    )
    parser.add_argument(
        "--skip-compare", action="store_true",
        help="skip the incremental-vs-reference comparison",
    )
    parser.add_argument(
        "--output", default="BENCH_perf.json", metavar="PATH",
        help="where to write the JSON payload (default: BENCH_perf.json)",
    )
    parser.add_argument(
        "--regression-baseline", default=None, metavar="PATH",
        help="committed BENCH_perf.json to guard against: exit non-zero if "
        "any macro rung present in both runs lost more than the threshold "
        "of its committed events/s (read before --output is written, so "
        "the same path can serve as both)",
    )
    parser.add_argument(
        "--regression-threshold", type=float, default=0.30, metavar="FRACTION",
        help="allowed fractional events/s drop before the regression guard "
        "fails (default: 0.30)",
    )
    parser.add_argument(
        "--regression-min-clients", type=int, default=256, metavar="N",
        help="smallest macro rung the regression guard considers (default: "
        "256 — sub-second rungs are too noisy to gate on)",
    )
    args = parser.parse_args(argv)
    import json

    from repro.experiments import perf

    if args.compare_clients is not None and args.compare_clients < 1:
        parser.error("--compare-clients must be a positive client count")
    if args.clients is not None and any(count < 1 for count in args.clients):
        parser.error("--rungs values must be positive client counts")
    if not 0.0 <= args.regression_threshold < 1.0:
        parser.error("--regression-threshold must be in [0, 1)")
    if args.regression_min_clients < 0:
        parser.error("--regression-min-clients must be non-negative")
    baseline = None
    if args.regression_baseline is not None:
        with open(args.regression_baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    payload = perf.run_suite(
        client_counts=tuple(args.clients) if args.clients else None,
        compare_clients=args.compare_clients,
        quick=args.quick,
        skip_compare=args.skip_compare,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(perf.format_report(payload))
    print(f"\n(wrote {args.output})")
    profile_errors = perf.validate_profile(payload.get("profile"))
    if profile_errors:
        for error in profile_errors:
            print(f"FAIL: malformed profile section: {error}", file=sys.stderr)
        return 1
    comparison = payload.get("arbiter_comparison")
    if comparison and not comparison["fingerprints_identical"]:
        print(
            "FAIL: the arbiters' replay fingerprints diverged (incremental "
            "vs reference vs vectorized must be byte-identical)",
            file=sys.stderr,
        )
        return 1
    if baseline is not None:
        regressions = perf.check_regression(
            payload,
            baseline,
            threshold=args.regression_threshold,
            min_clients=args.regression_min_clients,
        )
        if regressions:
            for regression in regressions:
                print(f"FAIL: {regression}", file=sys.stderr)
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Dispatch to a cluster subcommand or the experiment runner."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "cluster-demo":
        return _cluster_demo(argv[1:])
    if argv and argv[0] == "chargeback":
        return _chargeback(argv[1:])
    if argv and argv[0] == "sim-smoke":
        return _sim_smoke(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos(argv[1:])
    if argv and argv[0] == "perf":
        return _perf(argv[1:])
    if argv and argv[0] == "trace":
        return _trace(argv[1:])
    if argv and argv[0] == "scenarios":
        from repro.scenarios.cli import main as scenarios_main

        return scenarios_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    return runner_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())

"""``python -m repro`` — experiment runner plus cluster subcommands.

Without a subcommand this regenerates the paper's tables and figures (a
thin alias for :mod:`repro.experiments.runner`; see that module for the
available flags — ``--only``, ``--output-dir``, ``--list``).

``python -m repro cluster-demo [--duration SECONDS]`` instead runs the
:mod:`repro.cluster` orchestration demo: autoscaling under a load surge,
tenant quota enforcement, a live proxy join with rebalancing, and an
injected-failure repair sweep.

``python -m repro chargeback [--duration SECONDS] [--requests N]`` runs a
small multi-tenant replay and prints the per-tenant GB-second chargeback
view: who caused which share of the Lambda bill, with the conservation
check that the per-tenant totals sum to the cluster-wide bill.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import main as runner_main


def _cluster_demo(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cluster-demo",
        description="Exercise the autoscaling multi-tenant cluster subsystem.",
    )
    parser.add_argument(
        "--duration", type=float, default=240.0, metavar="SECONDS",
        help="simulated seconds of load to drive (default: 240)",
    )
    args = parser.parse_args(argv)
    from repro.cluster.demo import run_demo

    run_demo(duration_s=args.duration)
    return 0


def _chargeback(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro chargeback",
        description="Per-tenant GB-second chargeback view over a multi-tenant replay.",
    )
    parser.add_argument(
        "--duration", type=float, default=300.0, metavar="SECONDS",
        help="simulated seconds to replay (default: 300)",
    )
    parser.add_argument(
        "--requests", type=int, default=150, metavar="N",
        help="requests per tenant (default: 150)",
    )
    parser.add_argument(
        "--policy", choices=("reactive", "predictive"), default="reactive",
        help="autoscaler policy to run under (default: reactive)",
    )
    args = parser.parse_args(argv)
    from repro.cluster import AutoscalerConfig
    from repro.experiments import cluster_scale
    from repro.experiments.report import format_table
    from repro.faas.billing import UNATTRIBUTED_TENANT

    result = cluster_scale.run(
        tenants=cluster_scale.default_tenants(args.requests),
        duration_s=args.duration,
        autoscaler_config=AutoscalerConfig(policy=args.policy),
    )
    rows = []
    for tenant_id, row in sorted(result.chargeback.items()):
        label = "(cluster)" if tenant_id == UNATTRIBUTED_TENANT else tenant_id
        rows.append([
            label, row["gb_seconds"], row["cost"], row["bill_share"],
        ])
    print(format_table(
        ["tenant", "gb_seconds", "cost_$", "bill_share"],
        rows,
        title=f"Chargeback ({args.policy} autoscaler, {args.duration:g}s replay)",
    ))
    drift = abs(result.chargeback_total_cost - result.total_cost)
    print(
        f"\nconservation: per-tenant sum ${result.chargeback_total_cost:.6f} vs "
        f"cluster bill ${result.total_cost:.6f} (drift ${drift:.2e})"
    )
    return 0 if drift <= 1e-9 + 1e-9 * result.total_cost else 1


def main(argv: list[str] | None = None) -> int:
    """Dispatch to a cluster subcommand or the experiment runner."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "cluster-demo":
        return _cluster_demo(argv[1:])
    if argv and argv[0] == "chargeback":
        return _chargeback(argv[1:])
    return runner_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())

"""``python -m repro`` — regenerate the paper's tables and figures.

A thin alias for :mod:`repro.experiments.runner`; see that module for the
available flags (``--only``, ``--output-dir``, ``--list``).
"""

from repro.experiments.runner import main

if __name__ == "__main__":
    raise SystemExit(main())

"""``python -m repro`` — experiment runner plus cluster demo.

Without a subcommand this regenerates the paper's tables and figures (a
thin alias for :mod:`repro.experiments.runner`; see that module for the
available flags — ``--only``, ``--output-dir``, ``--list``).

``python -m repro cluster-demo [--duration SECONDS]`` instead runs the
:mod:`repro.cluster` orchestration demo: autoscaling under a load surge,
tenant quota enforcement, a live proxy join with rebalancing, and an
injected-failure repair sweep.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import main as runner_main


def _cluster_demo(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cluster-demo",
        description="Exercise the autoscaling multi-tenant cluster subsystem.",
    )
    parser.add_argument(
        "--duration", type=float, default=240.0, metavar="SECONDS",
        help="simulated seconds of load to drive (default: 240)",
    )
    args = parser.parse_args(argv)
    from repro.cluster.demo import run_demo

    run_demo(duration_s=args.duration)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Dispatch to the cluster demo or the experiment runner."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "cluster-demo":
        return _cluster_demo(argv[1:])
    return runner_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 14 — timeline of InfiniCache's fault-tolerance activities.

For each InfiniCache setting of the production replay the paper plots, per
hour: how many Lambda functions were reclaimed, how many degraded reads were
repaired by erasure-coded recovery, and how many RESETs (full object losses
re-fetched from the backing store) occurred.  The headline numbers: 5,720
RESETs under the all-object workload, 1,085 under large-only (95.4 %
availability), 3,912 without backup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.experiments.production import ProductionResults, ProductionScale, run as run_production
from repro.experiments.report import format_table
from repro.utils.units import HOUR
from repro.workload.replay import ConcurrentReplayReport


@dataclass
class Figure14Result:
    """Per-setting fault-tolerance activity."""

    #: setting -> (total resets, total recoveries, availability)
    totals: dict[str, tuple[int, int, float]] = field(default_factory=dict)
    #: setting -> per-hour RESET counts
    resets_per_hour: dict[str, list[float]] = field(default_factory=dict)
    #: setting -> per-hour recovery counts
    recoveries_per_hour: dict[str, list[float]] = field(default_factory=dict)
    #: per-replay driver fingerprints (golden differential suite)
    fingerprints: dict[str, str] = field(default_factory=dict)


def _availability(report: ConcurrentReplayReport) -> float:
    """Fraction of GETs that did not require a RESET."""
    if report.requests == 0:
        return 1.0
    return 1.0 - report.resets / report.requests


def _per_hour(
    report: ConcurrentReplayReport, duration_hours: float
) -> tuple[list[float], list[float]]:
    # Events are stamped when their outcome becomes known (miss detection /
    # GET completion), so one belonging to a request still in flight at the
    # trace horizon lands just past it; extend the bucketed window to the
    # next whole hour covering the last event so the hourly series always
    # sums to the report's totals.
    end = duration_hours * HOUR
    for series in (report.reset_events, report.recovery_events):
        if series.times and series.times[-1] >= end:
            end = HOUR * (math.floor(series.times[-1] / HOUR) + 1)
    resets = report.reset_events.bucket(HOUR, end_time=end, aggregate="count")
    recoveries = report.recovery_events.bucket(HOUR, end_time=end, aggregate="count")
    return resets, recoveries


def from_production(results: ProductionResults) -> Figure14Result:
    """Project the production replay onto Figure 14's series."""
    figure = Figure14Result()
    settings = {
        "all objects": results.infinicache_all,
        "large only": results.infinicache_large,
        "large no backup": results.infinicache_large_no_backup,
    }
    for label, report in settings.items():
        figure.totals[label] = (report.resets, report.recoveries, _availability(report))
        resets, recoveries = _per_hour(report, results.scale.duration_hours)
        figure.resets_per_hour[label] = resets
        figure.recoveries_per_hour[label] = recoveries
    figure.fingerprints = dict(results.fingerprints)
    return figure


def run(scale: ProductionScale | None = None) -> Figure14Result:
    """Run (or reuse) the production replay and compute Figure 14."""
    return from_production(run_production(scale))


def format_report(result: Figure14Result) -> str:
    """Render the fault-tolerance activity summary."""
    rows = []
    for label, (resets, recoveries, availability) in result.totals.items():
        rows.append([label, resets, recoveries, f"{availability:.2%}"])
    return format_table(
        ["setting", "RESETs", "recoveries", "availability"],
        rows,
        title="Figure 14 — fault-tolerance activities over the replay",
    )

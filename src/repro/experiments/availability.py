"""Section 4.3 — analytical availability of the paper's case-study deployment.

Case study: 400 Lambda nodes, RS(10+2) (so n = 12 chunks, loss needs m = 3),
1-minute warm-up.  The paper derives:

* ``p_3 / p_4 = 18.8`` for ``r = 12`` simultaneous reclaims — justifying the
  ``P(r) ~= p_m`` simplification;
* a per-minute object-loss probability of 0.0039 % - 0.11 % (availability
  99.89 % - 99.9961 %) across the reclaim distributions observed over six
  months;
* a per-hour availability of 93.36 % - 99.76 %.

The reproduction evaluates the same model under a Poisson-fit and a Zipf-fit
reclaim distribution (the two families of Figure 9) and reports the same
quantities, both with the exact formula and the simplified one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.availability import AvailabilityModel
from repro.experiments.report import format_table


@dataclass
class AvailabilityResult:
    """Model outputs for each reclaim-distribution fit."""

    total_nodes: int
    data_shards: int
    parity_shards: int
    approximation_ratio_r12: float = 0.0
    #: fit label -> (per-minute loss, per-minute availability, per-hour availability)
    per_fit: dict[str, tuple[float, float, float]] = field(default_factory=dict)
    #: fit label -> relative error of the simplified (Eq. 3) loss vs the exact one
    simplification_error: dict[str, float] = field(default_factory=dict)


def run(
    total_nodes: int = 400,
    data_shards: int = 10,
    parity_shards: int = 2,
    poisson_mean: float = 0.6,
    zipf_exponent: float = 2.2,
    max_reclaims: int = 40,
) -> AvailabilityResult:
    """Evaluate the availability model for the paper's case study."""
    model = AvailabilityModel(
        total_nodes=total_nodes, data_shards=data_shards, parity_shards=parity_shards
    )
    result = AvailabilityResult(
        total_nodes=total_nodes, data_shards=data_shards, parity_shards=parity_shards
    )
    result.approximation_ratio_r12 = model.approximation_ratio(reclaimed=12)

    fits = {
        "Poisson fit (Oct/Dec/Jan)": AvailabilityModel.poisson_reclaim_distribution(
            poisson_mean, max_reclaims
        ),
        "Zipf fit (Aug/Sep/Nov)": AvailabilityModel.zipf_reclaim_distribution(
            zipf_exponent, max_reclaims
        ),
    }
    for label, distribution in fits.items():
        loss_exact = model.object_loss_probability(distribution, exact=True)
        loss_simple = model.object_loss_probability(distribution, exact=False)
        availability_minute = 1.0 - loss_exact
        availability_hour = model.availability_over(distribution, intervals=60)
        result.per_fit[label] = (loss_exact, availability_minute, availability_hour)
        if loss_exact > 0:
            result.simplification_error[label] = abs(loss_simple - loss_exact) / loss_exact
        else:
            result.simplification_error[label] = 0.0
    return result


def format_report(result: AvailabilityResult) -> str:
    """Render the availability analysis."""
    rows = []
    for label, (loss, avail_min, avail_hour) in result.per_fit.items():
        rows.append([label, f"{loss:.4%}", f"{avail_min:.4%}", f"{avail_hour:.2%}",
                     f"{result.simplification_error[label]:.2%}"])
    table = format_table(
        ["reclaim distribution", "P_loss / minute", "availability / minute",
         "availability / hour", "Eq.3 error"],
        rows,
        title=(
            f"Section 4.3 — availability of {result.total_nodes} nodes, "
            f"RS({result.data_shards}+{result.parity_shards})"
        ),
    )
    return table + f"\n\np_m/p_(m+1) at r=12: {result.approximation_ratio_r12:.1f} (paper: 18.8)"

"""Table 1 — working-set size, throughput, and cache hit ratios.

The paper's table compares, for the all-object and large-object-only
workloads: the working-set size (WSS), the average GET throughput per hour,
and the hit ratio achieved by ElastiCache, InfiniCache, and InfiniCache
without backup.  The shape to preserve: ElastiCache's hit ratio is a few
points above InfiniCache's (RESETs after chunk losses cost InfiniCache some
hits), and disabling backup costs several more points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.production import (
    ProductionResults,
    ProductionScale,
    replay_elasticache_large,
    run as run_production,
)
from repro.experiments.report import format_table
from repro.utils.units import GB


@dataclass
class Table1Result:
    """One row per workload setting."""

    #: workload -> {"wss_gb", "gets_per_hour", "ec_hit", "ic_hit", "ic_no_backup_hit"}
    rows: dict[str, dict[str, float]] = field(default_factory=dict)
    #: per-replay driver fingerprints (golden differential suite)
    fingerprints: dict[str, str] = field(default_factory=dict)


def from_production(results: ProductionResults) -> Table1Result:
    """Project the production replay onto Table 1."""
    table = Table1Result()
    # ElastiCache hit ratio for the large-object workload needs its own replay
    # (the shared run only replays ElastiCache under all objects); it goes
    # through the same open-loop baseline driver as the shared replays.
    elasticache_large = replay_elasticache_large(results)
    table.rows["All objects"] = {
        "wss_gb": results.trace_all.working_set_bytes() / GB,
        "gets_per_hour": results.trace_all.gets_per_hour(),
        "ec_hit": results.elasticache_all.hit_ratio,
        "ic_hit": results.infinicache_all.hit_ratio,
        "ic_no_backup_hit": float("nan"),
    }
    table.rows["Large obj. only"] = {
        "wss_gb": results.trace_large.working_set_bytes() / GB,
        "gets_per_hour": results.trace_large.gets_per_hour(),
        "ec_hit": elasticache_large.hit_ratio,
        "ic_hit": results.infinicache_large.hit_ratio,
        "ic_no_backup_hit": results.infinicache_large_no_backup.hit_ratio,
    }
    table.fingerprints = dict(results.fingerprints)
    table.fingerprints["elasticache.large"] = elasticache_large.fingerprint()
    return table


def run(scale: ProductionScale | None = None) -> Table1Result:
    """Run (or reuse) the production replay and compute Table 1."""
    return from_production(run_production(scale))


def format_report(result: Table1Result) -> str:
    """Render Table 1."""
    rows = []
    for workload, values in result.rows.items():
        rows.append(
            [
                workload,
                values["wss_gb"],
                values["gets_per_hour"],
                f"{values['ec_hit']:.1%}",
                f"{values['ic_hit']:.1%}",
                "-" if values["ic_no_backup_hit"] != values["ic_no_backup_hit"]
                else f"{values['ic_no_backup_hit']:.1%}",
            ]
        )
    return format_table(
        ["workload", "WSS (GB)", "GETs/hour", "EC hit", "IC hit", "IC w/o backup"],
        rows,
        title="Table 1 — working sets, throughput, and hit ratios",
    )

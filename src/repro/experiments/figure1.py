"""Figure 1 — characteristics of the Docker-registry workload.

Four CDFs over the (synthetic) London and Dallas traces:

* (a) object-size CDF — sizes span many orders of magnitude, >20 % above 10 MB;
* (b) byte-footprint CDF — bytes are dominated (>95 %) by objects >10 MB;
* (c) access-count CDF for objects >10 MB — long-tailed popularity;
* (d) reuse-interval CDF for objects >10 MB — 37-46 % of reuses within 1 hour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.report import format_cdf_summary
from repro.utils.stats import cdf_points
from repro.utils.units import HOUR, MB
from repro.workload.docker_registry import DockerRegistryTraceGenerator
from repro.workload.trace import Trace


@dataclass
class Figure1Result:
    """CDF series for one datacentre trace."""

    name: str
    object_size_cdf: list[tuple[float, float]] = field(default_factory=list)
    byte_fraction_cdf: list[tuple[float, float]] = field(default_factory=list)
    access_count_cdf: list[tuple[float, float]] = field(default_factory=list)
    reuse_interval_hours_cdf: list[tuple[float, float]] = field(default_factory=list)
    large_object_fraction: float = 0.0
    large_byte_fraction: float = 0.0
    reuse_within_hour_fraction: float = 0.0


def _byte_fraction_cdf(sizes: list[int]) -> list[tuple[float, float]]:
    """CDF of cumulative byte footprint ordered by object size (Figure 1b)."""
    if not sizes:
        return []
    ordered = np.sort(np.asarray(sizes, dtype=float))
    cumulative = np.cumsum(ordered)
    total = cumulative[-1]
    return [(float(size), float(cum / total)) for size, cum in zip(ordered, cumulative)]


def analyze_trace(trace: Trace, large_threshold: int = 10 * MB) -> Figure1Result:
    """Compute the four Figure 1 CDFs for one trace."""
    sizes = trace.object_sizes()
    access_counts = trace.access_counts(min_size_bytes=large_threshold)
    reuse_intervals = trace.reuse_intervals_s(min_size_bytes=large_threshold)
    reuse_hours = [interval / HOUR for interval in reuse_intervals]
    large_objects = sum(1 for size in sizes if size > large_threshold)
    large_bytes = sum(size for size in sizes if size > large_threshold)
    within_hour = sum(1 for interval in reuse_intervals if interval <= HOUR)
    return Figure1Result(
        name=trace.name,
        object_size_cdf=cdf_points([size / MB for size in sizes]),
        byte_fraction_cdf=_byte_fraction_cdf(sizes),
        access_count_cdf=cdf_points(access_counts) if access_counts else [],
        reuse_interval_hours_cdf=cdf_points(reuse_hours) if reuse_hours else [],
        large_object_fraction=large_objects / len(sizes) if sizes else 0.0,
        large_byte_fraction=large_bytes / sum(sizes) if sizes else 0.0,
        reuse_within_hour_fraction=within_hour / len(reuse_intervals) if reuse_intervals else 0.0,
    )


def run(duration_hours: float = 50.0, datacenters: tuple[str, ...] = ("dallas", "london"),
        ) -> dict[str, Figure1Result]:
    """Generate the traces and compute every Figure 1 series."""
    results: dict[str, Figure1Result] = {}
    for name in datacenters:
        generator = DockerRegistryTraceGenerator(name)
        if duration_hours != generator.config.duration_hours:
            from dataclasses import replace

            generator = DockerRegistryTraceGenerator(
                replace(generator.config, duration_hours=duration_hours)
            )
        trace = generator.generate()
        results[name] = analyze_trace(trace)
    return results


def format_report(results: dict[str, Figure1Result]) -> str:
    """Render the Figure 1 reproduction as text."""
    lines = ["Figure 1 — Docker-registry workload characteristics"]
    for name, result in results.items():
        lines.append(f"\n[{name}]")
        lines.append(
            f"  objects >10MB: {result.large_object_fraction:.1%} of objects, "
            f"{result.large_byte_fraction:.1%} of bytes"
        )
        lines.append(
            f"  large-object reuses within 1 hour: {result.reuse_within_hour_fraction:.1%}"
        )
        lines.append("  " + format_cdf_summary("(a) object size (MB)", result.object_size_cdf))
        lines.append("  " + format_cdf_summary("(c) access count", result.access_count_cdf))
        lines.append(
            "  " + format_cdf_summary("(d) reuse interval (h)", result.reuse_interval_hours_cdf)
        )
    return "\n".join(lines)

"""Figure 13 — monetary cost of InfiniCache vs ElastiCache over the replay.

* (a) total accumulated cost of the four deployments: ElastiCache, InfiniCache
  with all objects, InfiniCache with large objects only, and InfiniCache with
  large objects only and backup disabled.  The paper's headline: $518.40 vs
  $20.52 / $16.51 / $5.41 — a 31-96x improvement.
* (b)-(d) the hourly cost breakdown of the three InfiniCache settings into
  PUT/GET serving, warm-up, and backup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.production import ProductionResults, ProductionScale, run as run_production
from repro.experiments.report import format_table


@dataclass
class Figure13Result:
    """Total costs, improvement factors, and hourly breakdowns."""

    total_costs: dict[str, float] = field(default_factory=dict)
    improvement_over_elasticache: dict[str, float] = field(default_factory=dict)
    #: setting -> {category -> dollars per hour list}
    hourly_breakdown: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    cost_breakdown: dict[str, dict[str, float]] = field(default_factory=dict)
    #: per-replay driver fingerprints (golden differential suite)
    fingerprints: dict[str, str] = field(default_factory=dict)


def from_production(results: ProductionResults) -> Figure13Result:
    """Project the shared production replay onto Figure 13's series."""
    figure = Figure13Result()
    figure.total_costs = {
        "ElastiCache": results.elasticache_all.total_cost,
        "IC (all objects)": results.infinicache_all.total_cost,
        "IC (large only)": results.infinicache_large.total_cost,
        "IC (large no backup)": results.infinicache_large_no_backup.total_cost,
    }
    elasticache_cost = figure.total_costs["ElastiCache"]
    for label, cost in figure.total_costs.items():
        if label == "ElastiCache" or cost <= 0:
            continue
        figure.improvement_over_elasticache[label] = elasticache_cost / cost
    figure.hourly_breakdown = {
        "all objects": results.infinicache_all.hourly_cost,
        "large only": results.infinicache_large.hourly_cost,
        "large no backup": results.infinicache_large_no_backup.hourly_cost,
    }
    figure.cost_breakdown = {
        "all objects": results.infinicache_all.cost_breakdown,
        "large only": results.infinicache_large.cost_breakdown,
        "large no backup": results.infinicache_large_no_backup.cost_breakdown,
    }
    figure.fingerprints = dict(results.fingerprints)
    return figure


def run(scale: ProductionScale | None = None) -> Figure13Result:
    """Run (or reuse) the production replay and compute Figure 13."""
    return from_production(run_production(scale))


def format_report(result: Figure13Result) -> str:
    """Render Figure 13(a) totals and the per-setting cost composition."""
    rows = []
    for label, cost in result.total_costs.items():
        improvement = result.improvement_over_elasticache.get(label)
        rows.append([label, cost, f"{improvement:.1f}x" if improvement else "-"])
    sections = [
        format_table(
            ["deployment", "total cost ($)", "improvement vs ElastiCache"],
            rows,
            title="Figure 13(a) — total cost over the replay",
        )
    ]
    breakdown_rows = []
    for setting, breakdown in result.cost_breakdown.items():
        total = breakdown.get("total", 0.0)
        for category in ("serving", "warmup", "backup"):
            dollars = breakdown.get(category, 0.0)
            share = dollars / total if total else 0.0
            breakdown_rows.append([setting, category, dollars, f"{share:.1%}"])
    sections.append(
        format_table(
            ["setting", "category", "cost ($)", "share"],
            breakdown_rows,
            title="Figure 13(b)-(d) — InfiniCache cost composition",
        )
    )
    return "\n\n".join(sections)

"""Shared experiment harness: seeding, driver construction, fingerprints.

Every figure/table reproduction that drives the cache goes through one
:class:`ExperimentHarness` (constructed by the experiment's ``run()``, or
handed in by the runner).  The harness owns the three things that used to
be re-implemented per experiment:

* **seeding** — :meth:`seed_for` derives stable sub-seeds from the
  experiment name and the sweep coordinates, so two experiments (or two
  sweep points) never share an RNG stream by accident;
* **driver construction** — deployments and the closed-/open-loop drivers
  of :mod:`repro.workload.replay` are built here, so scale parameters and
  driver options stay in one place;
* **report fingerprinting** — every driver run is recorded under a label,
  and :meth:`fingerprint` folds the per-run digests into one
  experiment-level digest.  The golden differential-replay suite
  (``tests/test_golden_figures.py``) pins these values; regenerate with
  ``pytest tests/test_golden_figures.py --update-golden``.
"""

from __future__ import annotations

import hashlib
from typing import ClassVar, Optional

from repro.baselines.s3 import ObjectStore
from repro.cache.config import InfiniCacheConfig
from repro.cache.consistent_hash import stable_hash
from repro.cache.deployment import InfiniCacheDeployment
from repro.faas.reclamation import ReclamationPolicy
from repro.simulation.metrics import MetricRegistry
from repro.workload.replay import (
    ClosedLoopDriver,
    ConcurrentReplayReport,
    OpenLoopBaselineDriver,
    OpenLoopDriver,
)


class ExperimentHarness:
    """Owns seeding, driver construction, and fingerprinting for one run."""

    #: Shared registry new harnesses adopt when none is passed explicitly.
    #: The experiment runner installs one here (and removes it afterwards)
    #: so the harnesses that experiments construct internally still publish
    #: their labelled telemetry to the run's ``--metrics`` export.
    default_metrics: ClassVar[Optional[MetricRegistry]] = None

    def __init__(self, experiment: str, seed: int,
                 metrics: Optional[MetricRegistry] = None):
        self.experiment = experiment
        self.seed = seed
        self._fingerprints: dict[str, str] = {}
        self.metrics = (
            metrics
            if metrics is not None
            else (ExperimentHarness.default_metrics or MetricRegistry())
        )

    # ------------------------------------------------------------------ seeding
    def seed_for(self, *parts: object) -> int:
        """A stable sub-seed for one sweep coordinate.

        Derived from the experiment name, the base seed, and the coordinate
        parts via the same process-independent hash the CH ring uses, so the
        stream is reproducible across platforms and Python versions.
        """
        token = f"{self.experiment}:{self.seed}:" + "/".join(str(part) for part in parts)
        return stable_hash(token) % (2 ** 31)

    # ------------------------------------------------------------------ construction
    def deployment(
        self,
        config: InfiniCacheConfig,
        reclamation_policy: Optional[ReclamationPolicy] = None,
    ) -> InfiniCacheDeployment:
        """Build a deployment for one sweep point."""
        return InfiniCacheDeployment(config, reclamation_policy=reclamation_policy)

    def closed_loop(
        self,
        deployment: InfiniCacheDeployment,
        backing_store: Optional[ObjectStore] = None,
        insert_on_miss: bool = True,
        warm_pool: bool = False,
    ) -> ClosedLoopDriver:
        """A closed-loop (N concurrent clients) driver over ``deployment``."""
        return ClosedLoopDriver(
            deployment, backing_store=backing_store,
            insert_on_miss=insert_on_miss, warm_pool=warm_pool,
        )

    def open_loop(
        self,
        deployment: InfiniCacheDeployment,
        backing_store: Optional[ObjectStore] = None,
        insert_on_miss: bool = True,
        warm_pool: bool = False,
    ) -> OpenLoopDriver:
        """An open-loop (arrival-timestamped) driver over ``deployment``."""
        return OpenLoopDriver(
            deployment, backing_store=backing_store,
            insert_on_miss=insert_on_miss, warm_pool=warm_pool,
        )

    def baseline_open_loop(
        self,
        target,
        backing_store: Optional[ObjectStore] = None,
        insert_on_miss: bool = True,
    ) -> OpenLoopBaselineDriver:
        """An open-loop driver over a baseline system (ElastiCache / S3)."""
        return OpenLoopBaselineDriver(
            target, backing_store=backing_store, insert_on_miss=insert_on_miss
        )

    # ------------------------------------------------------------------ fingerprints
    def record(self, label: str, report: ConcurrentReplayReport) -> ConcurrentReplayReport:
        """Register one driver run's fingerprint under ``label``.

        Also folds the run's headline numbers into :attr:`metrics` as
        labelled instruments (``{experiment=...,run=...}``), which is what
        ``repro --metrics PATH`` exports in Prometheus text format.
        """
        self._fingerprints[label] = report.fingerprint()
        labels = {"experiment": self.experiment, "run": label}
        metrics = self.metrics
        metrics.counter("experiment_requests", labels).increment(report.requests)
        metrics.counter("experiment_hits", labels).increment(report.hits)
        metrics.counter("experiment_misses", labels).increment(report.misses)
        metrics.counter("experiment_resets", labels).increment(report.resets)
        metrics.gauge("experiment_duration_seconds", labels).set(report.duration_s)
        metrics.gauge("experiment_total_cost_dollars", labels).set(report.total_cost)
        metrics.gauge("experiment_hit_ratio", labels).set(report.hit_ratio)
        return report

    @property
    def fingerprints(self) -> dict[str, str]:
        """Per-run fingerprints recorded so far (label -> digest)."""
        return dict(self._fingerprints)

    def fingerprint(self) -> str:
        """One experiment-level digest folding every recorded run in label order."""
        hasher = hashlib.sha256()
        for label in sorted(self._fingerprints):
            hasher.update(f"{label}={self._fingerprints[label]}\n".encode())
        return hasher.hexdigest()

"""Figure 9 — probability distribution of the number of functions reclaimed
per minute, under each warm-up strategy.

This is the histogram view of the Figure 8 data: for every one-minute
reclamation sweep, how many functions were reclaimed?  The paper observes a
Zipf-like distribution on some sampled days and a Poisson-like one on
others; those are exactly the two policy families of
:mod:`repro.faas.reclamation`, so the reproduction re-uses the Figure 8
simulation and bins its per-sweep counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import figure8
from repro.experiments.report import format_table


@dataclass
class Figure9Result:
    """Per-minute reclaim-count distribution per warm-up strategy."""

    #: strategy label -> {reclaims per minute -> probability}
    distributions: dict[str, dict[int, float]] = field(default_factory=dict)

    def probability_of_at_least(self, label: str, threshold: int) -> float:
        """P[more than ``threshold`` reclaims in a minute] for one strategy."""
        distribution = self.distributions.get(label, {})
        return sum(p for count, p in distribution.items() if count >= threshold)


def distribution_from_counts(counts: list[int]) -> dict[int, float]:
    """Normalise a list of per-sweep reclaim counts into a probability mass function."""
    if not counts:
        return {}
    histogram: dict[int, float] = {}
    for count in counts:
        histogram[count] = histogram.get(count, 0.0) + 1.0
    total = float(len(counts))
    return {count: occurrences / total for count, occurrences in sorted(histogram.items())}


def run(
    fleet_size: int = 100,
    hours: int = 24,
    seed: int = 909,
    figure8_result: figure8.Figure8Result | None = None,
) -> Figure9Result:
    """Compute the per-minute reclaim distributions.

    Pass a pre-computed :class:`~repro.experiments.figure8.Figure8Result` to
    avoid re-running the simulation (the benchmark harness does this).
    """
    if figure8_result is None:
        figure8_result = figure8.run(fleet_size=fleet_size, hours=hours, seed=seed)
    result = Figure9Result()
    for label, counts in figure8_result.reclaims_per_sweep.items():
        result.distributions[label] = distribution_from_counts(counts)
    return result


def format_report(result: Figure9Result) -> str:
    """Render the Figure 9 reproduction (key probabilities per strategy)."""
    rows = []
    for label, distribution in result.distributions.items():
        p_zero = distribution.get(0, 0.0)
        p_ge_1 = result.probability_of_at_least(label, 1)
        p_ge_10 = result.probability_of_at_least(label, 10)
        mean = sum(count * p for count, p in distribution.items())
        rows.append([label, p_zero, p_ge_1, p_ge_10, mean])
    return format_table(
        ["strategy", "P[0/min]", "P[>=1/min]", "P[>=10/min]", "mean/min"],
        rows,
        title="Figure 9 — distribution of functions reclaimed per minute",
    )

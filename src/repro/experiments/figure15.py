"""Figure 15 — end-to-end latency CDFs: InfiniCache vs ElastiCache vs S3.

Two panels over the production replay: (a) all objects and (b) objects larger
than 10 MB.  The shapes to preserve: ElastiCache is fastest for small
objects, InfiniCache matches ElastiCache within a small factor for large
objects, and both caches beat S3 by orders of magnitude for the large-object
panel (the paper reports >=100x improvement for ~60 % of large requests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.production import ProductionResults, ProductionScale, run as run_production
from repro.experiments.report import format_cdf_summary
from repro.utils.stats import cdf_points
from repro.utils.units import MB
from repro.workload.replay import ConcurrentReplayReport


@dataclass
class Figure15Result:
    """Latency CDFs per system, for the all-object and large-object panels."""

    #: system -> CDF of latency seconds (all objects)
    all_objects: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    #: system -> CDF of latency seconds (objects > 10 MB)
    large_objects: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    #: fraction of large requests where InfiniCache is at least 100x faster than S3
    large_speedup_100x_fraction: float = 0.0
    #: per-replay driver fingerprints (golden differential suite)
    fingerprints: dict[str, str] = field(default_factory=dict)


def _latencies(report: ConcurrentReplayReport, min_size: int = 0) -> list[float]:
    return [latency for size, latency in report.latencies if size >= min_size]


def from_production(results: ProductionResults) -> Figure15Result:
    """Project the production replay onto Figure 15's CDFs."""
    figure = Figure15Result()
    systems = {
        "InfiniCache": results.infinicache_all,
        "ElastiCache": results.elasticache_all,
        "AWS S3": results.s3_all,
    }
    for label, report in systems.items():
        figure.all_objects[label] = cdf_points(_latencies(report))
        figure.large_objects[label] = cdf_points(_latencies(report, min_size=10 * MB))

    # Speedup estimate for large objects: compare per-request latencies of the
    # cache replay against the S3 model for the same object size.
    store = results.s3_all
    s3_by_size: dict[int, float] = {}
    for size, latency in store.latencies:
        s3_by_size[size] = latency
    speedups = []
    for size, latency in results.infinicache_all.latencies:
        if size < 10 * MB or latency <= 0:
            continue
        s3_latency = s3_by_size.get(size)
        if s3_latency is not None:
            speedups.append(s3_latency / latency)
    if speedups:
        figure.large_speedup_100x_fraction = sum(1 for s in speedups if s >= 100) / len(speedups)
    figure.fingerprints = dict(results.fingerprints)
    return figure


def run(scale: ProductionScale | None = None) -> Figure15Result:
    """Run (or reuse) the production replay and compute Figure 15."""
    return from_production(run_production(scale))


def format_report(result: Figure15Result) -> str:
    """Render latency CDF summaries for both panels."""
    lines = ["Figure 15 — latency CDFs (seconds)"]
    lines.append("\n(a) all objects")
    for label, cdf in result.all_objects.items():
        lines.append("  " + format_cdf_summary(label, cdf))
    lines.append("\n(b) objects > 10 MB")
    for label, cdf in result.large_objects.items():
        lines.append("  " + format_cdf_summary(label, cdf))
    lines.append(
        f"\nlarge requests where InfiniCache beats S3 by >=100x: "
        f"{result.large_speedup_100x_fraction:.1%}"
    )
    return "\n".join(lines)

"""Small helpers for rendering experiment results as text tables."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as a fixed-width text table.

    Numbers are formatted compactly (4 significant digits for floats); all
    other values use ``str``.  Used by every experiment's ``format_report``
    and by the benchmark harness so the regenerated tables read like the
    paper's.
    """

    def render(cell: object) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000 or abs(cell) < 0.001:
                return f"{cell:.3e}"
            return f"{cell:.4g}"
        return str(cell)

    rendered_rows = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_cdf_summary(name: str, points: list[tuple[float, float]],
                       fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)) -> str:
    """Summarise a CDF by reporting the value at a handful of fractions."""
    if not points:
        return f"{name}: (empty)"
    values = []
    for target in fractions:
        value = next((v for v, frac in points if frac >= target), points[-1][0])
        values.append(f"p{int(target * 100)}={value:.4g}")
    return f"{name}: " + ", ".join(values)

"""Figure 8 — number of functions reclaimed over a 24-hour window.

The paper deploys 300-400 functions, re-invokes each every N minutes, and
counts how many are reclaimed over time for six sampled days.  Two regimes
appear: spiky mass reclamation roughly every 6 hours (the 9-minute warm-up
trace) and continuous low-rate reclamation (the 1-minute traces).

The reproduction runs the simulated platform under each regime's reclamation
policy with the corresponding warm-up interval and reports reclaim counts per
hour, which is the same curve the figure plots (binned).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.report import format_table
from repro.faas.platform import FaaSPlatform
from repro.faas.reclamation import (
    PeriodicSpikePolicy,
    PoissonReclamationPolicy,
    ReclamationPolicy,
    ZipfBurstReclamationPolicy,
)
from repro.simulation.events import Simulator
from repro.utils.rng import SeededRNG
from repro.utils.units import HOUR, MINUTE, MIB


@dataclass(frozen=True)
class WarmupStrategy:
    """One curve of Figure 8: a warm-up interval plus a reclamation regime."""

    label: str
    warmup_interval_s: float
    policy_name: str  # "spike", "poisson", or "zipf"

    def build_policy(self, rng: SeededRNG) -> ReclamationPolicy:
        """Instantiate the reclamation policy for this strategy."""
        if self.policy_name == "spike":
            return PeriodicSpikePolicy(rng)
        if self.policy_name == "poisson":
            return PoissonReclamationPolicy(rng, mean_reclaims_per_sweep=0.6)
        if self.policy_name == "zipf":
            return ZipfBurstReclamationPolicy(rng)
        raise ValueError(f"unknown policy name {self.policy_name!r}")


#: The six sampled days of the paper, mapped onto the two policy families.
DEFAULT_STRATEGIES: tuple[WarmupStrategy, ...] = (
    WarmupStrategy("9 min (08/21/19)", 9 * MINUTE, "spike"),
    WarmupStrategy("1 min (09/15/19)", 1 * MINUTE, "zipf"),
    WarmupStrategy("1 min (10/20/19)", 1 * MINUTE, "poisson"),
    WarmupStrategy("1 min (11/06/19)", 1 * MINUTE, "zipf"),
    WarmupStrategy("1 min (12/26/19)", 1 * MINUTE, "poisson"),
    WarmupStrategy("1 min (01/09/20)", 1 * MINUTE, "poisson"),
)


@dataclass
class Figure8Result:
    """Hourly reclaim counts per warm-up strategy."""

    hours: int
    fleet_size: int
    #: strategy label -> reclaim count per hour (len == hours)
    reclaims_per_hour: dict[str, list[int]] = field(default_factory=dict)
    total_reclaims: dict[str, int] = field(default_factory=dict)
    #: strategy label -> per-sweep (per-minute) reclaim counts, for Figure 9.
    reclaims_per_sweep: dict[str, list[int]] = field(default_factory=dict)


def _run_strategy(
    strategy: WarmupStrategy, fleet_size: int, hours: int, seed: int
) -> tuple[list[int], list[int]]:
    """Simulate one fleet for ``hours`` and return per-hour and per-sweep reclaims."""
    simulator = Simulator()
    rng = SeededRNG(seed)
    platform = FaaSPlatform(
        simulator=simulator,
        reclamation_policy=strategy.build_policy(rng.child("policy")),
    )
    for index in range(fleet_size):
        platform.register_function(f"probe-{index:04d}", 256 * MIB)

    def warm_all() -> None:
        for name in platform.registered_functions():
            invocation = platform.invoke(name)
            platform.complete_invocation(invocation.instance, 0.001, category="warmup")
        simulator.schedule(strategy.warmup_interval_s, warm_all, label="fig8.warmup")

    warm_all()
    platform.start_reclamation_sweeps()
    simulator.run_until(hours * HOUR)

    events = platform.metrics.series("faas.reclaim_events")
    per_hour = [int(count) for count in events.bucket(HOUR, end_time=hours * HOUR, aggregate="count")]
    sweeps = platform.metrics.series("faas.reclaims_per_sweep")
    per_sweep = [int(value) for value in sweeps.values]
    return per_hour, per_sweep


def run(
    fleet_size: int = 100,
    hours: int = 24,
    strategies: tuple[WarmupStrategy, ...] = DEFAULT_STRATEGIES,
    seed: int = 808,
) -> Figure8Result:
    """Run every warm-up strategy and collect reclaim timelines.

    The paper's fleet is 300-400 functions; the default here is 100 to keep
    the benchmark fast — pass ``fleet_size=400`` for the full-scale run.
    """
    result = Figure8Result(hours=hours, fleet_size=fleet_size)
    for index, strategy in enumerate(strategies):
        per_hour, per_sweep = _run_strategy(strategy, fleet_size, hours, seed + index)
        result.reclaims_per_hour[strategy.label] = per_hour
        result.total_reclaims[strategy.label] = sum(per_hour)
        result.reclaims_per_sweep[strategy.label] = per_sweep
    return result


def format_report(result: Figure8Result) -> str:
    """Render the Figure 8 reproduction (totals and peak hours)."""
    rows = []
    for label, per_hour in result.reclaims_per_hour.items():
        peak_hour = max(range(len(per_hour)), key=lambda h: per_hour[h]) if per_hour else 0
        rows.append(
            [label, result.total_reclaims[label], max(per_hour) if per_hour else 0, peak_hour]
        )
    return format_table(
        ["strategy", "total reclaims", "peak reclaims/hour", "peak hour"],
        rows,
        title=(
            f"Figure 8 — functions reclaimed over {result.hours} h "
            f"(fleet of {result.fleet_size})"
        ),
    )

"""Simulator performance harness: events/sec as a first-class metric.

The ROADMAP's north star is a simulator that handles fleet-scale workloads
— thousands of concurrent closed-loop clients — which makes the *simulator's
own* throughput (dispatched events per wall-clock second) a quantity worth
measuring and guarding, exactly as caching simulators such as Icarus
benchmark their event cores.  This module is that measurement layer:

* **micro benchmarks** exercise one subsystem in isolation — the event
  queue's push/cancel/pop cycle (tombstone compaction) and the flow
  network's join/leave arbitration churn;
* **macro benchmarks** run the closed-loop replay driver end to end at
  fleet sizes (8 → 1024 clients) and report wall-clock, events/sec, and
  the peak number of simultaneously active flows;
* the **arbiter comparison** runs the same closed-loop scenario under the
  incremental bottleneck-group arbiter, the global-recompute
  :class:`~repro.network.flows.ReferenceFlowNetwork`, and (when numpy is
  installed) the vectorized batch-settlement arbiter, asserting all of
  them produce byte-identical replay fingerprints and reporting speedups.

``python -m repro perf`` runs the suite and writes ``BENCH_perf.json``;
CI runs it with ``--quick`` and fails the build on fingerprint drift
(never on timing noise).  See ``docs/performance.md`` for how to read the
output.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field

from repro.cache.config import InfiniCacheConfig, StragglerModel
from repro.cache.deployment import InfiniCacheDeployment
from repro.network.flows import HAVE_NUMPY, resolve_arbiter
from repro.network.topology import NetworkFabric
from repro.sim.loop import EventLoop
from repro.utils.units import MB, MIB
from repro.workload.replay import ClosedLoopDriver

#: The fleet sizes the full suite sweeps (the quick CI variant trims this).
DEFAULT_CLIENT_COUNTS = (8, 64, 256, 1024, 4096)

#: Fleet size used for the incremental-vs-reference arbiter comparison.
DEFAULT_COMPARE_CLIENTS = 256


@dataclass
class PerfSample:
    """One benchmark measurement: wall-clock, event count, and context."""

    name: str
    wall_s: float
    events: int
    extra: dict[str, object] = field(default_factory=dict)

    @property
    def events_per_s(self) -> float:
        """Dispatched events per wall-clock second (the headline metric)."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation for ``BENCH_perf.json``."""
        payload: dict[str, object] = {
            "name": self.name,
            "wall_s": self.wall_s,
            "events": self.events,
            "events_per_s": self.events_per_s,
        }
        payload.update(self.extra)
        return payload


# ---------------------------------------------------------------------- micro
def micro_event_queue(events: int = 50_000, cancel_every: int = 2) -> PerfSample:
    """Push ``events`` timers, cancel every ``cancel_every``-th, drain the rest.

    Exercises the O(1) live counter and the tombstone compaction path: the
    cancelled half must neither linger in the heap nor slow the pops.
    """
    loop = EventLoop()
    start = time.perf_counter()
    scheduled = [
        loop.schedule((index % 97) * 0.001 + 0.001, lambda: None, label="perf.noop")
        for index in range(events)
    ]
    for index in range(0, events, cancel_every):
        scheduled[index].cancel()
    assert len(loop.queue) == events - len(range(0, events, cancel_every))
    loop.run_all(max_events=events + 1)
    wall = time.perf_counter() - start
    return PerfSample(
        name="micro.event_queue",
        wall_s=wall,
        events=loop.events_processed,
        extra={"scheduled": events, "cancelled": len(range(0, events, cancel_every))},
    )


def micro_flow_churn(
    flows: int = 2_000,
    hosts: int = 32,
    proxies: int = 8,
    arbiter: str = "incremental",
    tag: str = "",
) -> PerfSample:
    """Raw arbitration churn: staggered transfers joining and leaving.

    Drives the flow network directly (no cache on top): ``flows`` transfers
    start at staggered times across ``hosts`` NICs and ``proxies`` uplinks,
    so every start and finish is a rate transition on a populated network.
    ``tag`` distinguishes non-default geometries in the sample name (the
    suite uses it for the dense large-group variant).
    """
    loop = EventLoop()
    fabric = NetworkFabric(proxy_uplink_bps=2_000 * MB)
    network = resolve_arbiter(arbiter)(loop, fabric)

    start = time.perf_counter()
    for index in range(flows):
        loop.schedule_at(
            index * 0.002,
            lambda i=index: network.transfer(
                size_bytes=4 * MB,
                function_bandwidth_bps=80 * MB,
                host_id=f"h{i % hosts}",
                host_capacity_bps=200 * MB,
                proxy_id=f"p{i % proxies}",
                label=f"churn-{i}",
            ),
            label="perf.flow_start",
        )
    loop.run_all()
    wall = time.perf_counter() - start
    assert network.completed_flows == flows
    suffix = f"{arbiter},{tag}" if tag else arbiter
    return PerfSample(
        name=f"micro.flow_churn[{suffix}]",
        wall_s=wall,
        events=loop.events_processed,
        extra={
            "arbiter": arbiter,
            "flows": flows,
            "hosts": hosts,
            "proxies": proxies,
            "peak_active_flows": network.max_concurrent(),
        },
    )


# ---------------------------------------------------------------------- macro
def _fleet_config(clients: int, arbiter: str, seed: int) -> InfiniCacheConfig:
    """A deployment sized for ``clients`` concurrent closed-loop clients.

    Proxies scale with the fleet (as the cluster autoscaler would provision
    them) so the scenario stays in the regime the paper evaluates — client
    count grows, per-proxy load stays bounded.  1536 MiB functions get a VM
    host to themselves (paper §2.2), so NIC contention is per-node and the
    proxy uplinks stay unsaturated: each flow transition touches a handful
    of flows, not the fleet.
    """
    num_proxies = max(2, min(256, clients // 4))
    return InfiniCacheConfig(
        num_proxies=num_proxies,
        lambdas_per_proxy=8,
        lambda_memory_bytes=1536 * MIB,
        data_shards=4,
        parity_shards=2,
        backup_enabled=False,
        straggler=StragglerModel(probability=0.05),
        flow_arbiter=arbiter,
        seed=seed,
    )


def macro_closed_loop(
    clients: int,
    requests_per_client: int = 6,
    objects_per_client: int = 2,
    object_size: int = 2 * MB,
    arbiter: str = "incremental",
    seed: int = 2020,
) -> PerfSample:
    """One closed-loop replay at fleet size ``clients``, instrumented.

    Returns wall-clock, total dispatched events, events/sec, the peak
    number of simultaneously active flows, and the replay fingerprint
    (which the arbiter comparison checks for drift).  Garbage left by
    earlier scenarios is collected before the clock starts so successive
    measurements do not bleed into each other.
    """
    deployment = InfiniCacheDeployment(_fleet_config(clients, arbiter, seed))
    seeder = deployment.new_client("perf-seeder")
    for index in range(clients):
        for obj in range(objects_per_client):
            seeder.put_sized(f"perf/{index}/obj-{obj}", object_size)
    plans = [
        [
            (f"perf/{index}/obj-{round_index % objects_per_client}", object_size)
            for round_index in range(requests_per_client)
        ]
        for index in range(clients)
    ]
    events_before = deployment.simulator.events_processed
    gc.collect()
    start = time.perf_counter()
    report = ClosedLoopDriver(deployment).run(plans)
    wall = time.perf_counter() - start
    events = deployment.simulator.events_processed - events_before
    return PerfSample(
        name=f"macro.closed_loop[{clients}]",
        wall_s=wall,
        events=events,
        extra={
            "arbiter": arbiter,
            "clients": clients,
            "requests": report.requests,
            "hit_ratio": report.hit_ratio,
            "peak_active_flows": report.peak_active_flows,
            "flow_intervals": len(report.flow_intervals),
            "sim_duration_s": report.duration_s,
            "fingerprint": report.fingerprint(),
        },
    )


def profile_closed_loop(
    clients: int,
    requests_per_client: int = 6,
    objects_per_client: int = 2,
    object_size: int = 2 * MB,
    seed: int = 2020,
) -> dict[str, object]:
    """One closed-loop replay with event-loop profiling on: where time goes.

    Produces the ``profile`` section of ``BENCH_perf.json``: wall-clock
    split into the loop's own phases — heap push/pop, coroutine steps,
    flow-arbiter settle/re-aim transitions, and total callback dispatch —
    plus per-label scheduled/dispatched/cancelled counts and the heaviest
    callback labels by self-time.  The phases are *attributions*, not a
    disjoint partition: coroutine steps and arbiter transitions mostly run
    inside dispatched callbacks (so they largely nest within
    ``dispatch_s``), but the first step of a freshly spawned process runs
    at spawn time, outside any callback.  ``other_s`` is the wall-clock
    not spent in callback dispatch or heap operations (driver and loop
    bookkeeping, including those spawn-time steps).
    """
    deployment = InfiniCacheDeployment(_fleet_config(clients, "incremental", seed))
    seeder = deployment.new_client("perf-profiler")
    for index in range(clients):
        for obj in range(objects_per_client):
            seeder.put_sized(f"perf/{index}/obj-{obj}", object_size)
    plans = [
        [
            (f"perf/{index}/obj-{round_index % objects_per_client}", object_size)
            for round_index in range(requests_per_client)
        ]
        for index in range(clients)
    ]
    deployment.simulator.enable_profiling()
    gc.collect()
    start = time.perf_counter()
    ClosedLoopDriver(deployment).run(plans)
    wall = time.perf_counter() - start
    profile = deployment.simulator.profile
    snapshot = profile.snapshot()
    phases = dict(snapshot["phases"])
    # coroutine_steps_s and arbiter_s nest inside dispatch_s, so only the
    # top-level meters count toward "accounted" wall-clock.
    phases["other_s"] = max(wall - phases["dispatch_s"] - phases["heap_ops_s"], 0.0)
    return {
        "schema": "repro.perf.profile/1",
        "clients": clients,
        "wall_s": wall,
        "events": profile.events_dispatched,
        "phases": phases,
        "counts": snapshot["counts"],
        "top_labels": profile.top_labels(limit=10),
    }


#: Keys the ``profile`` section's ``phases`` mapping must carry.
PROFILE_PHASE_KEYS = (
    "dispatch_s", "heap_ops_s", "coroutine_steps_s", "arbiter_s", "other_s",
)

#: Keys the ``profile`` section's ``counts`` mapping must carry.
PROFILE_COUNT_KEYS = (
    "scheduled", "dispatched", "cancelled",
    "coroutine_steps", "arbiter_transitions",
)


def validate_profile(section: object) -> list[str]:
    """Schema-validate a ``profile`` section; returns human-readable errors.

    The ``--quick`` CI step runs this over the freshly written
    ``BENCH_perf.json`` so a refactor of the loop instrumentation cannot
    silently drop a phase or count from the payload.
    """
    errors: list[str] = []
    if not isinstance(section, dict):
        return [f"profile section must be an object, got {type(section).__name__}"]
    if section.get("schema") != "repro.perf.profile/1":
        errors.append(f"unexpected profile schema {section.get('schema')!r}")
    for key in ("clients", "events"):
        if not isinstance(section.get(key), int) or section.get(key, -1) < 0:
            errors.append(f"profile.{key} must be a non-negative integer")
    if not isinstance(section.get("wall_s"), (int, float)) or section.get("wall_s", -1) < 0:
        errors.append("profile.wall_s must be a non-negative number")
    phases = section.get("phases")
    if not isinstance(phases, dict):
        errors.append("profile.phases must be an object")
    else:
        for key in PROFILE_PHASE_KEYS:
            value = phases.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"profile.phases.{key} must be a non-negative number")
    counts = section.get("counts")
    if not isinstance(counts, dict):
        errors.append("profile.counts must be an object")
    else:
        for key in PROFILE_COUNT_KEYS:
            value = counts.get(key)
            if not isinstance(value, int) or value < 0:
                errors.append(f"profile.counts.{key} must be a non-negative integer")
    top_labels = section.get("top_labels")
    if not isinstance(top_labels, list):
        errors.append("profile.top_labels must be a list")
    else:
        for entry in top_labels:
            if (
                not isinstance(entry, dict)
                or not isinstance(entry.get("label"), str)
                or not isinstance(entry.get("self_s"), (int, float))
                or not isinstance(entry.get("dispatched"), int)
            ):
                errors.append(f"malformed top_labels entry: {entry!r}")
                break
    return errors


def compare_arbiters(
    clients: int = DEFAULT_COMPARE_CLIENTS, **macro_kwargs: object
) -> dict[str, object]:
    """Same scenario, both arbiters: speedup plus a fingerprint-drift check.

    The reference arbiter re-examines *every* active flow on each
    transition; the incremental arbiter touches only the two affected
    bottleneck groups.  Both must replay the workload byte-for-byte
    identically — ``fingerprints_identical`` is what CI gates on, because
    it is immune to timing noise.
    """
    incremental = macro_closed_loop(clients, arbiter="incremental", **macro_kwargs)
    reference = macro_closed_loop(clients, arbiter="reference", **macro_kwargs)
    identical = incremental.extra["fingerprint"] == reference.extra["fingerprint"]
    payload = {
        "clients": clients,
        "incremental_wall_s": incremental.wall_s,
        "reference_wall_s": reference.wall_s,
        "speedup": reference.wall_s / incremental.wall_s if incremental.wall_s > 0 else 0.0,
        "incremental_events_per_s": incremental.events_per_s,
        "reference_events_per_s": reference.events_per_s,
        "fingerprint": incremental.extra["fingerprint"],
    }
    if HAVE_NUMPY:
        vectorized = macro_closed_loop(clients, arbiter="vectorized", **macro_kwargs)
        identical = identical and (
            vectorized.extra["fingerprint"] == incremental.extra["fingerprint"]
        )
        payload["vectorized_wall_s"] = vectorized.wall_s
        payload["vectorized_events_per_s"] = vectorized.events_per_s
    payload["fingerprints_identical"] = identical
    return payload


# ---------------------------------------------------------------------- suite
#: Quick-mode rungs: 256 stays in so the CI throughput guard has a committed
#: ``events_per_s`` to compare against at a meaningful fleet size.
QUICK_CLIENT_COUNTS = (8, 64, 256)


def check_regression(
    payload: dict[str, object],
    baseline: dict[str, object],
    threshold: float = 0.30,
    min_clients: int = 256,
) -> list[str]:
    """Compare a fresh suite payload against a committed baseline.

    Returns one error string per macro rung present in *both* payloads whose
    fresh ``events_per_s`` fell more than ``threshold`` below the committed
    value.  Rungs only one side ran (quick mode trims the sweep) are
    skipped, as are rungs below ``min_clients`` — the small fleets finish
    in well under a second, so their events/s swings ±30 % run to run on
    interpreter warm-up alone and would make the gate flake.  Everything
    other than macro throughput is likewise ignored: micro timings and
    wall-clocks are too noisy to gate on.
    """
    errors: list[str] = []
    committed = {
        sample["clients"]: sample
        for sample in baseline.get("macro", ())
        if isinstance(sample, dict) and "clients" in sample
    }
    for sample in payload.get("macro", ()):
        if (sample.get("clients") or 0) < min_clients:
            continue
        reference = committed.get(sample.get("clients"))
        if reference is None:
            continue
        committed_rate = reference.get("events_per_s", 0.0)
        fresh_rate = sample.get("events_per_s", 0.0)
        if committed_rate > 0 and fresh_rate < (1.0 - threshold) * committed_rate:
            errors.append(
                f"macro.closed_loop[{sample['clients']}] throughput regressed: "
                f"{fresh_rate:.0f} events/s is more than {threshold:.0%} below "
                f"the committed {committed_rate:.0f} events/s"
            )
    return errors


def run_suite(
    client_counts: tuple[int, ...] | None = None,
    compare_clients: int | None = None,
    quick: bool = False,
    skip_compare: bool = False,
) -> dict[str, object]:
    """Run the full perf suite; returns the ``BENCH_perf.json`` payload.

    Args:
        client_counts: fleet sizes for the closed-loop macro sweep; when
            omitted, ``quick`` picks between the default and the trimmed
            CI sweep.  An explicit value is always honored as given.
        compare_clients: fleet size for the incremental-vs-reference
            comparison; when omitted, 256 (or the largest swept fleet
            under ``quick``).  An explicit value is always honored.
        quick: CI smoke mode — defaults to small fleets and compares at
            the largest of them, keeping the step seconds-fast.
        skip_compare: omit the arbiter comparison entirely.
    """
    if client_counts is None:
        client_counts = QUICK_CLIENT_COUNTS if quick else DEFAULT_CLIENT_COUNTS
    if compare_clients is None:
        compare_clients = max(client_counts) if quick else DEFAULT_COMPARE_CLIENTS
    micro = [
        micro_event_queue(events=10_000 if quick else 50_000),
        micro_flow_churn(flows=500 if quick else 2_000, arbiter="incremental"),
        micro_flow_churn(flows=500 if quick else 2_000, arbiter="reference"),
    ]
    if HAVE_NUMPY:
        # The default churn geometry (32 hosts / 8 proxies) keeps bottleneck
        # groups small, where the scalar arbiter's lower constant factor
        # wins; the batched-settlement payoff appears once a group holds
        # thousands of flows.  Record both regimes under both arbiters so
        # the crossover stays a measured fact rather than folklore.
        dense = dict(flows=300 if quick else 1_000, hosts=2, proxies=1)
        micro.append(
            micro_flow_churn(flows=500 if quick else 2_000, arbiter="vectorized")
        )
        micro.append(micro_flow_churn(arbiter="incremental", tag="dense", **dense))
        micro.append(micro_flow_churn(arbiter="vectorized", tag="dense", **dense))
    # The comparison runs before the big sweeps so its timing is not skewed
    # by heap growth from the larger fleets; the micro pass above doubles as
    # cache warm-up (hash-ring points, shared RS matrices).
    comparison = None if skip_compare else compare_arbiters(compare_clients)
    macro = [macro_closed_loop(clients) for clients in client_counts]
    profile = profile_closed_loop(max(client_counts))
    payload: dict[str, object] = {
        "schema": "repro.perf/1",
        "quick": quick,
        "unix_time": time.time(),
        "micro": [sample.as_dict() for sample in micro],
        "macro": [sample.as_dict() for sample in macro],
        "profile": profile,
    }
    if comparison is not None:
        payload["arbiter_comparison"] = comparison
    return payload


def format_report(payload: dict[str, object]) -> str:
    """Human-readable rendering of a ``run_suite`` payload."""
    from repro.experiments.report import format_table

    micro_rows = [
        [sample["name"], sample["wall_s"], sample["events"], sample["events_per_s"]]
        for sample in payload["micro"]
    ]
    macro_rows = [
        [
            sample["clients"],
            sample["wall_s"],
            sample["events"],
            sample["events_per_s"],
            sample["peak_active_flows"],
            sample["sim_duration_s"],
        ]
        for sample in payload["macro"]
    ]
    lines = [
        format_table(
            ["benchmark", "wall_s", "events", "events/s"],
            micro_rows,
            title="Micro benchmarks (event queue + flow arbitration)",
        ),
        "",
        format_table(
            ["clients", "wall_s", "events", "events/s", "peak_flows", "sim_s"],
            macro_rows,
            title="Closed-loop macro sweep (incremental arbiter)",
        ),
    ]
    profile = payload.get("profile")
    if profile:
        phases = profile["phases"]
        phase_rows = [
            [key.removesuffix("_s"), phases[key], phases[key] / profile["wall_s"]
             if profile["wall_s"] > 0 else 0.0]
            for key in PROFILE_PHASE_KEYS
        ]
        lines.append("")
        lines.append(
            format_table(
                ["phase", "wall_s", "share"],
                phase_rows,
                title=(
                    f"Event-loop profile at {profile['clients']} clients "
                    "(phases are attributions, not a disjoint partition)"
                ),
            )
        )
        top = profile.get("top_labels") or []
        if top:
            lines.append(
                format_table(
                    ["label", "dispatched", "self_s"],
                    [[row["label"], row["dispatched"], row["self_s"]] for row in top[:5]],
                    title="Hottest callback labels",
                )
            )
    comparison = payload.get("arbiter_comparison")
    if comparison:
        lines.append("")
        vectorized = (
            f" (vectorized {comparison['vectorized_wall_s']:.2f}s)"
            if "vectorized_wall_s" in comparison
            else ""
        )
        lines.append(
            f"arbiter comparison at {comparison['clients']} clients: "
            f"incremental {comparison['incremental_wall_s']:.2f}s vs "
            f"reference {comparison['reference_wall_s']:.2f}s "
            f"-> {comparison['speedup']:.1f}x speedup{vectorized}; "
            "fingerprints "
            + ("identical" if comparison["fingerprints_identical"] else "DIVERGED")
        )
    return "\n".join(lines)

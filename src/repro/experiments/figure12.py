"""Figure 12 — aggregate throughput as the number of clients scales.

The paper deploys 5 proxies, each managing 50 Lambda nodes of 1024 MB, and
scales the number of concurrent clients from 1 to 10; every client talks to
all proxies through consistent hashing.  Throughput (GB/s) grows roughly
linearly with the client count because each added client brings its own
request stream and the Lambda pool has spare parallel bandwidth.

The reproduction measures, for each client count, the aggregate bytes served
per second of simulated wall-clock time when every client issues a fixed
number of large GETs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import InfiniCacheConfig, StragglerModel
from repro.cache.deployment import InfiniCacheDeployment
from repro.experiments.report import format_table
from repro.utils.units import GB, MB, MIB


@dataclass
class Figure12Result:
    """Throughput per client count."""

    object_size: int
    requests_per_client: int
    #: client count -> aggregate throughput (bytes/second)
    throughput_bps: dict[int, float] = field(default_factory=dict)

    def rows(self) -> list[list[object]]:
        """Table rows: clients, throughput GB/s, speedup over 1 client."""
        baseline = self.throughput_bps.get(1)
        rows = []
        for clients in sorted(self.throughput_bps):
            throughput = self.throughput_bps[clients]
            speedup = throughput / baseline if baseline else float("nan")
            rows.append([clients, throughput / GB, speedup])
        return rows


def run(
    client_counts: tuple[int, ...] = (1, 2, 4, 6, 8, 10),
    num_proxies: int = 5,
    lambdas_per_proxy: int = 50,
    object_size: int = 100 * MB,
    objects_per_client: int = 4,
    requests_per_client: int = 20,
    seed: int = 1212,
) -> Figure12Result:
    """Measure aggregate throughput for each client count."""
    result = Figure12Result(object_size=object_size, requests_per_client=requests_per_client)
    for clients in client_counts:
        config = InfiniCacheConfig(
            num_proxies=num_proxies,
            lambdas_per_proxy=lambdas_per_proxy,
            lambda_memory_bytes=1024 * MIB,
            data_shards=10,
            parity_shards=2,
            backup_enabled=False,
            straggler=StragglerModel(probability=0.02),
            seed=seed + clients,
        )
        deployment = InfiniCacheDeployment(config)
        deployment.start()
        client_handles = [deployment.new_client(f"fig12-client-{i}") for i in range(clients)]
        # Each client owns its own objects so requests spread over the proxies.
        for index, client in enumerate(client_handles):
            for obj in range(objects_per_client):
                client.put_sized(f"fig12/{clients}/{index}/obj-{obj}", object_size)

        total_bytes = 0
        busy_seconds = 0.0
        for round_index in range(requests_per_client):
            deployment.run_until(deployment.simulator.now + 1.0)
            round_latencies = []
            for index, client in enumerate(client_handles):
                key = f"fig12/{clients}/{index}/obj-{round_index % objects_per_client}"
                get = client.get(key)
                if get.hit:
                    total_bytes += get.size
                    round_latencies.append(get.latency_s)
            if round_latencies:
                # Clients issue their GETs concurrently, so a round costs the
                # slowest client's latency, not the sum.
                busy_seconds += max(round_latencies)
        deployment.stop()
        if busy_seconds > 0:
            result.throughput_bps[clients] = total_bytes / busy_seconds
    return result


def format_report(result: Figure12Result) -> str:
    """Render the Figure 12 reproduction as a table."""
    return format_table(
        ["clients", "throughput (GB/s)", "speedup vs 1 client"],
        result.rows(),
        title="Figure 12 — throughput scalability with client count",
    )

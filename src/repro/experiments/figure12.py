"""Figure 12 — aggregate throughput as the number of clients scales.

The paper deploys 5 proxies, each managing 50 Lambda nodes of 1024 MB, and
scales the number of concurrent clients from 1 to 10; every client talks to
all proxies through consistent hashing.  Throughput (GB/s) grows roughly
linearly with the client count because each added client brings its own
request stream and the Lambda pool has spare parallel bandwidth.

The reproduction drives each client count with the **closed-loop
event-driven driver** (:class:`repro.workload.replay.ClosedLoopDriver`):
every client is a coroutine on the shared event loop issuing its next GET
the moment the previous one completes, so the clients' chunk transfers
genuinely overlap and share bandwidth through the flow-level network model.
Aggregate throughput is the object bytes delivered per second of simulated
wall-clock time, and keeps rising with the client count until the proxy
uplinks saturate — which the sequential facade (one request at a time on a
scalar clock) cannot reproduce at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import InfiniCacheConfig, StragglerModel
from repro.experiments.harness import ExperimentHarness
from repro.experiments.report import format_table
from repro.utils.units import GB, MB, MIB
from repro.workload.replay import ConcurrentReplayReport


@dataclass
class Figure12Result:
    """Throughput per client count."""

    object_size: int
    requests_per_client: int
    #: client count -> aggregate throughput (bytes/second)
    throughput_bps: dict[int, float] = field(default_factory=dict)
    #: client count -> the driver's full report (request + flow intervals).
    reports: dict[int, ConcurrentReplayReport] = field(default_factory=dict)
    #: per-client-count driver fingerprints (golden differential suite)
    fingerprints: dict[str, str] = field(default_factory=dict)

    def rows(self) -> list[list[object]]:
        """Table rows: clients, throughput GB/s, speedup over 1 client."""
        baseline = self.throughput_bps.get(1)
        rows = []
        for clients in sorted(self.throughput_bps):
            throughput = self.throughput_bps[clients]
            speedup = throughput / baseline if baseline else float("nan")
            rows.append([clients, throughput / GB, speedup])
        return rows


def run(
    client_counts: tuple[int, ...] = (1, 2, 4, 6, 8, 10),
    num_proxies: int = 5,
    lambdas_per_proxy: int = 50,
    object_size: int = 100 * MB,
    objects_per_client: int = 4,
    requests_per_client: int = 20,
    seed: int = 1212,
    straggler_probability: float = 0.02,
    harness: ExperimentHarness | None = None,
) -> Figure12Result:
    """Measure aggregate closed-loop throughput for each client count.

    Per client count a fresh deployment is seeded with every client's
    objects (sized PUTs through the facade; the clock does not move), then
    the closed-loop driver runs the GET phase with truly concurrent clients.
    Stragglers are enabled by default — the first-d abandonment hides them,
    as in the paper.
    """
    harness = harness or ExperimentHarness("figure12", seed)
    result = Figure12Result(object_size=object_size, requests_per_client=requests_per_client)
    for clients in client_counts:
        config = InfiniCacheConfig(
            num_proxies=num_proxies,
            lambdas_per_proxy=lambdas_per_proxy,
            lambda_memory_bytes=1024 * MIB,
            data_shards=10,
            parity_shards=2,
            backup_enabled=False,
            straggler=StragglerModel(probability=straggler_probability),
            seed=harness.seed_for("clients", clients),
        )
        deployment = harness.deployment(config)
        # Each client owns its own objects so requests spread over the proxies.
        seeder = deployment.new_client("fig12-seeder")
        for index in range(clients):
            for obj in range(objects_per_client):
                seeder.put_sized(f"fig12/{clients}/{index}/obj-{obj}", object_size)
        plans = [
            [
                (
                    f"fig12/{clients}/{index}/obj-{round_index % objects_per_client}",
                    object_size,
                )
                for round_index in range(requests_per_client)
            ]
            for index in range(clients)
        ]
        report = harness.record(
            f"clients.{clients}", harness.closed_loop(deployment).run(plans)
        )
        result.reports[clients] = report
        result.throughput_bps[clients] = report.aggregate_throughput_bps
    result.fingerprints = harness.fingerprints
    return result


def format_report(result: Figure12Result) -> str:
    """Render the Figure 12 reproduction as a table."""
    table = format_table(
        ["clients", "throughput (GB/s)", "speedup vs 1 client"],
        result.rows(),
        title="Figure 12 — throughput scalability with client count",
    )
    lines = [table]
    if result.reports:
        overlap = {
            clients: report.max_concurrent_flows()
            for clients, report in sorted(result.reports.items())
        }
        lines.append("")
        lines.append(
            "peak concurrent chunk flows: "
            + ", ".join(f"{c} clients={n}" for c, n in overlap.items())
        )
    return "\n".join(lines)

"""Figure 17 — hourly cost vs access rate: when does InfiniCache stop winning?

Using the Section 4.3 cost model with the Section 5.2 configuration (400
Lambdas of 1.5 GB, 1-minute warm-up, 5-minute backup), the paper sweeps the
access rate from 0 to 320 K requests/hour and finds the InfiniCache cost
curve crosses the flat ElastiCache (cache.r5.24xlarge) line at roughly 312 K
requests/hour (~86 requests/second) — the reason small-object-intensive
workloads should stay on a conventional IMOC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cost_model import CostModel, CostModelParams
from repro.experiments.report import format_table
from repro.utils.units import MIB


@dataclass
class Figure17Result:
    """Hourly costs for both systems over the access-rate sweep."""

    access_rates: list[float] = field(default_factory=list)
    infinicache_hourly: list[float] = field(default_factory=list)
    elasticache_hourly: float = 0.0
    crossover_rate: float = 0.0


def run(
    max_rate: int = 320_000,
    steps: int = 17,
    total_nodes: int = 400,
    lambda_memory_mib: int = 1536,
    warmup_interval_min: float = 1.0,
    backup_interval_min: float = 5.0,
    backup_duration_s: float = 1.0,
    chunks_per_object: int = 12,
    elasticache_instance: str = "cache.r5.24xlarge",
) -> Figure17Result:
    """Sweep the *object* access rate and locate the cost crossover.

    Every object GET fans out to ``chunks_per_object`` Lambda invocations
    (12 for the paper's RS(10+2) configuration), which is what makes the
    serving cost climb steeply enough to cross ElastiCache's flat line
    around 312 K requests/hour.
    """
    params = CostModelParams(
        total_nodes=total_nodes,
        memory_bytes=lambda_memory_mib * MIB,
        warmup_interval_min=warmup_interval_min,
        backup_interval_min=backup_interval_min,
        backup_duration_s=backup_duration_s,
    )
    model = CostModel(params)
    result = Figure17Result()
    result.elasticache_hourly = model.elasticache_hourly_cost(elasticache_instance)
    fixed = model.warmup_cost_per_hour() + model.backup_cost_per_hour()
    for step in range(steps):
        rate = max_rate * step / (steps - 1) if steps > 1 else 0.0
        result.access_rates.append(rate)
        result.infinicache_hourly.append(
            fixed + model.serving_cost_for_object_rate(rate, chunks_per_object)
        )
    result.crossover_rate = model.crossover_access_rate(
        elasticache_instance, chunks_per_object=chunks_per_object
    )
    return result


def format_report(result: Figure17Result) -> str:
    """Render the cost sweep and the crossover point."""
    rows = []
    for rate, cost in zip(result.access_rates, result.infinicache_hourly):
        rows.append([f"{rate / 1000:.0f}K", cost, result.elasticache_hourly,
                     "InfiniCache" if cost < result.elasticache_hourly else "ElastiCache"])
    table = format_table(
        ["access rate (req/h)", "InfiniCache ($/h)", "ElastiCache ($/h)", "cheaper"],
        rows,
        title="Figure 17 — hourly cost vs access rate",
    )
    return table + f"\n\ncrossover at ~{result.crossover_rate / 1000:.0f}K requests/hour"

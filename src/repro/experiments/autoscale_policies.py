"""Autoscaler policy comparison: reactive watermarks vs. predictive EWMA
(with and without a Holt trend term).

The cluster's GB-second bill and its hit ratio both depend on how the pool
is sized: a pool that grows late serves misses (RESETs through the backing
store) while one that grows early pays for warm-up and idle cycles.  This
experiment replays the *same* multi-tenant workload (same seed, same
request schedule) once per scaling policy and reports, per policy and per
tenant, the chargeback cost and the miss rate — the trade-off the ROADMAP's
"reactive watermarks vs. predictive" question asks about.

Both runs reuse :mod:`repro.experiments.cluster_scale`, so the chargeback
conservation property (per-tenant GB-seconds summing to the cluster bill)
holds for every row of the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import AutoscalerConfig
from repro.experiments import cluster_scale
from repro.experiments.report import format_table
from repro.faas.billing import UNATTRIBUTED_TENANT

# The compared configurations live next to the ported replay body so the
# scenario library's policy axis and this experiment share one definition;
# re-exported here because this was their historical home.
from repro.scenarios.cluster import DEFAULT_POLICIES  # noqa: F401  (re-export)


@dataclass
class PolicyComparisonResult:
    """One :mod:`cluster_scale` replay per policy, same workload."""

    duration_s: float
    runs: dict[str, cluster_scale.ClusterScaleResult]
    #: per-policy driver fingerprints (golden differential suite)
    fingerprints: dict[str, str] = field(default_factory=dict)

    def policy_names(self) -> list[str]:
        return list(self.runs)


def run(
    policies: dict[str, AutoscalerConfig] | None = None,
    tenants: list[cluster_scale.TenantSpec] | None = None,
    duration_s: float = 600.0,
    seed: int = 2020,
) -> PolicyComparisonResult:
    """Replay the multi-tenant mix once per autoscaling policy."""
    configs = policies if policies is not None else DEFAULT_POLICIES
    runs: dict[str, cluster_scale.ClusterScaleResult] = {}
    fingerprints: dict[str, str] = {}
    for name, autoscaler_config in configs.items():
        runs[name] = cluster_scale.run(
            tenants=tenants,
            duration_s=duration_s,
            seed=seed,
            autoscaler_config=autoscaler_config,
        )
        for label, digest in runs[name].fingerprints.items():
            fingerprints[f"{name}.{label}"] = digest
    return PolicyComparisonResult(
        duration_s=duration_s, runs=runs, fingerprints=fingerprints
    )


def format_report(result: PolicyComparisonResult) -> str:
    """Render the cost vs. miss-rate table per policy per tenant."""
    rows = []
    for policy in result.policy_names():
        run_result = result.runs[policy]
        for tenant_id in sorted(run_result.tenants):
            outcome = run_result.tenants[tenant_id]
            rows.append([
                policy,
                tenant_id,
                outcome.requests_issued,
                outcome.miss_ratio,
                outcome.billed_gb_seconds,
                outcome.billed_cost,
            ])
        unattributed = run_result.chargeback.get(UNATTRIBUTED_TENANT, {})
        rows.append([
            policy,
            "(cluster)",
            0,
            0.0,
            unattributed.get("gb_seconds", 0.0),
            unattributed.get("cost", 0.0),
        ])
    table = format_table(
        ["policy", "tenant", "requests", "miss_rate", "gb_seconds", "cost_$"],
        rows,
        title="Autoscaler policy comparison (same workload, same seed)",
    )
    lines = [table, ""]
    for policy in result.policy_names():
        run_result = result.runs[policy]
        scale_ups = run_result.counters.get("cluster.autoscaler.scale_ups", 0.0)
        scale_downs = run_result.counters.get("cluster.autoscaler.scale_downs", 0.0)
        lines.append(
            f"{policy}: total ${run_result.total_cost:.6f} "
            f"(chargeback sum ${run_result.chargeback_total_cost:.6f}), "
            f"pool peak={run_result.peak_pool_size} final={run_result.final_pool_size}, "
            f"scale-ups={scale_ups:g}, scale-downs={scale_downs:g}"
        )
    return "\n".join(lines)

"""Experiment reproductions: one module per table/figure of the paper.

Every module exposes a ``run(...)`` function that returns plain data
structures (lists of rows / dicts of series) plus a ``format_report(...)``
helper that renders them as the text tables printed by the benchmark
harness.  Default parameters are scaled down so the whole suite completes in
minutes on a laptop; each ``run`` accepts arguments to restore the paper's
full-scale settings.

| Module | Paper artefact |
|---|---|
| :mod:`repro.experiments.figure1`  | Fig. 1(a-d) trace characteristics |
| :mod:`repro.experiments.figure4`  | Fig. 4 latency vs #VM hosts touched |
| :mod:`repro.experiments.figure8`  | Fig. 8 reclaims over 24 h |
| :mod:`repro.experiments.figure9`  | Fig. 9 reclaims-per-minute distribution |
| :mod:`repro.experiments.figure11` | Fig. 11 microbenchmark latencies |
| :mod:`repro.experiments.figure12` | Fig. 12 throughput scalability |
| :mod:`repro.experiments.production` | shared 50-hour trace replay used by Figs. 13-16 & Table 1 |
| :mod:`repro.experiments.figure13` | Fig. 13 cost and cost breakdown |
| :mod:`repro.experiments.figure14` | Fig. 14 fault-tolerance activity timeline |
| :mod:`repro.experiments.figure15` | Fig. 15 latency CDFs vs ElastiCache / S3 |
| :mod:`repro.experiments.figure16` | Fig. 16 normalised latency by object size |
| :mod:`repro.experiments.figure17` | Fig. 17 hourly cost vs access rate |
| :mod:`repro.experiments.table1`   | Table 1 WSS / throughput / hit ratios |
| :mod:`repro.experiments.availability` | Section 4.3 availability numbers |

Beyond the paper, :mod:`repro.experiments.cluster_scale` replays a
multi-tenant mix against the orchestrated autoscaling cluster of
:mod:`repro.cluster`.
"""

__all__ = [
    "figure1",
    "figure4",
    "figure8",
    "figure9",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "table1",
    "availability",
    "cluster_scale",
    "production",
    "report",
]

"""Figure 11 — microbenchmark GET latency.

Six sub-figures sweep the Lambda memory configuration (128-3008 MB); within
each, the object size (10-100 MB) and the erasure code ((10+0), (10+1),
(10+2), (10+4), (4+2), (5+1)) are varied.  Sub-figure (f) additionally
compares against 1-node and 10-node ElastiCache deployments.

Every cell is measured with the **closed-loop event driver**: one scripted
client issues a GET per one-second round (maintenance timers tick in
between), the request's chunk fetches race first-d-of-n on the event loop,
and the cell's latency distribution is read from the hit samples.  The
ElastiCache baselines replay an equivalent GET-per-second trace through
the open-loop baseline driver.  The shapes the reproduction must preserve
(Section 5.1):

* (10+1) is the fastest code — maximum first-d parallelism with minimum
  decode overhead;
* (10+0) is *not* faster than (10+1) despite skipping decoding, because it
  has no redundancy to hide stragglers;
* bigger Lambdas are faster up to a plateau around 1024 MB;
* InfiniCache beats 1-node ElastiCache for every size and is competitive
  with the 10-node cluster for large objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.elasticache import ElastiCacheCluster
from repro.cache.config import InfiniCacheConfig
from repro.experiments.harness import ExperimentHarness
from repro.experiments.report import format_table
from repro.utils.stats import summarize
from repro.utils.units import MB, MIB
from repro.workload.microbenchmark import FIGURE11_OBJECT_SIZES, FIGURE11_RS_CODES
from repro.workload.replay import ClientOp, ElastiCacheTarget
from repro.workload.trace import Trace, TraceRecord

#: Lambda memory configurations of the six sub-figures (MiB).
FIGURE11_LAMBDA_MEMORY_MIB = (128, 256, 512, 1024, 2048, 3008)


@dataclass
class LatencySample:
    """Latency distribution for one (memory, code, object size) cell."""

    lambda_memory_mib: int
    rs_code: tuple[int, int]
    object_size: int
    latencies_s: list[float] = field(default_factory=list)

    def summary(self) -> dict[str, float]:
        """Percentile summary of this cell's latencies."""
        return summarize(self.latencies_s)


@dataclass
class Figure11Result:
    """All measured cells plus the ElastiCache comparison series."""

    cells: list[LatencySample] = field(default_factory=list)
    #: (deployment label, object size) -> median latency seconds
    elasticache: dict[tuple[str, int], float] = field(default_factory=dict)
    #: per-cell driver fingerprints (golden differential suite)
    fingerprints: dict[str, str] = field(default_factory=dict)

    def cell(self, memory_mib: int, code: tuple[int, int], size: int) -> LatencySample | None:
        """Find one measured cell."""
        for sample in self.cells:
            if (sample.lambda_memory_mib, sample.rs_code, sample.object_size) == (
                memory_mib, code, size,
            ):
                return sample
        return None

    def median(self, memory_mib: int, code: tuple[int, int], size: int) -> float:
        """Median latency of one cell (seconds)."""
        sample = self.cell(memory_mib, code, size)
        if sample is None or not sample.latencies_s:
            return float("nan")
        return sample.summary()["p50"]


def _measure_infinicache(
    harness: ExperimentHarness,
    memory_mib: int,
    code: tuple[int, int],
    object_size: int,
    requests: int,
) -> LatencySample:
    data_shards, parity_shards = code
    config = InfiniCacheConfig(
        lambdas_per_proxy=max(20, (data_shards + parity_shards) * 2),
        lambda_memory_bytes=memory_mib * MIB,
        data_shards=data_shards,
        parity_shards=parity_shards,
        backup_enabled=False,
        seed=harness.seed_for(memory_mib, code, object_size),
    )
    deployment = harness.deployment(config)
    key = f"fig11/{memory_mib}/{data_shards}+{parity_shards}/{object_size}"
    # One scripted closed-loop client: seed the object, then a GET per
    # one-second round; a miss (a reclaimed chunk should not happen in these
    # backup-free short runs) re-inserts through the driver's RESET path so
    # the sweep continues.
    plan: list[ClientOp] = [ClientOp("PUT", key=key, size=object_size)]
    for _round in range(requests):
        plan.append(ClientOp("SLEEP", delay_s=1.0))
        plan.append(ClientOp("GET", key=key, size=object_size))
    driver = harness.closed_loop(deployment)
    label = f"cell.{memory_mib}.{data_shards}+{parity_shards}.{object_size}"
    report = harness.record(label, driver.run([plan]))
    sample = LatencySample(
        lambda_memory_mib=memory_mib, rs_code=code, object_size=object_size
    )
    sample.latencies_s = [s.latency_s for s in report.hit_samples()]
    return sample


def _measure_elasticache(
    harness: ExperimentHarness, node_count: int, object_size: int, requests: int
) -> float:
    instance = "cache.r5.8xlarge" if node_count == 1 else "cache.r5.xlarge"
    cluster = ElastiCacheCluster(instance_type_name=instance, node_count=node_count)
    key = f"fig11/ec/{object_size}"
    trace = Trace(name=f"fig11-ec-{node_count}-{object_size}")
    trace.append(TraceRecord(timestamp=0.0, operation="PUT", key=key, size=object_size))
    for index in range(requests):
        trace.append(
            TraceRecord(timestamp=1.0 + index, operation="GET", key=key, size=object_size)
        )
    driver = harness.baseline_open_loop(ElastiCacheTarget(cluster))
    report = harness.record(f"elasticache.{node_count}.{object_size}", driver.run(trace))
    latencies = [s.latency_s for s in report.hit_samples()]
    return summarize(latencies)["p50"] if latencies else float("nan")


def run(
    lambda_memories_mib: tuple[int, ...] = FIGURE11_LAMBDA_MEMORY_MIB,
    rs_codes: tuple[tuple[int, int], ...] = FIGURE11_RS_CODES,
    object_sizes: tuple[int, ...] = FIGURE11_OBJECT_SIZES,
    requests_per_cell: int = 15,
    include_elasticache: bool = True,
    seed: int = 1111,
    harness: ExperimentHarness | None = None,
) -> Figure11Result:
    """Measure every (memory, code, size) cell plus the ElastiCache baselines."""
    harness = harness or ExperimentHarness("figure11", seed)
    result = Figure11Result()
    for memory_mib in lambda_memories_mib:
        for code in rs_codes:
            for object_size in object_sizes:
                result.cells.append(
                    _measure_infinicache(
                        harness, memory_mib, code, object_size, requests_per_cell
                    )
                )
    if include_elasticache:
        for object_size in object_sizes:
            result.elasticache[("ElastiCache(1-node)", object_size)] = _measure_elasticache(
                harness, 1, object_size, requests_per_cell
            )
            result.elasticache[("ElastiCache(10-node)", object_size)] = _measure_elasticache(
                harness, 10, object_size, requests_per_cell
            )
    result.fingerprints = harness.fingerprints
    return result


def format_report(result: Figure11Result) -> str:
    """Render the Figure 11 reproduction: one table per Lambda memory size."""
    sections = []
    memories = sorted({cell.lambda_memory_mib for cell in result.cells})
    sizes = sorted({cell.object_size for cell in result.cells})
    codes = sorted({cell.rs_code for cell in result.cells}, key=lambda c: (c[0], c[1]))
    for memory in memories:
        rows = []
        for code in codes:
            row: list[object] = [f"({code[0]}+{code[1]})"]
            for size in sizes:
                row.append(result.median(memory, code, size) * 1000)
            rows.append(row)
        headers = ["RS code"] + [f"{size // MB}MB (ms)" for size in sizes]
        sections.append(
            format_table(headers, rows, title=f"Figure 11 — {memory} MB Lambda, median GET latency")
        )
    if result.elasticache:
        rows = []
        for label in ("ElastiCache(1-node)", "ElastiCache(10-node)"):
            row: list[object] = [label]
            for size in sizes:
                row.append(result.elasticache.get((label, size), float("nan")) * 1000)
            rows.append(row)
        headers = ["deployment"] + [f"{size // MB}MB (ms)" for size in sizes]
        sections.append(format_table(headers, rows, title="Figure 11(f) — ElastiCache baselines"))
    return "\n\n".join(sections)

"""Figure 11 — microbenchmark GET latency.

Six sub-figures sweep the Lambda memory configuration (128-3008 MB); within
each, the object size (10-100 MB) and the erasure code ((10+0), (10+1),
(10+2), (10+4), (4+2), (5+1)) are varied.  Sub-figure (f) additionally
compares against 1-node and 10-node ElastiCache deployments.

The shapes the reproduction must preserve (Section 5.1):

* (10+1) is the fastest code — maximum first-d parallelism with minimum
  decode overhead;
* (10+0) is *not* faster than (10+1) despite skipping decoding, because it
  has no redundancy to hide stragglers;
* bigger Lambdas are faster up to a plateau around 1024 MB;
* InfiniCache beats 1-node ElastiCache for every size and is competitive
  with the 10-node cluster for large objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.elasticache import ElastiCacheCluster
from repro.cache.config import InfiniCacheConfig
from repro.cache.deployment import InfiniCacheDeployment
from repro.experiments.report import format_table
from repro.utils.stats import summarize
from repro.utils.units import MB, MIB
from repro.workload.microbenchmark import FIGURE11_OBJECT_SIZES, FIGURE11_RS_CODES

#: Lambda memory configurations of the six sub-figures (MiB).
FIGURE11_LAMBDA_MEMORY_MIB = (128, 256, 512, 1024, 2048, 3008)


@dataclass
class LatencySample:
    """Latency distribution for one (memory, code, object size) cell."""

    lambda_memory_mib: int
    rs_code: tuple[int, int]
    object_size: int
    latencies_s: list[float] = field(default_factory=list)

    def summary(self) -> dict[str, float]:
        """Percentile summary of this cell's latencies."""
        return summarize(self.latencies_s)


@dataclass
class Figure11Result:
    """All measured cells plus the ElastiCache comparison series."""

    cells: list[LatencySample] = field(default_factory=list)
    #: (deployment label, object size) -> median latency seconds
    elasticache: dict[tuple[str, int], float] = field(default_factory=dict)

    def cell(self, memory_mib: int, code: tuple[int, int], size: int) -> LatencySample | None:
        """Find one measured cell."""
        for sample in self.cells:
            if (sample.lambda_memory_mib, sample.rs_code, sample.object_size) == (
                memory_mib, code, size,
            ):
                return sample
        return None

    def median(self, memory_mib: int, code: tuple[int, int], size: int) -> float:
        """Median latency of one cell (seconds)."""
        sample = self.cell(memory_mib, code, size)
        if sample is None or not sample.latencies_s:
            return float("nan")
        return sample.summary()["p50"]


def _measure_infinicache(
    memory_mib: int,
    code: tuple[int, int],
    object_size: int,
    requests: int,
    seed: int,
) -> LatencySample:
    data_shards, parity_shards = code
    config = InfiniCacheConfig(
        lambdas_per_proxy=max(20, (data_shards + parity_shards) * 2),
        lambda_memory_bytes=memory_mib * MIB,
        data_shards=data_shards,
        parity_shards=parity_shards,
        backup_enabled=False,
        seed=seed,
    )
    deployment = InfiniCacheDeployment(config)
    deployment.start()
    client = deployment.new_client()
    key = f"fig11/{memory_mib}/{data_shards}+{parity_shards}/{object_size}"
    client.put_sized(key, object_size)
    sample = LatencySample(
        lambda_memory_mib=memory_mib, rs_code=code, object_size=object_size
    )
    for _ in range(requests):
        deployment.run_until(deployment.simulator.now + 1.0)
        result = client.get(key)
        if result.hit:
            sample.latencies_s.append(result.latency_s)
        else:
            # A reclaimed chunk shouldn't happen with backup-free short runs,
            # but re-insert so the sweep continues.
            client.put_sized(key, object_size)
    deployment.stop()
    return sample


def _measure_elasticache(node_count: int, object_size: int, requests: int) -> float:
    instance = "cache.r5.8xlarge" if node_count == 1 else "cache.r5.xlarge"
    cluster = ElastiCacheCluster(instance_type_name=instance, node_count=node_count)
    key = f"fig11/ec/{object_size}"
    cluster.put(key, object_size, now=0.0)
    latencies = []
    for index in range(requests):
        now = 1.0 + index
        latency = cluster.get(key, now)
        if latency is not None:
            latencies.append(latency)
    return summarize(latencies)["p50"] if latencies else float("nan")


def run(
    lambda_memories_mib: tuple[int, ...] = FIGURE11_LAMBDA_MEMORY_MIB,
    rs_codes: tuple[tuple[int, int], ...] = FIGURE11_RS_CODES,
    object_sizes: tuple[int, ...] = FIGURE11_OBJECT_SIZES,
    requests_per_cell: int = 15,
    include_elasticache: bool = True,
    seed: int = 1111,
) -> Figure11Result:
    """Measure every (memory, code, size) cell plus the ElastiCache baselines."""
    result = Figure11Result()
    for memory_mib in lambda_memories_mib:
        for code in rs_codes:
            for object_size in object_sizes:
                result.cells.append(
                    _measure_infinicache(
                        memory_mib, code, object_size, requests_per_cell,
                        seed + memory_mib + code[0] * 7 + code[1] * 13,
                    )
                )
    if include_elasticache:
        for object_size in object_sizes:
            result.elasticache[("ElastiCache(1-node)", object_size)] = _measure_elasticache(
                1, object_size, requests_per_cell
            )
            result.elasticache[("ElastiCache(10-node)", object_size)] = _measure_elasticache(
                10, object_size, requests_per_cell
            )
    return result


def format_report(result: Figure11Result) -> str:
    """Render the Figure 11 reproduction: one table per Lambda memory size."""
    sections = []
    memories = sorted({cell.lambda_memory_mib for cell in result.cells})
    sizes = sorted({cell.object_size for cell in result.cells})
    codes = sorted({cell.rs_code for cell in result.cells}, key=lambda c: (c[0], c[1]))
    for memory in memories:
        rows = []
        for code in codes:
            row: list[object] = [f"({code[0]}+{code[1]})"]
            for size in sizes:
                row.append(result.median(memory, code, size) * 1000)
            rows.append(row)
        headers = ["RS code"] + [f"{size // MB}MB (ms)" for size in sizes]
        sections.append(
            format_table(headers, rows, title=f"Figure 11 — {memory} MB Lambda, median GET latency")
        )
    if result.elasticache:
        rows = []
        for label in ("ElastiCache(1-node)", "ElastiCache(10-node)"):
            row: list[object] = [label]
            for size in sizes:
                row.append(result.elasticache.get((label, size), float("nan")) * 1000)
            rows.append(row)
        headers = ["deployment"] + [f"{size // MB}MB (ms)" for size in sizes]
        sections.append(format_table(headers, rows, title="Figure 11(f) — ElastiCache baselines"))
    return "\n\n".join(sections)

"""Figure 16 — latency normalised to ElastiCache, grouped by object size.

For four object-size buckets (<1 MB, 1-10 MB, 10-100 MB, >=100 MB) the paper
plots each system's latency normalised to ElastiCache's for the same
requests.  The shapes to preserve:

* InfiniCache is markedly slower than ElastiCache for sub-1 MB objects (the
  ~13 ms invocation overhead dominates);
* InfiniCache is on par with ElastiCache for 1-100 MB objects;
* InfiniCache is *faster* than ElastiCache for >=100 MB objects thanks to
  parallel chunk I/O;
* S3 is far slower across every bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.production import ProductionResults, ProductionScale, run as run_production
from repro.experiments.report import format_table
from repro.utils.stats import summarize


@dataclass
class Figure16Result:
    """Median normalised latency per (system, size bucket)."""

    buckets: list[str] = field(default_factory=list)
    #: system -> bucket -> median latency normalised to ElastiCache
    normalized_median: dict[str, dict[str, float]] = field(default_factory=dict)
    #: system -> bucket -> raw median latency (seconds)
    raw_median: dict[str, dict[str, float]] = field(default_factory=dict)
    #: per-replay driver fingerprints (golden differential suite)
    fingerprints: dict[str, str] = field(default_factory=dict)


def _bucket_medians(report) -> dict[str, float]:
    medians = {}
    for bucket, latencies in report.latencies_by_size_bucket().items():
        medians[bucket] = summarize(latencies)["p50"] if latencies else float("nan")
    return medians


def from_production(results: ProductionResults) -> Figure16Result:
    """Project the production replay onto Figure 16's normalised buckets."""
    figure = Figure16Result()
    systems = {
        "ElastiCache": results.elasticache_all,
        "InfiniCache": results.infinicache_all,
        "AWS S3": results.s3_all,
    }
    medians = {label: _bucket_medians(report) for label, report in systems.items()}
    figure.buckets = list(next(iter(medians.values())).keys())
    figure.raw_median = medians
    reference = medians["ElastiCache"]
    for label, per_bucket in medians.items():
        figure.normalized_median[label] = {}
        for bucket, value in per_bucket.items():
            ref = reference.get(bucket)
            if ref and ref > 0 and value == value:  # value==value filters NaN
                figure.normalized_median[label][bucket] = value / ref
            else:
                figure.normalized_median[label][bucket] = float("nan")
    figure.fingerprints = dict(results.fingerprints)
    return figure


def run(scale: ProductionScale | None = None) -> Figure16Result:
    """Run (or reuse) the production replay and compute Figure 16."""
    return from_production(run_production(scale))


def format_report(result: Figure16Result) -> str:
    """Render the normalised latency table."""
    rows = []
    for label, per_bucket in result.normalized_median.items():
        row: list[object] = [label]
        for bucket in result.buckets:
            row.append(per_bucket.get(bucket, float("nan")))
        rows.append(row)
    return format_table(
        ["system"] + result.buckets,
        rows,
        title="Figure 16 — median latency normalised to ElastiCache, by object size",
    )

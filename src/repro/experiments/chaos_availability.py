"""Chaos sweep — measured availability under faults vs. hardening level.

The analytic availability experiment (:mod:`repro.experiments.availability`,
Section 4.3) models object *survival* under reclamation distributions.  This
experiment measures availability empirically: the canonical fault storm
(:func:`repro.faults.scenario.demo_schedule` — correlated reclamation
storms, a link blackhole, invocation faults, straggler inflation, a proxy
crash) is replayed against the same closed-loop workload at increasing
levels of request-path hardening, and the resilience report's per-window
availability, degraded-hit counts, and faulted-vs-clean SLO deltas are
compared level by level.

A fault-free control run (empty schedule, full hardening) anchors the
sweep: its availability is 1.0 by construction, and its fingerprint must
match across process runs like every other figure's.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.cache.config import ResilienceConfig, RetryPolicy
from repro.experiments.report import format_table
from repro.faults.report import ResilienceReport
from repro.faults.scenario import (
    demo_config,
    demo_resilience,
    demo_schedule,
    run_chaos_scenario,
)
from repro.faults.spec import FaultSchedule


def hardening_levels() -> dict[str, ResilienceConfig]:
    """Hardening levels swept, weakest first.

    Every level keeps the degraded-fallback (so no level can crash the
    request path — an unreachable quorum falls back to the backing store);
    what varies is how hard the proxy tries before giving a chunk up.
    """
    return {
        "fallback only": ResilienceConfig(
            retry=RetryPolicy(max_attempts=1),
            chunk_timeout_s=None,
            circuit_breaker=None,
        ),
        "retry x3": ResilienceConfig(
            retry=RetryPolicy(max_attempts=3),
            chunk_timeout_s=None,
            circuit_breaker=None,
        ),
        "retry + hedge": ResilienceConfig(
            retry=RetryPolicy(max_attempts=3),
            chunk_timeout_s=1.0,
            circuit_breaker=None,
        ),
        "full hardening": demo_resilience(),
    }


@dataclass
class ChaosAvailabilityResult:
    """One resilience report per hardening level, plus the fault-free control."""

    seed: int
    clients: int
    rounds: int
    #: level label -> resilience report (insertion order = sweep order).
    reports: dict[str, ResilienceReport] = field(default_factory=dict)
    #: level label -> replay fingerprint (determinism artifact).
    fingerprints: dict[str, str] = field(default_factory=dict)


def run(
    seed: int = 2020, clients: int = 5, rounds: int = 50
) -> ChaosAvailabilityResult:
    """Replay the storm once per hardening level and collect the reports."""
    result = ChaosAvailabilityResult(seed=seed, clients=clients, rounds=rounds)
    control = run_chaos_scenario(
        seed=seed,
        schedule=FaultSchedule(()),
        config=demo_config(seed),
        clients=clients,
        rounds=rounds,
    )
    result.reports["control (no faults)"] = control.resilience
    result.fingerprints["control (no faults)"] = control.fingerprint
    for label, resilience in hardening_levels().items():
        config = dataclasses.replace(demo_config(seed), resilience=resilience)
        outcome = run_chaos_scenario(
            seed=seed,
            schedule=demo_schedule(),
            config=config,
            clients=clients,
            rounds=rounds,
        )
        result.reports[label] = outcome.resilience
        result.fingerprints[label] = outcome.fingerprint
    return result


def format_report(result: ChaosAvailabilityResult) -> str:
    """Render the hardening sweep."""
    rows = []
    for label, report in result.reports.items():
        counters = report.counters
        rows.append([
            label,
            report.requests,
            f"{report.worst_availability():.3f}",
            report.degraded_hits,
            report.resets,
            f"{counters.get('proxy.chunk_retries', 0):g}",
            f"{counters.get('proxy.chunk_hedges', 0):g}",
            f"{report.slo_delta('p50') * 1000:+.1f}",
            f"{report.slo_delta('p99') * 1000:+.1f}",
        ])
    table = format_table(
        ["hardening", "requests", "worst avail", "degraded", "resets",
         "retries", "hedges", "dp50 ms", "dp99 ms"],
        rows,
        title=(
            f"Chaos sweep — storm availability by hardening level "
            f"(seed {result.seed}, {result.clients} clients x {result.rounds} rounds)"
        ),
    )
    lines = [table, ""]
    full = result.reports.get("full hardening")
    if full is not None:
        lines.append("full-hardening fault windows:")
        lines.extend(full.format_lines())
    return "\n".join(lines)

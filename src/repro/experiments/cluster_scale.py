"""Cluster-scale experiment: multi-tenant replay on the orchestrated cluster.

This experiment goes beyond the paper's single-tenant evaluation and
exercises the :mod:`repro.cluster` subsystem end to end.  Several tenants
with different working sets and quotas share one autoscaling cluster:

* ``media`` — an unconstrained tenant with a large, Zipf-skewed working set;
  it supplies the memory pressure that drives the autoscaler up;
* ``api`` — a latency-sensitive tenant with a small hot set but a strict
  request-rate quota, so a burst of its traffic is throttled rather than
  allowed to crowd out the others;
* ``batch`` — a bulk tenant with a byte quota well under its working set,
  so its PUTs are rejected once it reaches its cap.

The replay injects all tenants' requests **open-loop** at their arrival
timestamps through :meth:`repro.workload.replay.OpenLoopDriver.run_schedule`:
each request runs as a coroutine process, so a slow RESET (backing-store
fetch plus re-insert) is still in flight while later arrivals — this
tenant's or another's — proceed concurrently through the flow-level network
model.  Misses RESET through a simulated backing store, as in the paper's
replays.  Reported per tenant: hit ratio, latency
percentiles, throttle/rejection counts, bytes cached (stored and logical),
and the **chargeback** — the GB-seconds and dollars the billing pipeline
attributed to each tenant's invocations, which sum to the cluster-wide
bill.  The pool-size timeline shows the autoscaler reacting to the
aggregate load, and the driver report's fingerprint pins the whole replay
for the golden differential suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.s3 import ObjectStore
from repro.cache.config import InfiniCacheConfig, StragglerModel
from repro.cluster import AutoscalerConfig, InfiniCacheCluster, TenantQuota
from repro.exceptions import QuotaExceededError, RateLimitedError
from repro.experiments.harness import ExperimentHarness
from repro.experiments.report import format_table
from repro.faas.billing import UNATTRIBUTED_TENANT
from repro.utils.rng import SeededRNG
from repro.utils.stats import summarize
from repro.utils.units import MB, MIB
from repro.workload.replay import ConcurrentReplayReport, RequestSample


@dataclass(frozen=True)
class TenantSpec:
    """Workload and quota description of one tenant in the experiment."""

    tenant_id: str
    requests: int
    num_objects: int
    object_size: int
    zipf_exponent: float = 0.9
    quota: TenantQuota = field(default_factory=TenantQuota)


def default_tenants(requests_per_tenant: int = 300) -> list[TenantSpec]:
    """The three-tenant mix described in the module docstring."""
    return [
        TenantSpec(
            tenant_id="media",
            requests=requests_per_tenant,
            num_objects=120,
            object_size=12 * MB,
        ),
        TenantSpec(
            tenant_id="api",
            requests=requests_per_tenant,
            num_objects=10,
            object_size=1 * MB,
            quota=TenantQuota(max_requests_per_s=1.0, burst_requests=5),
        ),
        TenantSpec(
            tenant_id="batch",
            requests=requests_per_tenant,
            num_objects=40,
            object_size=10 * MB,
            quota=TenantQuota(max_bytes=120 * MB),
        ),
    ]


@dataclass
class TenantOutcome:
    """Everything measured for one tenant during the replay."""

    tenant_id: str
    requests_issued: int = 0
    hits: int = 0
    misses: int = 0
    throttled: int = 0
    rejected_puts: int = 0
    latencies_s: list[float] = field(default_factory=list)
    bytes_stored: int = 0
    #: GB-seconds of Lambda time the billing pipeline attributed to this
    #: tenant's invocations (serving, warm-up, backup, rebalance, repair).
    billed_gb_seconds: float = 0.0
    #: Dollars charged back to this tenant; all tenants' costs plus the
    #: unattributed remainder sum to the cluster-wide bill.
    billed_cost: float = 0.0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def latency_summary(self) -> dict[str, float]:
        return summarize(self.latencies_s)


@dataclass
class ClusterScaleResult:
    """Outcome of the multi-tenant cluster replay."""

    duration_s: float
    tenants: dict[str, TenantOutcome]
    pool_size_timeline: list[tuple[float, float]]
    initial_pool_size: int
    peak_pool_size: int
    final_pool_size: int
    total_cost: float
    cost_breakdown: dict[str, float]
    counters: dict[str, float]
    #: Full chargeback decomposition of the bill, including the
    #: ``UNATTRIBUTED_TENANT`` row for maintenance no tenant caused.
    chargeback: dict[str, dict[str, float]] = field(default_factory=dict)
    #: The open-loop driver's report (request samples + flow intervals).
    replay_report: ConcurrentReplayReport | None = None
    #: Driver fingerprints (golden differential suite).
    fingerprints: dict[str, str] = field(default_factory=dict)

    @property
    def chargeback_total_cost(self) -> float:
        """Sum of the chargeback rows — equals ``total_cost`` (conservation)."""
        return sum(row["cost"] for row in self.chargeback.values())


def run(
    tenants: list[TenantSpec] | None = None,
    duration_s: float = 600.0,
    seed: int = 2020,
    autoscaler_config: AutoscalerConfig | None = None,
    harness: ExperimentHarness | None = None,
) -> ClusterScaleResult:
    """Replay the multi-tenant mix against an autoscaling cluster."""
    harness = harness or ExperimentHarness("cluster_scale", seed)
    specs = tenants if tenants is not None else default_tenants()
    config = InfiniCacheConfig(
        num_proxies=2,
        lambdas_per_proxy=8,
        lambda_memory_bytes=192 * MIB,
        data_shards=4,
        parity_shards=2,
        min_lambdas_per_proxy=6,
        max_lambdas_per_proxy=48,
        straggler=StragglerModel(probability=0.0),
        # Open-loop replays retire thousands of transfer intervals; the
        # experiment only consumes aggregate flow statistics, so retain a
        # bounded window instead of the whole run (peak/throughput numbers
        # are maintained independently of the retained trace).
        flow_trace_limit=512,
        seed=seed,
    )
    cluster = InfiniCacheCluster(
        config,
        autoscaler_config=autoscaler_config or AutoscalerConfig(interval_s=30.0),
    )
    cluster.start()
    backing_store = ObjectStore()

    rng = SeededRNG(seed).child("cluster_scale")
    clients = {spec.tenant_id: cluster.register_tenant(spec.tenant_id, spec.quota)
               for spec in specs}
    outcomes = {spec.tenant_id: TenantOutcome(spec.tenant_id) for spec in specs}

    # All tenants' requests interleave in timestamp order on one event loop;
    # keys are pre-drawn in arrival order so the schedule (and the RNG
    # stream) is identical however the in-flight requests overlap.
    schedule: list[tuple[float, TenantSpec]] = []
    for spec in specs:
        tenant_rng = rng.child(spec.tenant_id)
        times = sorted(tenant_rng.uniform(0.0, duration_s) for _ in range(spec.requests))
        schedule.extend((time, spec) for time in times)
    schedule.sort(key=lambda item: item[0])
    key_rngs = {spec.tenant_id: rng.child(spec.tenant_id, "keys") for spec in specs}
    keyed_schedule: list[tuple[float, TenantSpec, str]] = []
    for timestamp, spec in schedule:
        rank = key_rngs[spec.tenant_id].bounded_zipf(spec.num_objects, spec.zipf_exponent)
        keyed_schedule.append((timestamp, spec, f"obj-{rank:05d}"))

    env = cluster.deployment.request_env
    loop = cluster.simulator
    report = ConcurrentReplayReport(
        system="infinicache-cluster", mode="open-loop", clients=len(specs),
    )

    def request_process(spec: TenantSpec, key: str):
        outcome = outcomes[spec.tenant_id]
        client = clients[spec.tenant_id]
        start = env.now
        outcome.requests_issued += 1
        report.requests += 1
        try:
            result = yield from client.get_process(key, env)
        except RateLimitedError:
            outcome.throttled += 1
            return
        if result.hit:
            outcome.hits += 1
            report.hits += 1
            report.total_bytes += result.size
            outcome.latencies_s.append(result.latency_s)
            report.samples.append(RequestSample(
                client_id=spec.tenant_id, key=key, size=spec.object_size,
                started_at=start, finished_at=env.now, hit=True,
                recovery=result.recovery_performed,
                hosts_touched=result.hosts_touched,
            ))
            return
        outcome.misses += 1
        report.misses += 1
        reset = result.data_lost
        if reset:
            report.resets += 1
        # RESET: fetch from the backing store and re-insert (quota permitting).
        backing_store.put(f"{spec.tenant_id}/{key}", spec.object_size)
        _size, store_latency = backing_store.get(f"{spec.tenant_id}/{key}")
        yield store_latency
        try:
            yield from client.put_sized_process(key, spec.object_size, env)
        except QuotaExceededError:
            outcome.rejected_puts += 1
        except RateLimitedError:
            outcome.throttled += 1
        outcome.latencies_s.append(env.now - start)
        report.total_bytes += spec.object_size
        report.samples.append(RequestSample(
            client_id=spec.tenant_id, key=key, size=spec.object_size,
            started_at=start, finished_at=env.now, hit=False, reset=reset,
        ))

    arrivals = [
        (
            timestamp,
            f"cluster_scale.{spec.tenant_id}",
            lambda s=spec, k=key: request_process(s, k),
        )
        for timestamp, spec, key in keyed_schedule
    ]
    driver = harness.open_loop(cluster.deployment, backing_store=backing_store)
    driver.run_schedule(arrivals, report, finalize=False)
    cluster.run_until(max(duration_s, loop.now))
    cluster.stop()
    harness.record("replay", report)

    tenant_report = cluster.tenant_report()
    chargeback = cluster.chargeback_report()
    total_cost = cluster.total_cost()
    for outcome in outcomes.values():
        outcome.bytes_stored = int(tenant_report[outcome.tenant_id]["bytes_stored"])
        row = chargeback.get(outcome.tenant_id, {})
        outcome.billed_gb_seconds = row.get("gb_seconds", 0.0)
        outcome.billed_cost = row.get("cost", 0.0)

    timeline: list[tuple[float, float]] = []
    for proxy_id in sorted(cluster.pool_sizes()):
        series = cluster.metrics.series(f"cluster.pool_size.{proxy_id}")
        timeline.extend(zip(series.times, series.values))
    timeline.sort()
    pool_total_by_time: dict[float, float] = {}
    for time, size in timeline:
        pool_total_by_time[time] = pool_total_by_time.get(time, 0.0) + size
    pool_timeline = sorted(pool_total_by_time.items())
    initial_pool = config.num_proxies * config.lambdas_per_proxy
    sizes = [size for _time, size in pool_timeline] or [float(initial_pool)]

    return ClusterScaleResult(
        duration_s=duration_s,
        tenants=outcomes,
        pool_size_timeline=pool_timeline,
        initial_pool_size=initial_pool,
        peak_pool_size=int(max(sizes)),
        final_pool_size=int(sizes[-1]),
        total_cost=total_cost,
        cost_breakdown=cluster.cost_breakdown(),
        counters=cluster.metrics.counters(),
        chargeback=chargeback,
        replay_report=report,
        fingerprints=harness.fingerprints,
    )


def format_report(result: ClusterScaleResult) -> str:
    """Render the per-tenant table plus the autoscaling summary."""
    rows = []
    for tenant_id in sorted(result.tenants):
        outcome = result.tenants[tenant_id]
        latency = outcome.latency_summary()
        rows.append([
            tenant_id,
            outcome.requests_issued,
            outcome.hit_ratio,
            latency.get("p50", 0.0) * 1000.0,
            latency.get("p99", 0.0) * 1000.0,
            outcome.throttled,
            outcome.rejected_puts,
            outcome.bytes_stored / MB,
            outcome.billed_gb_seconds,
            outcome.billed_cost,
        ])
    table = format_table(
        ["tenant", "requests", "hit_ratio", "p50_ms", "p99_ms",
         "throttled", "rejected", "stored_MB", "gb_seconds", "cost_$"],
        rows,
        title="Multi-tenant cluster replay (autoscaling InfiniCache)",
    )
    scale_ups = result.counters.get("cluster.autoscaler.scale_ups", 0.0)
    scale_downs = result.counters.get("cluster.autoscaler.scale_downs", 0.0)
    migrated = result.counters.get("cluster.rebalance.chunks_moved", 0.0)
    unattributed = result.chargeback.get(UNATTRIBUTED_TENANT, {}).get("cost", 0.0)
    lines = [
        table,
        "",
        f"pool size: start={result.initial_pool_size} "
        f"peak={result.peak_pool_size} final={result.final_pool_size} "
        f"(scale-ups={scale_ups:g}, scale-downs={scale_downs:g}, "
        f"chunks migrated={migrated:g})",
        f"total cost: ${result.total_cost:.6f} "
        f"(rebalance ${result.cost_breakdown.get('rebalance', 0.0):.6f}, "
        f"unattributed ${unattributed:.6f})",
        f"chargeback conservation: per-tenant sum ${result.chargeback_total_cost:.6f} "
        f"== cluster bill ${result.total_cost:.6f}",
    ]
    return "\n".join(lines)

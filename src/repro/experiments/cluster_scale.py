"""Cluster-scale experiment: multi-tenant replay on the orchestrated cluster.

This experiment goes beyond the paper's single-tenant evaluation and
exercises the :mod:`repro.cluster` subsystem end to end.  Several tenants
with different working sets and quotas share one autoscaling cluster:

* ``media`` — an unconstrained tenant with a large, Zipf-skewed working set;
  it supplies the memory pressure that drives the autoscaler up;
* ``api`` — a latency-sensitive tenant with a small hot set but a strict
  request-rate quota, so a burst of its traffic is throttled rather than
  allowed to crowd out the others;
* ``batch`` — a bulk tenant with a byte quota well under its working set,
  so its PUTs are rejected once it reaches its cap.

The execution body lives in :mod:`repro.scenarios.cluster` — this module is
the experiment-facing wrapper: it builds a
:class:`~repro.scenarios.spec.ClusterScenarioSpec` (whose defaults are this
experiment's historical constants), runs it, and renders the report.  The
golden differential suite pins the driver fingerprint, so the wrapper is
replay-identical to the pre-port implementation.  The scenario engine runs
the same replay as the ``cluster_scale`` library grid (``repro scenarios
run cluster_scale``).
"""

from __future__ import annotations

from repro.cluster import AutoscalerConfig
from repro.experiments.harness import ExperimentHarness
from repro.experiments.report import format_table
from repro.faas.billing import UNATTRIBUTED_TENANT
from repro.scenarios.cluster import (
    ClusterScaleResult,
    TenantOutcome,
    TenantSpec,
    default_tenants,
    run_cluster_scale,
)
from repro.scenarios.spec import ClusterScenarioSpec
from repro.utils.units import MB

__all__ = [
    "TenantSpec",
    "TenantOutcome",
    "ClusterScaleResult",
    "default_tenants",
    "run",
    "format_report",
]


def run(
    tenants: list[TenantSpec] | None = None,
    duration_s: float = 600.0,
    seed: int = 2020,
    autoscaler_config: AutoscalerConfig | None = None,
    harness: ExperimentHarness | None = None,
) -> ClusterScaleResult:
    """Replay the multi-tenant mix against an autoscaling cluster."""
    spec = ClusterScenarioSpec(
        tenants=tuple(tenants if tenants is not None else default_tenants()),
        duration_s=duration_s,
        autoscaler=autoscaler_config or AutoscalerConfig(interval_s=30.0),
    )
    return run_cluster_scale(spec, seed=seed, harness=harness)


def format_report(result: ClusterScaleResult) -> str:
    """Render the per-tenant table plus the autoscaling summary."""
    rows = []
    for tenant_id in sorted(result.tenants):
        outcome = result.tenants[tenant_id]
        latency = outcome.latency_summary()
        rows.append([
            tenant_id,
            outcome.requests_issued,
            outcome.hit_ratio,
            latency.get("p50", 0.0) * 1000.0,
            latency.get("p99", 0.0) * 1000.0,
            outcome.throttled,
            outcome.rejected_puts,
            outcome.bytes_stored / MB,
            outcome.billed_gb_seconds,
            outcome.billed_cost,
        ])
    table = format_table(
        ["tenant", "requests", "hit_ratio", "p50_ms", "p99_ms",
         "throttled", "rejected", "stored_MB", "gb_seconds", "cost_$"],
        rows,
        title="Multi-tenant cluster replay (autoscaling InfiniCache)",
    )
    scale_ups = result.counters.get("cluster.autoscaler.scale_ups", 0.0)
    scale_downs = result.counters.get("cluster.autoscaler.scale_downs", 0.0)
    migrated = result.counters.get("cluster.rebalance.chunks_moved", 0.0)
    unattributed = result.chargeback.get(UNATTRIBUTED_TENANT, {}).get("cost", 0.0)
    lines = [
        table,
        "",
        f"pool size: start={result.initial_pool_size} "
        f"peak={result.peak_pool_size} final={result.final_pool_size} "
        f"(scale-ups={scale_ups:g}, scale-downs={scale_downs:g}, "
        f"chunks migrated={migrated:g})",
        f"total cost: ${result.total_cost:.6f} "
        f"(rebalance ${result.cost_breakdown.get('rebalance', 0.0):.6f}, "
        f"unattributed ${unattributed:.6f})",
        f"chargeback conservation: per-tenant sum ${result.chargeback_total_cost:.6f} "
        f"== cluster bill ${result.total_cost:.6f}",
    ]
    return "\n".join(lines)

"""Run every experiment from one entry point.

``python -m repro.experiments.runner`` (or ``python -m repro``) regenerates
all the paper's tables and figures and writes the text reports to a results
directory.  It exists so a user can reproduce the whole evaluation without
going through pytest, and so CI can diff the regenerated reports.
"""

from __future__ import annotations

import argparse
import pathlib
import time
from typing import Callable

from repro.experiments import (
    autoscale_policies,
    availability,
    cluster_scale,
    figure1,
    figure4,
    figure8,
    figure9,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    production,
    table1,
)
from repro.utils.units import MB


def _quick_specs() -> dict[str, Callable[[], str]]:
    """Experiment name -> callable producing the formatted report (quick scale)."""
    shared_scale = production.ProductionScale()

    def shared_results():
        return production.run(shared_scale)

    return {
        "figure1": lambda: figure1.format_report(figure1.run(duration_hours=12.0)),
        "figure4": lambda: figure4.format_report(
            figure4.run(pool_sizes=(20, 60, 120, 200), requests_per_pool=20)
        ),
        "figure8": lambda: figure8.format_report(figure8.run(fleet_size=150, hours=24)),
        "figure9": lambda: figure9.format_report(
            figure9.run(figure8_result=figure8.run(fleet_size=150, hours=24))
        ),
        "figure11": lambda: figure11.format_report(
            figure11.run(
                lambda_memories_mib=(256, 1024, 3008),
                object_sizes=(10 * MB, 100 * MB),
                requests_per_cell=10,
            )
        ),
        "figure12": lambda: figure12.format_report(
            figure12.run(client_counts=(1, 2, 4, 8, 10), requests_per_client=12)
        ),
        "figure13": lambda: figure13.format_report(figure13.from_production(shared_results())),
        "figure14": lambda: figure14.format_report(figure14.from_production(shared_results())),
        "figure15": lambda: figure15.format_report(figure15.from_production(shared_results())),
        "figure16": lambda: figure16.format_report(figure16.from_production(shared_results())),
        "table1": lambda: table1.format_report(table1.from_production(shared_results())),
        "figure17": lambda: figure17.format_report(figure17.run()),
        "availability": lambda: availability.format_report(availability.run()),
        "cluster_scale": lambda: cluster_scale.format_report(
            cluster_scale.run(duration_s=300.0)
        ),
        "autoscale_policies": lambda: autoscale_policies.format_report(
            autoscale_policies.run(duration_s=240.0)
        ),
    }


def run_all(
    output_dir: str | pathlib.Path = "experiment_results",
    only: list[str] | None = None,
) -> dict[str, str]:
    """Run the selected experiments and write one report file per experiment.

    Args:
        output_dir: directory to write ``<name>.txt`` reports into.
        only: optional list of experiment names (default: all of them).

    Returns:
        Mapping from experiment name to its formatted report.
    """
    specs = _quick_specs()
    if only:
        unknown = sorted(set(only) - set(specs))
        if unknown:
            raise ValueError(f"unknown experiments {unknown}; available: {sorted(specs)}")
        specs = {name: spec for name, spec in specs.items() if name in only}

    out_path = pathlib.Path(output_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    reports: dict[str, str] = {}
    for name, build_report in specs.items():
        started = time.time()
        report = build_report()
        reports[name] = report
        (out_path / f"{name}.txt").write_text(report + "\n", encoding="utf-8")
        print(f"[{name}] done in {time.time() - started:.1f}s -> {out_path / (name + '.txt')}")
    return reports


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the InfiniCache paper's tables and figures.",
    )
    parser.add_argument(
        "--output-dir", default="experiment_results",
        help="directory for the generated report files (default: experiment_results/)",
    )
    parser.add_argument(
        "--only", nargs="*", default=None, metavar="NAME",
        help="run only the named experiments (e.g. --only figure13 table1)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiment names and exit",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in sorted(_quick_specs()):
            print(name)
        return 0
    run_all(output_dir=args.output_dir, only=args.only)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Run every experiment from one entry point.

``python -m repro.experiments.runner`` (or ``python -m repro``) regenerates
all the paper's tables and figures and writes the text reports to a results
directory.  It exists so a user can reproduce the whole evaluation without
going through pytest, and so CI can diff the regenerated reports.

Every experiment is described by an :class:`ExperimentSpec` — build the
result, render the report, expose the driver fingerprints — and the
replay-driving experiments construct their workloads through the shared
:class:`repro.experiments.harness.ExperimentHarness` (re-exported here),
which owns seeding, driver construction, and report fingerprinting.
``--fingerprints PATH`` writes the collected per-figure fingerprints as
JSON; the ``figures-smoke`` CI job uploads that file as an artifact so
fingerprint drift between commits is visible at a glance.
``--metrics PATH`` additionally collects every harness's labelled metrics
into one shared :class:`~repro.simulation.metrics.MetricRegistry` and
writes it in Prometheus text exposition format when the run finishes.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from dataclasses import dataclass
from typing import Callable

from repro.experiments import (
    autoscale_policies,
    availability,
    chaos_availability,
    cluster_scale,
    figure1,
    figure4,
    figure8,
    figure9,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    production,
    table1,
)
from repro.experiments.harness import ExperimentHarness
from repro.simulation.metrics import MetricRegistry
from repro.utils.units import MB

__all__ = ["ExperimentHarness", "ExperimentSpec", "run_all", "main"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: how to run it, render it, and fingerprint it."""

    name: str
    build: Callable[[], object]
    render: Callable[[object], str]

    def fingerprints(self, result: object) -> dict[str, str]:
        """Per-run driver fingerprints, empty for analytic experiments."""
        return dict(getattr(result, "fingerprints", {}) or {})


def _quick_specs() -> dict[str, ExperimentSpec]:
    """Experiment name -> spec producing the formatted report (quick scale)."""
    shared_scale = production.ProductionScale()

    def shared_results():
        return production.run(shared_scale)

    entries: dict[str, tuple[Callable[[], object], Callable[[object], str]]] = {
        "figure1": (lambda: figure1.run(duration_hours=12.0), figure1.format_report),
        "figure4": (
            lambda: figure4.run(pool_sizes=(20, 60, 120, 200), requests_per_pool=20),
            figure4.format_report,
        ),
        "figure8": (lambda: figure8.run(fleet_size=150, hours=24), figure8.format_report),
        "figure9": (
            lambda: figure9.run(figure8_result=figure8.run(fleet_size=150, hours=24)),
            figure9.format_report,
        ),
        "figure11": (
            lambda: figure11.run(
                lambda_memories_mib=(256, 1024, 3008),
                object_sizes=(10 * MB, 100 * MB),
                requests_per_cell=10,
            ),
            figure11.format_report,
        ),
        "figure12": (
            lambda: figure12.run(client_counts=(1, 2, 4, 8, 10), requests_per_client=12),
            figure12.format_report,
        ),
        "figure13": (
            lambda: figure13.from_production(shared_results()), figure13.format_report,
        ),
        "figure14": (
            lambda: figure14.from_production(shared_results()), figure14.format_report,
        ),
        "figure15": (
            lambda: figure15.from_production(shared_results()), figure15.format_report,
        ),
        "figure16": (
            lambda: figure16.from_production(shared_results()), figure16.format_report,
        ),
        "table1": (
            lambda: table1.from_production(shared_results()), table1.format_report,
        ),
        "figure17": (figure17.run, figure17.format_report),
        "availability": (availability.run, availability.format_report),
        "chaos_availability": (
            lambda: chaos_availability.run(clients=5, rounds=50),
            chaos_availability.format_report,
        ),
        "cluster_scale": (
            lambda: cluster_scale.run(duration_s=300.0), cluster_scale.format_report,
        ),
        "autoscale_policies": (
            lambda: autoscale_policies.run(duration_s=240.0),
            autoscale_policies.format_report,
        ),
    }
    return {
        name: ExperimentSpec(name=name, build=build, render=render)
        for name, (build, render) in entries.items()
    }


def run_all(
    output_dir: str | pathlib.Path = "experiment_results",
    only: list[str] | None = None,
    fingerprints_path: str | pathlib.Path | None = None,
    metrics_path: str | pathlib.Path | None = None,
) -> dict[str, str]:
    """Run the selected experiments and write one report file per experiment.

    Args:
        output_dir: directory to write ``<name>.txt`` reports into.
        only: optional list of experiment names (default: all of them).
        fingerprints_path: optional JSON file collecting every experiment's
            driver fingerprints (the figures-smoke CI artifact).
        metrics_path: optional Prometheus text-exposition file; when given,
            every :class:`ExperimentHarness` the experiments construct
            publishes into one shared registry that is written here.

    Returns:
        Mapping from experiment name to its formatted report.
    """
    specs = _quick_specs()
    if only:
        unknown = sorted(set(only) - set(specs))
        if unknown:
            raise ValueError(f"unknown experiments {unknown}; available: {sorted(specs)}")
        specs = {name: spec for name, spec in specs.items() if name in only}

    registry = MetricRegistry() if metrics_path is not None else None
    out_path = pathlib.Path(output_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    reports: dict[str, str] = {}
    fingerprints: dict[str, dict[str, str]] = {}
    previous_default = ExperimentHarness.default_metrics
    if registry is not None:
        ExperimentHarness.default_metrics = registry
    try:
        for name, spec in specs.items():
            # Progress logging only — never feeds simulation state.
            started = time.time()  # repro: allow[D102]
            result = spec.build()
            report = spec.render(result)
            reports[name] = report
            fingerprints[name] = spec.fingerprints(result)
            (out_path / f"{name}.txt").write_text(report + "\n", encoding="utf-8")
            print(
                f"[{name}] done in {time.time() - started:.1f}s -> "  # repro: allow[D102]
                f"{out_path / (name + '.txt')}"
            )
    finally:
        ExperimentHarness.default_metrics = previous_default
    if fingerprints_path is not None:
        payload = {"schema": "repro.figure_fingerprints/1", "experiments": fingerprints}
        pathlib.Path(fingerprints_path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"(wrote fingerprints to {fingerprints_path})")
    if registry is not None:
        pathlib.Path(metrics_path).write_text(registry.to_prometheus(), encoding="utf-8")
        print(f"(wrote metrics to {metrics_path})")
    return reports


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the InfiniCache paper's tables and figures.",
    )
    parser.add_argument(
        "--output-dir", default="experiment_results",
        help="directory for the generated report files (default: experiment_results/)",
    )
    parser.add_argument(
        "--only", nargs="*", default=None, metavar="NAME",
        help="run only the named experiments (e.g. --only figure13 table1)",
    )
    parser.add_argument(
        "--fingerprints", default=None, metavar="PATH",
        help="also write every experiment's driver fingerprints as JSON "
        "(the figures-smoke CI artifact)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="also write every harness's labelled metrics in Prometheus "
        "text exposition format",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiment names and exit",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in sorted(_quick_specs()):
            print(name)
        return 0
    run_all(
        output_dir=args.output_dir,
        only=args.only,
        fingerprints_path=args.fingerprints,
        metrics_path=args.metrics,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

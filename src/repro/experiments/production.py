"""Shared production-trace replay used by Figures 13-16 and Table 1.

The paper replays the first 50 hours of the Dallas Docker-registry trace
against three systems (InfiniCache, ElastiCache, raw S3) and three
InfiniCache settings (all objects, large objects only, large objects without
backup).  All of those figures and tables read different projections of the
same runs, so this module performs the replays once (memoised per parameter
set within a process) and hands the reports out.

Scale: the defaults are reduced — a shorter trace and a smaller Lambda pool —
so the whole benchmark suite runs in minutes.  ``ProductionScale.paper()``
restores the full-scale parameters (50 hours, 400 x 1.5 GB Lambdas, ~1 TB
working set); the relative shapes (cost ratios, hit ratios, who wins where)
hold at either scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

from repro.baselines.elasticache import ElastiCacheCluster
from repro.baselines.s3 import ObjectStore
from repro.cache.config import InfiniCacheConfig
from repro.cache.deployment import InfiniCacheDeployment
from repro.faas.reclamation import ZipfBurstReclamationPolicy
from repro.utils.rng import SeededRNG
from repro.utils.units import MB, MIB
from repro.workload.docker_registry import DockerRegistryTraceGenerator, RegistryTraceConfig
from repro.workload.replay import ReplayReport, TraceReplayer
from repro.workload.trace import Trace


@dataclass(frozen=True)
class ProductionScale:
    """Scale parameters for the production replay."""

    duration_hours: float = 6.0
    catalogue_size: int = 1_200
    base_requests_per_hour: float = 1_200.0
    lambdas_per_proxy: int = 60
    lambda_memory_mib: int = 1536
    data_shards: int = 10
    parity_shards: int = 2
    #: Probability per minute that the provider reclaims a burst of instances
    #: (the bursty regime of Figure 9 is what produces the paper's RESETs).
    reclaim_burst_probability: float = 0.15
    reclaim_burst_exponent: float = 1.7
    elasticache_instance: str = "cache.r5.24xlarge"
    seed: int = 5050

    @property
    def reclaim_max_burst(self) -> int:
        """Largest burst the reclamation policy may take, scaled to the pool."""
        return max(6, self.lambdas_per_proxy // 6)

    @classmethod
    def paper(cls) -> "ProductionScale":
        """The paper's full-scale configuration (slow: hours of CPU time)."""
        return cls(
            duration_hours=50.0,
            catalogue_size=12_000,
            base_requests_per_hour=3_654.0,
            lambdas_per_proxy=400,
            lambda_memory_mib=1536,
        )

    @classmethod
    def quick(cls) -> "ProductionScale":
        """A minimal configuration for unit tests (minutes of trace time)."""
        return cls(
            duration_hours=1.0,
            catalogue_size=200,
            base_requests_per_hour=600.0,
            lambdas_per_proxy=24,
            reclaim_burst_probability=0.10,
        )


@dataclass
class ProductionResults:
    """Replay reports for every system / setting combination."""

    scale: ProductionScale
    trace_all: Trace
    trace_large: Trace
    infinicache_all: ReplayReport
    infinicache_large: ReplayReport
    infinicache_large_no_backup: ReplayReport
    elasticache_all: ReplayReport
    s3_all: ReplayReport


def build_trace(scale: ProductionScale) -> Trace:
    """Generate the Dallas-style trace at the requested scale."""
    config = RegistryTraceConfig(
        name="dallas",
        duration_hours=scale.duration_hours,
        catalogue_size=scale.catalogue_size,
        base_requests_per_hour=scale.base_requests_per_hour,
        seed=scale.seed,
    )
    return DockerRegistryTraceGenerator(config).generate()


def build_deployment(scale: ProductionScale, backup_enabled: bool, seed_offset: int = 0,
                     ) -> InfiniCacheDeployment:
    """Build an InfiniCache deployment matching the paper's Section 5.2 setup."""
    config = InfiniCacheConfig(
        num_proxies=1,
        lambdas_per_proxy=scale.lambdas_per_proxy,
        lambda_memory_bytes=scale.lambda_memory_mib * MIB,
        data_shards=scale.data_shards,
        parity_shards=scale.parity_shards,
        backup_enabled=backup_enabled,
        seed=scale.seed + seed_offset,
    )
    policy = ZipfBurstReclamationPolicy(
        SeededRNG(scale.seed + 7 + seed_offset),
        exponent=scale.reclaim_burst_exponent,
        max_burst=scale.reclaim_max_burst,
        burst_probability=scale.reclaim_burst_probability,
    )
    return InfiniCacheDeployment(config, reclamation_policy=policy)


def run(scale: ProductionScale | None = None) -> ProductionResults:
    """Run every replay needed by Figures 13-16 and Table 1."""
    scale = scale or ProductionScale()
    return _run_cached(scale)


@lru_cache(maxsize=4)
def _run_cached(scale: ProductionScale) -> ProductionResults:
    trace_all = build_trace(scale)
    trace_large = trace_all.large_objects_only(10 * MB)

    infinicache_all = TraceReplayer(ObjectStore()).replay_infinicache(
        trace_all, build_deployment(scale, backup_enabled=True, seed_offset=1)
    )
    infinicache_large = TraceReplayer(ObjectStore()).replay_infinicache(
        trace_large, build_deployment(scale, backup_enabled=True, seed_offset=2)
    )
    infinicache_large_no_backup = TraceReplayer(ObjectStore()).replay_infinicache(
        trace_large, build_deployment(scale, backup_enabled=False, seed_offset=3)
    )
    elasticache_all = TraceReplayer(ObjectStore()).replay_elasticache(
        trace_all, ElastiCacheCluster(instance_type_name=scale.elasticache_instance)
    )
    s3_all = TraceReplayer(ObjectStore()).replay_object_store(trace_all)

    return ProductionResults(
        scale=scale,
        trace_all=trace_all,
        trace_large=trace_large,
        infinicache_all=infinicache_all,
        infinicache_large=infinicache_large,
        infinicache_large_no_backup=infinicache_large_no_backup,
        elasticache_all=elasticache_all,
        s3_all=s3_all,
    )


def quick_results() -> ProductionResults:
    """The smallest production run (used by unit tests)."""
    return run(ProductionScale.quick())

"""Shared production-trace replay used by Figures 13-16 and Table 1.

The paper replays the first 50 hours of the Dallas Docker-registry trace
against three systems (InfiniCache, ElastiCache, raw S3) and three
InfiniCache settings (all objects, large objects only, large objects without
backup).  All of those figures and tables read different projections of the
same runs, so this module performs the replays once (memoised per parameter
set within a process) and hands the reports out.

Every replay is **event-driven and open-loop**: trace records are injected
at their arrival timestamps through
:class:`~repro.workload.replay.OpenLoopDriver` (the cache) and
:class:`~repro.workload.replay.OpenLoopBaselineDriver` (ElastiCache and the
raw object store), so slow RESETs overlap later arrivals, chunk fetches
race first-d-of-n through the flow-level network model, and every run is
pinned by a deterministic fingerprint (the golden differential suite).

Scale: the defaults are reduced — a shorter trace and a smaller Lambda pool —
so the whole benchmark suite runs in minutes.  ``ProductionScale.paper()``
restores the full-scale parameters (50 hours, 400 x 1.5 GB Lambdas, ~1 TB
working set); the relative shapes (cost ratios, hit ratios, who wins where)
hold at either scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.baselines.elasticache import ElastiCacheCluster
from repro.baselines.s3 import ObjectStore
from repro.cache.config import InfiniCacheConfig
from repro.cache.deployment import InfiniCacheDeployment
from repro.experiments.harness import ExperimentHarness
from repro.faas.reclamation import ZipfBurstReclamationPolicy
from repro.utils.rng import SeededRNG
from repro.utils.units import MB, MIB
from repro.workload.docker_registry import DockerRegistryTraceGenerator, RegistryTraceConfig
from repro.workload.replay import (
    ConcurrentReplayReport,
    ElastiCacheTarget,
    ObjectStoreTarget,
    OpenLoopBaselineDriver,
)
from repro.workload.trace import Trace


@dataclass(frozen=True)
class ProductionScale:
    """Scale parameters for the production replay."""

    duration_hours: float = 6.0
    catalogue_size: int = 1_200
    base_requests_per_hour: float = 1_200.0
    lambdas_per_proxy: int = 60
    lambda_memory_mib: int = 1536
    data_shards: int = 10
    parity_shards: int = 2
    #: Probability per minute that the provider reclaims a burst of instances
    #: (the bursty regime of Figure 9 is what produces the paper's RESETs).
    reclaim_burst_probability: float = 0.15
    reclaim_burst_exponent: float = 1.7
    elasticache_instance: str = "cache.r5.24xlarge"
    seed: int = 5050

    @property
    def reclaim_max_burst(self) -> int:
        """Largest burst the reclamation policy may take, scaled to the pool."""
        return max(6, self.lambdas_per_proxy // 6)

    @classmethod
    def paper(cls) -> "ProductionScale":
        """The paper's full-scale configuration (slow: hours of CPU time)."""
        return cls(
            duration_hours=50.0,
            catalogue_size=12_000,
            base_requests_per_hour=3_654.0,
            lambdas_per_proxy=400,
            lambda_memory_mib=1536,
        )

    @classmethod
    def quick(cls) -> "ProductionScale":
        """A minimal configuration for unit tests (minutes of trace time)."""
        return cls(
            duration_hours=1.0,
            catalogue_size=200,
            base_requests_per_hour=600.0,
            lambdas_per_proxy=24,
            reclaim_burst_probability=0.10,
        )


@dataclass
class ProductionResults:
    """Replay reports for every system / setting combination."""

    scale: ProductionScale
    trace_all: Trace
    trace_large: Trace
    infinicache_all: ConcurrentReplayReport
    infinicache_large: ConcurrentReplayReport
    infinicache_large_no_backup: ConcurrentReplayReport
    elasticache_all: ConcurrentReplayReport
    s3_all: ConcurrentReplayReport
    #: Per-replay driver fingerprints (golden differential suite).
    fingerprints: dict[str, str] = field(default_factory=dict)


def build_trace(scale: ProductionScale) -> Trace:
    """Generate the Dallas-style trace at the requested scale."""
    config = RegistryTraceConfig(
        name="dallas",
        duration_hours=scale.duration_hours,
        catalogue_size=scale.catalogue_size,
        base_requests_per_hour=scale.base_requests_per_hour,
        seed=scale.seed,
    )
    return DockerRegistryTraceGenerator(config).generate()


def build_deployment(scale: ProductionScale, backup_enabled: bool, seed_offset: int = 0,
                     ) -> InfiniCacheDeployment:
    """Build an InfiniCache deployment matching the paper's Section 5.2 setup."""
    config = InfiniCacheConfig(
        num_proxies=1,
        lambdas_per_proxy=scale.lambdas_per_proxy,
        lambda_memory_bytes=scale.lambda_memory_mib * MIB,
        data_shards=scale.data_shards,
        parity_shards=scale.parity_shards,
        backup_enabled=backup_enabled,
        seed=scale.seed + seed_offset,
    )
    policy = ZipfBurstReclamationPolicy(
        SeededRNG(scale.seed + 7 + seed_offset),
        exponent=scale.reclaim_burst_exponent,
        max_burst=scale.reclaim_max_burst,
        burst_probability=scale.reclaim_burst_probability,
    )
    return InfiniCacheDeployment(config, reclamation_policy=policy)


def run(scale: ProductionScale | None = None) -> ProductionResults:
    """Run every replay needed by Figures 13-16 and Table 1."""
    scale = scale or ProductionScale()
    return _run_cached(scale)


@lru_cache(maxsize=4)
def _run_cached(scale: ProductionScale) -> ProductionResults:
    harness = ExperimentHarness("production", scale.seed)
    trace_all = build_trace(scale)
    trace_large = trace_all.large_objects_only(10 * MB)

    def replay_infinicache(label: str, trace: Trace, backup: bool, offset: int):
        deployment = build_deployment(scale, backup_enabled=backup, seed_offset=offset)
        driver = harness.open_loop(deployment, backing_store=ObjectStore())
        return harness.record(label, driver.run(trace))

    infinicache_all = replay_infinicache("infinicache.all", trace_all, True, 1)
    infinicache_large = replay_infinicache("infinicache.large", trace_large, True, 2)
    infinicache_large_no_backup = replay_infinicache(
        "infinicache.large_no_backup", trace_large, False, 3
    )
    elasticache_all = harness.record(
        "elasticache.all",
        harness.baseline_open_loop(
            ElastiCacheTarget(
                ElastiCacheCluster(instance_type_name=scale.elasticache_instance)
            ),
        ).run(trace_all),
    )
    s3_store = ObjectStore()
    s3_all = harness.record(
        "s3.all",
        harness.baseline_open_loop(
            ObjectStoreTarget(s3_store), backing_store=s3_store
        ).run(trace_all),
    )

    return ProductionResults(
        scale=scale,
        trace_all=trace_all,
        trace_large=trace_large,
        infinicache_all=infinicache_all,
        infinicache_large=infinicache_large,
        infinicache_large_no_backup=infinicache_large_no_backup,
        elasticache_all=elasticache_all,
        s3_all=s3_all,
        fingerprints=harness.fingerprints,
    )


def replay_elasticache_large(results: ProductionResults) -> ConcurrentReplayReport:
    """The large-object-only ElastiCache replay Table 1 additionally needs.

    The caller (``table1.from_production``) fingerprints the returned
    report itself, so no harness bookkeeping is involved here.
    """
    driver = OpenLoopBaselineDriver(
        ElastiCacheTarget(
            ElastiCacheCluster(instance_type_name=results.scale.elasticache_instance)
        )
    )
    return driver.run(results.trace_large)


def quick_results() -> ProductionResults:
    """The smallest production run (used by unit tests)."""
    return run(ProductionScale.quick())

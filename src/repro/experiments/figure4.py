"""Figure 4 — GET latency as a function of the number of VM hosts touched.

The paper's study: 100 MB objects coded RS(10+1) onto 256 MB Lambdas drawn
from pools of 20-200 nodes.  Small pools pack many functions per ~3 GB host,
so one request's 11 chunks share few host NICs and contend; large pools
spread the chunks over more hosts and latency drops.

The reproduction sweeps the pool size with the **closed-loop event driver**:
one scripted client per pool re-places the object and GETs it once per
round (``INVALIDATE``/``PUT``/``GET`` :class:`~repro.workload.replay.ClientOp`
entries separated by 1-second ``SLEEP`` rounds, during which warm-ups keep
ticking), with the driver's warm-up phase deploying the full pool first so
the chunk-to-host spread is re-sampled each round exactly as the paper
re-selects random nodes.  Every GET's chunk fetches race on the event loop
through the flow-level network model, so the latency a request pays for
sharing few host NICs is the genuine contention of its own concurrent
chunk transfers.  Each hit sample carries ``hosts_touched`` — the figure's
x-axis — and the per-pool driver reports are fingerprinted for the golden
differential suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import InfiniCacheConfig, StragglerModel
from repro.experiments.harness import ExperimentHarness
from repro.experiments.report import format_table
from repro.utils.stats import summarize
from repro.utils.units import MB, MIB
from repro.workload.replay import ClientOp


@dataclass
class Figure4Result:
    """Latency samples grouped by the number of VM hosts a request touched."""

    pool_sizes: list[int]
    #: host count -> list of client-perceived latencies (seconds)
    latency_by_hosts: dict[int, list[float]] = field(default_factory=dict)
    #: per-pool driver fingerprints (golden differential suite)
    fingerprints: dict[str, str] = field(default_factory=dict)

    def rows(self) -> list[list[object]]:
        """Summary rows (hosts touched, samples, median, p90, max)."""
        rows = []
        for hosts in sorted(self.latency_by_hosts):
            summary = summarize(self.latency_by_hosts[hosts])
            rows.append(
                [hosts, summary["count"], summary["p50"] * 1000,
                 summary["p90"] * 1000, summary["max"] * 1000]
            )
        return rows


def run(
    pool_sizes: tuple[int, ...] = (20, 50, 100, 150, 200),
    object_size: int = 100 * MB,
    requests_per_pool: int = 30,
    lambda_memory_bytes: int = 256 * MIB,
    seed: int = 400,
    harness: ExperimentHarness | None = None,
) -> Figure4Result:
    """Sweep the pool size and collect latency grouped by hosts touched."""
    harness = harness or ExperimentHarness("figure4", seed)
    result = Figure4Result(pool_sizes=list(pool_sizes))
    for pool_size in pool_sizes:
        config = InfiniCacheConfig(
            lambdas_per_proxy=pool_size,
            lambda_memory_bytes=lambda_memory_bytes,
            data_shards=10,
            parity_shards=1,
            backup_enabled=False,
            straggler=StragglerModel(probability=0.0),
            seed=harness.seed_for("pool", pool_size),
        )
        deployment = harness.deployment(config)
        key = f"fig4/{pool_size}"
        # One scripted closed-loop client: per round, advance a second (so
        # warm-ups interleave), re-place the object to re-sample its
        # chunk-to-host spread, then measure the GET.
        plan: list[ClientOp] = []
        for _round in range(requests_per_pool):
            plan.append(ClientOp("SLEEP", delay_s=1.0))
            plan.append(ClientOp("INVALIDATE", key=key, size=object_size))
            plan.append(ClientOp("PUT", key=key, size=object_size))
            plan.append(ClientOp("GET", key=key, size=object_size))
        driver = harness.closed_loop(deployment, warm_pool=True)
        report = harness.record(f"pool.{pool_size}", driver.run([plan]))
        for sample in report.hit_samples():
            result.latency_by_hosts.setdefault(sample.hosts_touched, []).append(
                sample.latency_s
            )
    result.fingerprints = harness.fingerprints
    return result


def format_report(result: Figure4Result) -> str:
    """Render the Figure 4 reproduction as a table."""
    return format_table(
        ["hosts touched", "samples", "p50 (ms)", "p90 (ms)", "max (ms)"],
        result.rows(),
        title="Figure 4 — latency vs number of VM hosts touched per request",
    )

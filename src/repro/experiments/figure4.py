"""Figure 4 — GET latency as a function of the number of VM hosts touched.

The paper's study: 100 MB objects coded RS(10+1) onto 256 MB Lambdas drawn
from pools of 20-200 nodes.  Small pools pack many functions per ~3 GB host,
so one request's 11 chunks share few host NICs and contend; large pools
spread the chunks over more hosts and latency drops.

The reproduction sweeps the pool size, records for every GET how many
distinct hosts its chunks touched, and reports the latency distribution per
host count — the same box-plot data as the paper's figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import InfiniCacheConfig, StragglerModel
from repro.cache.deployment import InfiniCacheDeployment
from repro.experiments.report import format_table
from repro.utils.stats import summarize
from repro.utils.units import MB, MIB


@dataclass
class Figure4Result:
    """Latency samples grouped by the number of VM hosts a request touched."""

    pool_sizes: list[int]
    #: host count -> list of client-perceived latencies (seconds)
    latency_by_hosts: dict[int, list[float]] = field(default_factory=dict)

    def rows(self) -> list[list[object]]:
        """Summary rows (hosts touched, samples, median, p90, max)."""
        rows = []
        for hosts in sorted(self.latency_by_hosts):
            summary = summarize(self.latency_by_hosts[hosts])
            rows.append(
                [hosts, summary["count"], summary["p50"] * 1000,
                 summary["p90"] * 1000, summary["max"] * 1000]
            )
        return rows


def run(
    pool_sizes: tuple[int, ...] = (20, 50, 100, 150, 200),
    object_size: int = 100 * MB,
    requests_per_pool: int = 30,
    lambda_memory_bytes: int = 256 * MIB,
) -> Figure4Result:
    """Sweep the pool size and collect latency grouped by hosts touched."""
    result = Figure4Result(pool_sizes=list(pool_sizes))
    for pool_size in pool_sizes:
        config = InfiniCacheConfig(
            lambdas_per_proxy=pool_size,
            lambda_memory_bytes=lambda_memory_bytes,
            data_shards=10,
            parity_shards=1,
            backup_enabled=False,
            straggler=StragglerModel(probability=0.0),
            seed=400 + pool_size,
        )
        deployment = InfiniCacheDeployment(config)
        deployment.start()
        client = deployment.new_client()
        # Warm the whole pool first so every Lambda node has a live instance
        # and the pool is spread over its full set of VM hosts — the paper's
        # setup deploys the pool before issuing requests, and the host spread
        # is exactly the variable Figure 4 studies.
        for proxy in deployment.proxies:
            proxy.warm_up_pool(deployment.simulator.now)
        key = f"fig4/{pool_size}"
        client.put_sized(key, object_size)
        for request in range(requests_per_pool):
            deployment.run_until(deployment.simulator.now + 1.0)
            # Re-place the object each round so the chunk-to-host spread is
            # re-sampled, as the paper does by re-selecting random nodes.
            client.invalidate(key)
            client.put_sized(key, object_size)
            get = client.get(key)
            if not get.hit:
                continue
            result.latency_by_hosts.setdefault(get.hosts_touched, []).append(get.latency_s)
        deployment.stop()
    return result


def format_report(result: Figure4Result) -> str:
    """Render the Figure 4 reproduction as a table."""
    return format_table(
        ["hosts touched", "samples", "p50 (ms)", "p90 (ms)", "max (ms)"],
        result.rows(),
        title="Figure 4 — latency vs number of VM hosts touched per request",
    )

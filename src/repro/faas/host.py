"""VM hosts and the greedy bin-packing placement of functions onto them.

The paper observed (citing the "Peeking behind the curtains" study) that AWS
packs Lambda functions onto the smallest possible number of ~3 GB VM hosts
using a greedy heuristic.  That placement policy is what creates the network
contention measured in Figure 4 and motivates the recommendation to use
>= 1.5 GB functions so each one gets a host to itself.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.faas.limits import LambdaLimits


@dataclass
class VMHost:
    """One Lambda-hosting virtual machine."""

    host_id: str
    memory_bytes: int
    nic_bandwidth_bps: float
    resident_functions: set[str] = field(default_factory=set)
    memory_in_use: int = 0

    def can_fit(self, memory_bytes: int) -> bool:
        """Whether a function of this size fits in the remaining memory."""
        return self.memory_in_use + memory_bytes <= self.memory_bytes

    def place(self, function_name: str, memory_bytes: int) -> None:
        """Place a function instance on this host."""
        if not self.can_fit(memory_bytes):
            raise ConfigurationError(
                f"host {self.host_id} cannot fit {memory_bytes} more bytes "
                f"({self.memory_in_use}/{self.memory_bytes} in use)"
            )
        if function_name in self.resident_functions:
            raise ConfigurationError(
                f"function {function_name!r} is already resident on host {self.host_id}"
            )
        self.resident_functions.add(function_name)
        self.memory_in_use += memory_bytes

    def evict(self, function_name: str, memory_bytes: int) -> None:
        """Remove a function instance from this host (reclaim or shutdown)."""
        if function_name not in self.resident_functions:
            raise ConfigurationError(
                f"function {function_name!r} is not resident on host {self.host_id}"
            )
        self.resident_functions.remove(function_name)
        self.memory_in_use -= memory_bytes
        if self.memory_in_use < 0:
            raise ConfigurationError(f"host {self.host_id} memory accounting went negative")

    @property
    def occupancy(self) -> int:
        """Number of functions currently resident on this host."""
        return len(self.resident_functions)


class HostManager:
    """Creates hosts on demand and places functions with a greedy heuristic.

    The greedy rule mirrors what the paper infers about AWS: a new function
    instance goes onto the existing host with the *most* functions already on
    it that still has room (tightest packing), and a new host is provisioned
    only when nothing fits.
    """

    def __init__(self, limits: LambdaLimits | None = None):
        self.limits = limits or LambdaLimits()
        self.hosts: dict[str, VMHost] = {}
        self._next_host_index = 0
        self._placement: dict[str, tuple[str, int]] = {}
        self._host_index: dict[str, int] = {}
        #: Lazy max-heap of ``(-memory_in_use, -index, host_id)`` for hosts
        #: with free memory.  Entries go stale when a host's occupancy
        #: changes (a fresh entry is pushed alongside) and are skipped on
        #: pop, so placement is O(log hosts) instead of a full fleet scan —
        #: the scan was a superlinear term at thousand-client fleet sizes.
        self._open: list[tuple[int, int, str]] = []
        #: Heap entries for hosts whose leftover memory was too small for a
        #: placement, parked out of the heap until a request small enough to
        #: possibly fit one arrives (tracked via the free-byte high-water
        #: mark).  Without parking, every placement in a
        #: one-function-per-host fleet re-pops and re-pushes the entire
        #: too-full fleet — an O(hosts log hosts) term per cold start that
        #: dominated macro-benchmark seeding.
        self._parked: dict[str, tuple[int, int, str]] = {}
        self._parked_max_free = -1

    def _note_open(self, host: VMHost) -> None:
        if host.memory_in_use < host.memory_bytes:
            heapq.heappush(
                self._open,
                (-host.memory_in_use, -self._host_index[host.host_id], host.host_id),
            )

    def _new_host(self) -> VMHost:
        host = VMHost(
            host_id=f"vm-{self._next_host_index:05d}",
            memory_bytes=self.limits.host_memory_bytes,
            nic_bandwidth_bps=self.limits.host_nic_bandwidth,
        )
        self._host_index[host.host_id] = self._next_host_index
        self._next_host_index += 1
        self.hosts[host.host_id] = host
        return host

    def place_function(self, function_name: str, memory_bytes: int) -> VMHost:
        """Place a new function instance and return its host."""
        if function_name in self._placement:
            raise ConfigurationError(f"function {function_name!r} is already placed")
        # Greedy bin-packing: the fullest host that still fits, host-id as
        # the tie break — identical to scanning every host with
        # ``max(key=(memory_in_use, host_id))``, but served from the lazy
        # heap.  Live-but-too-small entries are parked rather than pushed
        # back, and return to the heap only when a request small enough to
        # possibly fit one arrives (stale parked entries — the host's
        # occupancy changed since, which always pushes a fresh entry — are
        # skipped on pop like any other stale entry).
        if 0 <= self._parked_max_free >= memory_bytes:
            for parked in self._parked.values():
                heapq.heappush(self._open, parked)
            self._parked.clear()
            self._parked_max_free = -1
        host: Optional[VMHost] = None
        while self._open:
            entry = heapq.heappop(self._open)
            candidate = self.hosts[entry[2]]
            if candidate.memory_in_use != -entry[0]:
                continue  # stale: occupancy changed since the entry was pushed
            if candidate.can_fit(memory_bytes):
                host = candidate
                break
            self._parked[entry[2]] = entry
            free = candidate.memory_bytes - candidate.memory_in_use
            if free > self._parked_max_free:
                self._parked_max_free = free
        if host is None:
            host = self._new_host()
        host.place(function_name, memory_bytes)
        self._note_open(host)
        self._placement[function_name] = (host.host_id, memory_bytes)
        return host

    def remove_function(self, function_name: str) -> None:
        """Remove a function instance from its host (after reclamation)."""
        placement = self._placement.pop(function_name, None)
        if placement is None:
            return
        host_id, memory_bytes = placement
        host = self.hosts[host_id]
        host.evict(function_name, memory_bytes)
        self._note_open(host)

    def residents_by_host(self) -> dict[str, list[str]]:
        """Instance ids currently placed on each host, deterministically ordered.

        Hosts appear in host-id order and each host's residents in placement-id
        order, so callers that sample from this map (the chaos engine's
        correlated reclamation storms hit whole hosts at a time) never observe
        set/dict hash order.
        """
        by_host: dict[str, list[str]] = {}
        for function_name, (host_id, _memory) in sorted(self._placement.items()):
            by_host.setdefault(host_id, []).append(function_name)
        return dict(sorted(by_host.items()))

    def host_of(self, function_name: str) -> Optional[VMHost]:
        """The host a function instance currently lives on, if any."""
        placement = self._placement.get(function_name)
        if placement is None:
            return None
        return self.hosts[placement[0]]

    def distinct_hosts(self, function_names: list[str]) -> int:
        """How many distinct VM hosts the given function instances span.

        This is the x-axis of Figure 4.
        """
        seen = set()
        for name in function_names:
            placement = self._placement.get(name)
            if placement is not None:
                seen.add(placement[0])
        return len(seen)

    @property
    def host_count(self) -> int:
        """Number of hosts provisioned so far."""
        return len(self.hosts)

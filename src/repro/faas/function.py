"""Function instances: the provider-side view of one warm Lambda container.

A *function* (identified by name) can have one or more *instances* at a time:
normally a single warm instance, but concurrent invocations force the
platform to auto-scale by creating peer replicas — the mechanism the backup
protocol (Section 4.2) deliberately exploits.

Each instance owns an opaque in-memory state dictionary.  The cache's Lambda
runtime stores its chunk table there; from the platform's point of view the
state is simply lost when the instance is reclaimed, which is exactly the
failure mode InfiniCache has to survive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.faas.limits import bandwidth_for_memory, cpu_for_memory


class FunctionState(enum.Enum):
    """Lifecycle states of a function instance."""

    #: Warm and idle: cached by the provider, state retained, not running.
    IDLE = "idle"
    #: Currently executing an invocation.
    RUNNING = "running"
    #: Reclaimed by the provider: state lost, instance unusable.
    RECLAIMED = "reclaimed"


@dataclass
class FunctionInstance:
    """One warm (or reclaimed) container of a named function."""

    function_name: str
    instance_id: str
    memory_bytes: int
    created_at: float
    state: FunctionState = FunctionState.IDLE
    last_invoked_at: float = 0.0
    invocation_count: int = 0
    reclaimed_at: float | None = None
    #: Opaque application state (the cache runtime's chunk store lives here).
    runtime_state: dict[str, Any] = field(default_factory=dict)
    host_id: str = ""

    @property
    def cpu_cores(self) -> float:
        """CPU cores allocated to this instance."""
        return cpu_for_memory(self.memory_bytes)

    @property
    def bandwidth_bps(self) -> float:
        """Network bandwidth cap of this instance."""
        return bandwidth_for_memory(self.memory_bytes)

    @property
    def is_alive(self) -> bool:
        """Whether the instance still holds its state."""
        return self.state is not FunctionState.RECLAIMED

    def mark_invoked(self, now: float) -> None:
        """Record an invocation for idle-time tracking."""
        self.last_invoked_at = now
        self.invocation_count += 1

    def idle_seconds(self, now: float) -> float:
        """Seconds since the last invocation (or creation, if never invoked)."""
        reference = self.last_invoked_at if self.invocation_count else self.created_at
        return max(0.0, now - reference)

    def reclaim(self, now: float) -> None:
        """Reclaim the instance: its state is irrevocably lost."""
        self.state = FunctionState.RECLAIMED
        self.reclaimed_at = now
        self.runtime_state = {}

    def __repr__(self) -> str:
        return (
            f"FunctionInstance({self.function_name}/{self.instance_id}, "
            f"state={self.state.value}, invocations={self.invocation_count})"
        )

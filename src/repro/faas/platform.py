"""The simulated FaaS platform: function registry, invocation, auto-scaling,
reclamation sweeps, and billing.

This is the stand-in for AWS Lambda.  The cache layer above it only uses the
behaviours the real platform exposes:

* ``register_function`` / ``invoke`` — deploy a named function and invoke it;
  a warm instance is reused when one is idle, a cold start creates a new one.
* Concurrent invocations of the same function auto-scale into *peer
  replicas*, each with its own private state (the backup protocol's λ_d).
* Warm instances are cached between invocations and may be reclaimed at any
  time by the configured :class:`~repro.faas.reclamation.ReclamationPolicy`;
  reclamation destroys the instance's state.
* Every invocation is billed per the paper's pricing (invocation fee plus
  100 ms-rounded GB-seconds); the *caller* reports the execution duration,
  because in InfiniCache the Lambda runtime deliberately keeps itself alive
  to the end of a billing cycle (anticipatory billed-duration control).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.exceptions import (
    ConfigurationError,
    FunctionReclaimedError,
    InvocationError,
    InvocationFaultError,
)
from repro.faas.billing import BillingModel
from repro.faas.function import FunctionInstance, FunctionState
from repro.faas.host import HostManager
from repro.faas.limits import LambdaLimits, validate_memory_bytes
from repro.faas.reclamation import NoReclamationPolicy, ReclamationPolicy
from repro.sim.loop import PeriodicTask, Simulator
from repro.simulation.metrics import MetricRegistry
from repro.utils.units import MINUTE


@dataclass(frozen=True)
class FunctionConfig:
    """Deployment-time configuration of one named function."""

    name: str
    memory_bytes: int

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("function name must be non-empty")
        validate_memory_bytes(self.memory_bytes)


@dataclass
class InvocationResult:
    """What the platform returns to the invoker."""

    instance: FunctionInstance
    cold_start: bool
    invoke_overhead_s: float
    started_at: float


@dataclass
class _RegisteredFunction:
    config: FunctionConfig
    instances: list[FunctionInstance] = field(default_factory=list)
    next_instance_index: int = 0

    def alive_instances(self) -> list[FunctionInstance]:
        return [inst for inst in self.instances if inst.is_alive]


class FaaSPlatform:
    """A deterministic, simulation-time AWS Lambda stand-in."""

    def __init__(
        self,
        simulator: Simulator,
        reclamation_policy: ReclamationPolicy | None = None,
        limits: LambdaLimits | None = None,
        billing: BillingModel | None = None,
        metrics: MetricRegistry | None = None,
        sweep_interval_s: float = 1 * MINUTE,
    ):
        self.simulator = simulator
        self.limits = limits or LambdaLimits()
        self.billing = billing or BillingModel()
        self.metrics = metrics or MetricRegistry()
        self.reclamation_policy = reclamation_policy or NoReclamationPolicy()
        self.host_manager = HostManager(self.limits)
        self.sweep_interval_s = sweep_interval_s
        self._functions: dict[str, _RegisteredFunction] = {}
        self._reclaim_listeners: list[Callable[[FunctionInstance], None]] = []
        self._sweep_task = PeriodicTask(
            simulator, sweep_interval_s, self._sweep, label="faas.reclaim_sweep"
        )
        #: Fault-injection window state (set by the chaos engine): each
        #: invocation fails with ``_fault_failure_probability`` and pays
        #: ``_fault_extra_overhead_s`` of additional invoke overhead (the
        #: provider-side timeout/straggler-inflation model).  With the
        #: probability at its 0.0 default no RNG draw ever happens, so a
        #: fault-free run consumes no randomness here.
        self._fault_failure_probability = 0.0
        self._fault_extra_overhead_s = 0.0
        self._fault_rng = None

    # --- fault injection --------------------------------------------------------
    def set_invocation_faults(
        self,
        *,
        failure_probability: float = 0.0,
        extra_overhead_s: float = 0.0,
        rng=None,
    ) -> None:
        """Arm (or, with defaults, disarm) the invocation fault window.

        ``rng`` must be a seeded stream when ``failure_probability`` is
        positive; the chaos engine derives a dedicated child per fault spec
        so the draw order is independent of other subsystems.
        """
        if not 0.0 <= failure_probability <= 1.0:
            raise ConfigurationError("fault failure probability must be in [0, 1]")
        if extra_overhead_s < 0:
            raise ConfigurationError("fault extra overhead must be non-negative")
        if failure_probability > 0 and rng is None:
            raise ConfigurationError("injecting invocation failures requires an RNG")
        self._fault_failure_probability = failure_probability
        self._fault_extra_overhead_s = extra_overhead_s
        self._fault_rng = rng

    def clear_invocation_faults(self) -> None:
        """Disarm the invocation fault window (revert to healthy behaviour)."""
        self.set_invocation_faults()

    def _maybe_inject_invocation_fault(self, function_name: str) -> float:
        """Roll for an injected failure; returns the extra invoke overhead.

        Raises:
            InvocationFaultError: when the armed failure probability fires.
        """
        probability = self._fault_failure_probability
        if probability > 0 and self._fault_rng.random() < probability:
            self.metrics.counter("faas.injected_faults").increment()
            raise InvocationFaultError(function_name)
        return self._fault_extra_overhead_s

    # --- deployment -------------------------------------------------------------
    def register_function(self, name: str, memory_bytes: int) -> FunctionConfig:
        """Deploy a named function with the given memory configuration."""
        if name in self._functions:
            raise ConfigurationError(f"function {name!r} is already registered")
        config = FunctionConfig(name=name, memory_bytes=memory_bytes)
        self._functions[name] = _RegisteredFunction(config=config)
        return config

    def is_registered(self, name: str) -> bool:
        """Whether a function with this name has been deployed."""
        return name in self._functions

    def function_config(self, name: str) -> FunctionConfig:
        """The deployment configuration of a registered function."""
        return self._require(name).config

    def registered_functions(self) -> list[str]:
        """Names of all deployed functions."""
        return sorted(self._functions)

    def _require(self, name: str) -> _RegisteredFunction:
        registered = self._functions.get(name)
        if registered is None:
            raise InvocationError(f"function {name!r} is not registered")
        return registered

    # --- invocation --------------------------------------------------------------
    def invoke(self, name: str, *, force_new_instance: bool = False) -> InvocationResult:
        """Invoke a function and return the instance that serves the call.

        An idle warm instance is reused unless ``force_new_instance`` is set
        (or every warm instance is busy), in which case the platform cold
        starts a fresh peer replica — this is how concurrent invocations
        auto-scale and how the backup protocol obtains λ_d.

        The caller is responsible for (a) advancing simulation time to model
        the function's execution and (b) calling :meth:`complete_invocation`
        with the duration to bill.
        """
        registered = self._require(name)
        fault_overhead = self._maybe_inject_invocation_fault(name)
        instance: Optional[FunctionInstance] = None
        if not force_new_instance:
            for candidate in registered.alive_instances():
                if candidate.state is FunctionState.IDLE:
                    instance = candidate
                    break
        cold_start = instance is None
        if cold_start:
            instance = self._create_instance(registered)
            overhead = self.limits.cold_start_overhead + self.limits.warm_invocation_overhead
            self.metrics.counter("faas.cold_starts").increment()
        else:
            overhead = self.limits.warm_invocation_overhead
        overhead += fault_overhead
        instance.state = FunctionState.RUNNING
        instance.mark_invoked(self.simulator.now)
        self.metrics.counter("faas.invocations").increment()
        return InvocationResult(
            instance=instance,
            cold_start=cold_start,
            invoke_overhead_s=overhead,
            started_at=self.simulator.now,
        )

    def invoke_instance(self, instance: FunctionInstance) -> InvocationResult:
        """Invoke a *specific* warm instance.

        The cache layer tracks which replica of a function holds which data
        (primary vs backup peer), so it needs to direct invocations at a
        chosen instance rather than whichever idle instance the platform
        would pick.  Raises :class:`FunctionReclaimedError` if the instance
        no longer exists.
        """
        if not instance.is_alive:
            raise FunctionReclaimedError(instance.instance_id)
        fault_overhead = self._maybe_inject_invocation_fault(instance.function_name)
        if instance.state is FunctionState.RUNNING:
            raise InvocationError(
                f"instance {instance.instance_id} is already running an invocation"
            )
        instance.state = FunctionState.RUNNING
        instance.mark_invoked(self.simulator.now)
        self.metrics.counter("faas.invocations").increment()
        return InvocationResult(
            instance=instance,
            cold_start=False,
            invoke_overhead_s=self.limits.warm_invocation_overhead + fault_overhead,
            started_at=self.simulator.now,
        )

    def complete_invocation(
        self,
        instance: FunctionInstance,
        duration_s: float,
        category: str = "serving",
        attribution: dict[str, float] | None = None,
    ) -> None:
        """Finish an invocation: bill it and return the instance to the warm pool.

        ``attribution`` carries the caller's per-tenant chargeback weights
        straight through to :meth:`BillingModel.charge_invocation`.
        """
        if instance.state is FunctionState.RECLAIMED:
            # The provider reclaimed the container mid-flight; the account is
            # still billed for the duration it ran.
            self.billing.charge_invocation(
                instance.memory_bytes, duration_s, category, attribution=attribution
            )
            return
        if instance.state is not FunctionState.RUNNING:
            raise InvocationError(
                f"instance {instance.instance_id} is not running (state={instance.state})"
            )
        self.billing.charge_invocation(
            instance.memory_bytes, duration_s, category, attribution=attribution
        )
        instance.state = FunctionState.IDLE
        instance.last_invoked_at = self.simulator.now

    def _create_instance(self, registered: _RegisteredFunction) -> FunctionInstance:
        config = registered.config
        instance_id = f"{config.name}@{registered.next_instance_index}"
        registered.next_instance_index += 1
        instance = FunctionInstance(
            function_name=config.name,
            instance_id=instance_id,
            memory_bytes=config.memory_bytes,
            created_at=self.simulator.now,
        )
        host = self.host_manager.place_function(instance_id, config.memory_bytes)
        instance.host_id = host.host_id
        registered.instances.append(instance)
        self.metrics.counter("faas.instances_created").increment()
        return instance

    # --- instance inspection -------------------------------------------------------
    def warm_instance(self, name: str) -> Optional[FunctionInstance]:
        """The most recently used alive instance of a function, if any."""
        alive = self._require(name).alive_instances()
        if not alive:
            return None
        return max(alive, key=lambda inst: inst.last_invoked_at)

    def alive_instances(self, name: str | None = None) -> list[FunctionInstance]:
        """All alive instances, optionally restricted to one function name."""
        if name is not None:
            return self._require(name).alive_instances()
        result: list[FunctionInstance] = []
        for registered in self._functions.values():
            result.extend(registered.alive_instances())
        return result

    def instance_count(self) -> int:
        """Total number of alive instances across all functions."""
        return len(self.alive_instances())

    # --- reclamation ------------------------------------------------------------------
    def on_reclaim(self, listener: Callable[[FunctionInstance], None]) -> None:
        """Register a callback invoked whenever an instance is reclaimed."""
        self._reclaim_listeners.append(listener)

    def start_reclamation_sweeps(self) -> None:
        """Begin periodic reclamation sweeps on the simulator.

        Each sweep asks the policy which alive instances to reclaim.  The
        sweeps run as a :class:`~repro.sim.loop.PeriodicTask` timer, so
        starting is idempotent and stopping cancels the pending firing.
        """
        self._sweep_task.start()

    def _sweep(self) -> None:
        now = self.simulator.now
        alive = self.alive_instances()
        to_reclaim = self.reclamation_policy.select_reclaims(now, alive)
        for instance in to_reclaim:
            self.reclaim_instance(instance)
        self.metrics.series("faas.reclaims_per_sweep").record(now, float(len(to_reclaim)))

    def stop_reclamation_sweeps(self) -> None:
        """Cancel the pending sweep and stop rescheduling."""
        self._sweep_task.stop()

    def reclaim_instance(self, instance: FunctionInstance) -> None:
        """Forcibly reclaim a specific instance (also used by tests)."""
        if not instance.is_alive:
            return
        instance.reclaim(self.simulator.now)
        self.host_manager.remove_function(instance.instance_id)
        self.metrics.counter("faas.reclaims").increment()
        self.metrics.series("faas.reclaim_events").record(self.simulator.now, 1.0)
        for listener in self._reclaim_listeners:
            listener(instance)

    # --- state access used by the cache runtime ------------------------------------
    def instance_state(self, instance: FunctionInstance) -> dict:
        """The mutable runtime state of an alive instance.

        Raises:
            FunctionReclaimedError: if the instance has been reclaimed (its
                state no longer exists anywhere).
        """
        if not instance.is_alive:
            raise FunctionReclaimedError(instance.instance_id)
        return instance.runtime_state

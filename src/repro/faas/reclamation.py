"""Provider-initiated function reclamation policies.

Section 4.1 of the paper measures how AWS reclaims warm functions over a
24-hour window under different warm-up frequencies and finds two regimes:

* **Spiky** (the 9-minute warm-up trace from Aug 2019): nearly the whole
  fleet is reclaimed in bursts roughly every 6 hours.
* **Continuous** (1-minute warm-up traces): a modest number of functions is
  reclaimed every hour, with the per-minute reclaim count following roughly a
  Zipf distribution on some days and a Poisson distribution on others.

Each policy here reproduces one of those regimes.  Policies are queried by
the platform once per simulated minute and return the set of instances to
reclaim, so the same machinery drives both the Figure 8/9 reproductions and
the availability seen by the production-trace replay.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.faas.function import FunctionInstance
from repro.utils.rng import SeededRNG
from repro.utils.units import HOUR, MINUTE


class ReclamationPolicy(abc.ABC):
    """Interface for provider reclamation behaviour.

    ``select_reclaims`` is called once per sweep interval (one simulated
    minute by default) with every *alive* instance and returns the instances
    to reclaim during this sweep.
    """

    @abc.abstractmethod
    def select_reclaims(
        self, now: float, instances: Sequence[FunctionInstance]
    ) -> list[FunctionInstance]:
        """Choose which instances the provider reclaims at time ``now``."""

    def describe(self) -> dict[str, float | str]:
        """Human-readable parameters, for experiment reports."""
        return {"policy": type(self).__name__}


class NoReclamationPolicy(ReclamationPolicy):
    """The provider never reclaims anything (useful for unit tests)."""

    def select_reclaims(self, now, instances):
        return []


class IdleTimeoutPolicy(ReclamationPolicy):
    """Reclaim instances idle longer than a threshold (default 27 minutes).

    This models the baseline "keep-alive" behaviour reported by the
    measurement study the paper cites: an un-invoked function is kept for at
    most ~27 minutes.  Warm-up invocations reset the idle clock, which is why
    InfiniCache's 1-minute warm-up keeps functions alive.
    """

    def __init__(self, idle_timeout_s: float = 27 * MINUTE):
        if idle_timeout_s <= 0:
            raise ConfigurationError("idle timeout must be positive")
        self.idle_timeout_s = idle_timeout_s

    def select_reclaims(self, now, instances):
        return [
            instance
            for instance in instances
            if instance.idle_seconds(now) >= self.idle_timeout_s
        ]

    def describe(self):
        return {"policy": "IdleTimeout", "idle_timeout_s": self.idle_timeout_s}


class PeriodicSpikePolicy(ReclamationPolicy):
    """Mass reclamation bursts roughly every ``spike_interval`` (Fig. 8, 9-min trace).

    Between spikes only a trickle of instances is reclaimed; at each spike a
    large fraction of the fleet goes at once, spread over a window of a few
    sweeps so the figure shows a cluster rather than a single vertical line.
    """

    def __init__(
        self,
        rng: SeededRNG,
        spike_interval_s: float = 6 * HOUR,
        spike_fraction: float = 0.95,
        spike_window_s: float = 30 * MINUTE,
        background_rate_per_sweep: float = 0.2,
    ):
        if spike_interval_s <= 0 or spike_window_s <= 0:
            raise ConfigurationError("spike interval and window must be positive")
        if not 0 < spike_fraction <= 1:
            raise ConfigurationError("spike fraction must be in (0, 1]")
        self.rng = rng
        self.spike_interval_s = spike_interval_s
        self.spike_fraction = spike_fraction
        self.spike_window_s = spike_window_s
        self.background_rate_per_sweep = background_rate_per_sweep

    def _in_spike(self, now: float) -> bool:
        phase = now % self.spike_interval_s
        # The spike window is centred on each multiple of the interval
        # (excluding time zero, when nothing has been cached yet).
        return now >= self.spike_interval_s - self.spike_window_s / 2 and (
            phase <= self.spike_window_s / 2
            or phase >= self.spike_interval_s - self.spike_window_s / 2
        )

    def select_reclaims(self, now, instances):
        alive = list(instances)
        if not alive:
            return []
        if self._in_spike(now):
            # Spread the spike over the window: each sweep inside the window
            # reclaims a share of the fleet so that by the end of the window
            # roughly spike_fraction of it has been reclaimed.
            sweeps_in_window = max(1, int(self.spike_window_s / MINUTE))
            per_sweep_probability = min(1.0, self.spike_fraction / sweeps_in_window * 2.5)
            return [inst for inst in alive if self.rng.random() < per_sweep_probability]
        expected = self.background_rate_per_sweep
        count = min(len(alive), self.rng.poisson(expected))
        if count == 0:
            return []
        indices = self.rng.sample_without_replacement(len(alive), count)
        return [alive[i] for i in indices]

    def describe(self):
        return {
            "policy": "PeriodicSpike",
            "spike_interval_s": self.spike_interval_s,
            "spike_fraction": self.spike_fraction,
        }


class PoissonReclamationPolicy(ReclamationPolicy):
    """Continuous reclamation with a Poisson number of reclaims per sweep.

    Matches the Oct/Dec/Jan traces of Figure 9: the number of functions
    reclaimed per minute is Poisson-distributed with a small mean, giving the
    steady hourly reclaim rate (e.g. ~36/hour in the 12/26/19 trace) used by
    the availability analysis.
    """

    def __init__(self, rng: SeededRNG, mean_reclaims_per_sweep: float = 0.6):
        if mean_reclaims_per_sweep < 0:
            raise ConfigurationError("mean reclaims per sweep must be non-negative")
        self.rng = rng
        self.mean_reclaims_per_sweep = mean_reclaims_per_sweep

    def select_reclaims(self, now, instances):
        alive = list(instances)
        if not alive:
            return []
        count = min(len(alive), self.rng.poisson(self.mean_reclaims_per_sweep))
        if count == 0:
            return []
        indices = self.rng.sample_without_replacement(len(alive), count)
        return [alive[i] for i in indices]

    def describe(self):
        return {
            "policy": "Poisson",
            "mean_reclaims_per_sweep": self.mean_reclaims_per_sweep,
        }


class ZipfBurstReclamationPolicy(ReclamationPolicy):
    """Continuous reclamation whose per-sweep count follows a bounded Zipf law.

    Matches the Aug/Sep/Nov traces of Figure 9: most sweeps reclaim zero or
    one function, but occasionally a burst reclaims tens at once, giving the
    heavy-tailed per-minute distribution the paper reports.
    """

    def __init__(
        self,
        rng: SeededRNG,
        exponent: float = 2.0,
        max_burst: int = 40,
        burst_probability: float = 0.15,
        sibling_correlation: float = 0.5,
    ):
        if exponent <= 0:
            raise ConfigurationError("Zipf exponent must be positive")
        if max_burst < 1:
            raise ConfigurationError("max burst must be at least 1")
        if not 0 <= burst_probability <= 1:
            raise ConfigurationError("burst probability must be in [0, 1]")
        if not 0 <= sibling_correlation <= 1:
            raise ConfigurationError("sibling correlation must be in [0, 1]")
        self.rng = rng
        self.exponent = exponent
        self.max_burst = max_burst
        self.burst_probability = burst_probability
        self.sibling_correlation = sibling_correlation

    def select_reclaims(self, now, instances):
        alive = list(instances)
        if not alive:
            return []
        if self.rng.random() >= self.burst_probability:
            return []
        # Rank 0 of the bounded Zipf corresponds to a burst of size 1.
        burst = self.rng.bounded_zipf(self.max_burst, self.exponent) + 1
        count = min(len(alive), burst)
        indices = self.rng.sample_without_replacement(len(alive), count)
        selected = [alive[i] for i in indices]
        # Reclamations are partly correlated at the *function* level: when the
        # provider decides to drop a function's cached containers, it often
        # drops all of them, taking a backup peer down together with its
        # primary.  This correlation is what keeps the paper's RESET count
        # non-zero even with delta-sync backup enabled.
        if self.sibling_correlation > 0:
            chosen_ids = {id(instance) for instance in selected}
            for instance in list(selected):
                if self.rng.random() >= self.sibling_correlation:
                    continue
                for sibling in alive:
                    if (
                        sibling.function_name == instance.function_name
                        and id(sibling) not in chosen_ids
                    ):
                        selected.append(sibling)
                        chosen_ids.add(id(sibling))
        return selected

    def describe(self):
        return {
            "policy": "ZipfBurst",
            "exponent": self.exponent,
            "max_burst": self.max_burst,
            "burst_probability": self.burst_probability,
            "sibling_correlation": self.sibling_correlation,
        }

"""Simulated Function-as-a-Service platform (an AWS Lambda stand-in).

The paper treats AWS Lambda as a black box with a handful of externally
observable behaviours; this package reimplements exactly those behaviours so
the cache above it faces the same constraints:

* configurable memory 128-3008 MB in 64 MB steps, CPU and network bandwidth
  scaling with memory (:mod:`repro.faas.limits`);
* per-invocation fee plus duration billed in 100 ms cycles of GB-seconds
  (:mod:`repro.faas.billing`);
* functions placed onto ~3 GB VM hosts by a greedy bin-packing heuristic, so
  small functions share a host NIC (:mod:`repro.faas.host`);
* warm instances cached between invocations, cold starts on first use, and
  provider-initiated reclamation following the empirical patterns of
  Figures 8-9 (:mod:`repro.faas.reclamation`);
* only outbound connections; concurrent invocations of one function create
  peer replicas (auto-scaling), which the backup protocol relies on
  (:mod:`repro.faas.platform`).
"""

from repro.faas.limits import LambdaLimits, bandwidth_for_memory, cpu_for_memory
from repro.faas.billing import BillingModel, InvocationCharge, LambdaPricing
from repro.faas.host import VMHost, HostManager
from repro.faas.function import FunctionInstance, FunctionState
from repro.faas.reclamation import (
    ReclamationPolicy,
    IdleTimeoutPolicy,
    PeriodicSpikePolicy,
    PoissonReclamationPolicy,
    ZipfBurstReclamationPolicy,
    NoReclamationPolicy,
)
from repro.faas.platform import FaaSPlatform, FunctionConfig, InvocationResult

__all__ = [
    "LambdaLimits",
    "bandwidth_for_memory",
    "cpu_for_memory",
    "BillingModel",
    "InvocationCharge",
    "LambdaPricing",
    "VMHost",
    "HostManager",
    "FunctionInstance",
    "FunctionState",
    "ReclamationPolicy",
    "IdleTimeoutPolicy",
    "PeriodicSpikePolicy",
    "PoissonReclamationPolicy",
    "ZipfBurstReclamationPolicy",
    "NoReclamationPolicy",
    "FaaSPlatform",
    "FunctionConfig",
    "InvocationResult",
]

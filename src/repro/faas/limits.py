"""AWS Lambda resource limits and memory-proportional scaling rules.

Numbers come straight from the paper (Section 2.2 and Section 5 setup):

* memory configurable from 128 MB to 3008 MB in 64 MB increments;
* CPU allocated linearly in proportion to memory, capped at 1.7 cores;
* maximum execution time of 900 seconds;
* no inbound TCP connections (enforced by the platform API shape, not here);
* measured function-to-EC2 bandwidth of roughly 50 MB/s for the smallest
  functions up to about 160 MB/s for 3008 MB functions;
* Lambda-hosting VMs have about 3 GB of memory, so a >= 1536 MB function gets
  a host to itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.utils.units import MB, MIB

#: Smallest configurable function memory (bytes).
MIN_MEMORY_BYTES = 128 * MIB

#: Largest configurable function memory (bytes).
MAX_MEMORY_BYTES = 3008 * MIB

#: Memory must be a multiple of this step.
MEMORY_STEP_BYTES = 64 * MIB

#: Hard cap on a single invocation's duration (seconds).
MAX_EXECUTION_SECONDS = 900.0

#: CPU cores are allocated proportionally to memory and capped here.
MAX_CPU_CORES = 1.7

#: Memory of the VM hosts that run Lambda functions (bytes).  The paper
#: reports "approximately 3 GB"; we use 3008 MiB so one maximal function
#: exactly fills a host.
HOST_MEMORY_BYTES = 3008 * MIB

#: Host NIC capacity (bytes/second).  Chosen so a single co-located 256 MB
#: function pair exhibits the contention visible in Figure 4 while a lone
#: 3008 MB function can reach its ~160 MB/s ceiling.
HOST_NIC_BANDWIDTH = 200 * MB

#: Measured per-function bandwidth endpoints from the paper's iperf3 runs.
MIN_FUNCTION_BANDWIDTH = 50 * MB
MAX_FUNCTION_BANDWIDTH = 160 * MB

#: Average warm-invocation overhead observed by the authors (seconds).
WARM_INVOCATION_OVERHEAD = 0.013

#: Cold-start penalty (seconds).  The paper does not rely on a precise value
#: (cold starts are not billed); 150 ms is in the range reported for Go
#: runtimes by the measurement study the paper cites.
COLD_START_OVERHEAD = 0.150


def validate_memory_bytes(memory_bytes: int) -> int:
    """Validate and return a function memory size.

    Raises:
        ConfigurationError: if the size is out of range or not a multiple of
            the 64 MB step.
    """
    if memory_bytes < MIN_MEMORY_BYTES or memory_bytes > MAX_MEMORY_BYTES:
        raise ConfigurationError(
            f"Lambda memory must be between {MIN_MEMORY_BYTES} and {MAX_MEMORY_BYTES} bytes, "
            f"got {memory_bytes}"
        )
    if memory_bytes % MEMORY_STEP_BYTES != 0:
        raise ConfigurationError(
            f"Lambda memory must be a multiple of {MEMORY_STEP_BYTES} bytes, got {memory_bytes}"
        )
    return int(memory_bytes)


def cpu_for_memory(memory_bytes: int) -> float:
    """CPU cores allocated to a function of the given memory size.

    AWS allocates CPU linearly with memory; a full 1792 MB function gets one
    full vCPU and the allocation is capped at 1.7 cores.
    """
    validate_memory_bytes(memory_bytes)
    cores = memory_bytes / (1792 * MIB)
    return min(cores, MAX_CPU_CORES)


def bandwidth_for_memory(memory_bytes: int) -> float:
    """Network bandwidth (bytes/s) available to a function of this size.

    Linear interpolation between the measured 50 MB/s (128 MB function) and
    160 MB/s (3008 MB function) endpoints reported in the paper's setup.
    """
    validate_memory_bytes(memory_bytes)
    span = MAX_MEMORY_BYTES - MIN_MEMORY_BYTES
    fraction = (memory_bytes - MIN_MEMORY_BYTES) / span
    return MIN_FUNCTION_BANDWIDTH + fraction * (MAX_FUNCTION_BANDWIDTH - MIN_FUNCTION_BANDWIDTH)


def usable_cache_bytes(memory_bytes: int, runtime_overhead_fraction: float = 0.10) -> int:
    """Memory available for cached chunks after runtime overhead.

    The Go runtime, connection buffers, and the CLOCK bookkeeping consume a
    slice of the configured memory; the paper sizes pools with the full
    configured value, so the default overhead is kept small.
    """
    validate_memory_bytes(memory_bytes)
    if not 0.0 <= runtime_overhead_fraction < 1.0:
        raise ConfigurationError(
            f"runtime overhead fraction must be in [0, 1), got {runtime_overhead_fraction}"
        )
    return int(memory_bytes * (1.0 - runtime_overhead_fraction))


@dataclass(frozen=True)
class LambdaLimits:
    """Bundle of platform limits, kept as an object so tests can override them."""

    min_memory_bytes: int = MIN_MEMORY_BYTES
    max_memory_bytes: int = MAX_MEMORY_BYTES
    memory_step_bytes: int = MEMORY_STEP_BYTES
    max_execution_seconds: float = MAX_EXECUTION_SECONDS
    max_cpu_cores: float = MAX_CPU_CORES
    host_memory_bytes: int = HOST_MEMORY_BYTES
    host_nic_bandwidth: float = HOST_NIC_BANDWIDTH
    warm_invocation_overhead: float = WARM_INVOCATION_OVERHEAD
    cold_start_overhead: float = COLD_START_OVERHEAD

    def functions_per_host(self, memory_bytes: int) -> int:
        """How many functions of this size fit on one VM host."""
        validate_memory_bytes(memory_bytes)
        return max(1, self.host_memory_bytes // memory_bytes)

"""Lambda billing model: per-invocation fee plus 100 ms-rounded GB-seconds.

The paper's cost analysis (Section 4.3) and Figure 13/17 reproductions all
rest on this arithmetic, so it lives in one audited module.  Prices are the
ones quoted in the paper:

* $0.02 per 1 million invocations — i.e. $0.00000002 per request (the paper's
  rounding; the 2020 list price was $0.20/M, but we reproduce the paper's
  stated figure so its cost results are comparable);
* $0.0000166667 per GB-second of configured memory, with the duration of each
  invocation rounded *up* to the nearest 100 ms billing cycle;
* function start-up (cold start) time is not billed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.utils.units import GIB

#: Billing cycle granularity in seconds (100 ms).
BILLING_CYCLE_SECONDS = 0.1


@dataclass(frozen=True)
class LambdaPricing:
    """Unit prices for the serverless platform."""

    price_per_invocation: float = 0.02 / 1_000_000
    price_per_gb_second: float = 0.0000166667

    def __post_init__(self):
        if self.price_per_invocation < 0 or self.price_per_gb_second < 0:
            raise ConfigurationError("prices must be non-negative")


def ceil_to_billing_cycle(duration_s: float) -> float:
    """Round a duration up to the nearest 100 ms billing cycle.

    Zero-duration invocations are still billed for one cycle, matching AWS
    behaviour and the paper's ``ceil100`` operator.
    """
    if duration_s < 0:
        raise ConfigurationError(f"duration must be non-negative, got {duration_s}")
    cycles = max(1, math.ceil(round(duration_s / BILLING_CYCLE_SECONDS, 9)))
    return cycles * BILLING_CYCLE_SECONDS


@dataclass(frozen=True)
class InvocationCharge:
    """The cost breakdown of a single billed invocation."""

    invocation_fee: float
    duration_fee: float
    billed_duration_s: float

    @property
    def total(self) -> float:
        """Total dollars charged for this invocation."""
        return self.invocation_fee + self.duration_fee


@dataclass
class BillingModel:
    """Accumulates charges for a tenant across many invocations.

    Charges can be tagged with a free-form category (``"serving"``,
    ``"warmup"``, ``"backup"``) so experiments can reproduce the cost
    breakdowns of Figure 13 without re-deriving them.
    """

    pricing: LambdaPricing = field(default_factory=LambdaPricing)
    total_invocations: int = 0
    total_billed_seconds: float = 0.0
    total_cost: float = 0.0
    cost_by_category: dict[str, float] = field(default_factory=dict)

    def charge_invocation(
        self, memory_bytes: int, duration_s: float, category: str = "serving"
    ) -> InvocationCharge:
        """Charge one invocation of a function with the given memory size.

        Args:
            memory_bytes: the function's *configured* memory (AWS bills the
                configured amount, not the used amount).
            duration_s: the execution duration to bill (cold-start time must
                be excluded by the caller; the platform does this).
            category: accounting bucket for cost breakdowns.
        """
        billed = ceil_to_billing_cycle(duration_s)
        memory_gb = memory_bytes / GIB
        invocation_fee = self.pricing.price_per_invocation
        duration_fee = billed * memory_gb * self.pricing.price_per_gb_second
        charge = InvocationCharge(
            invocation_fee=invocation_fee,
            duration_fee=duration_fee,
            billed_duration_s=billed,
        )
        self.total_invocations += 1
        self.total_billed_seconds += billed
        self.total_cost += charge.total
        self.cost_by_category[category] = self.cost_by_category.get(category, 0.0) + charge.total
        return charge

    def breakdown(self) -> dict[str, float]:
        """Cost per category plus the total."""
        result = dict(sorted(self.cost_by_category.items()))
        result["total"] = self.total_cost
        return result

    def reset(self) -> None:
        """Clear all accumulated charges (used between experiment phases)."""
        self.total_invocations = 0
        self.total_billed_seconds = 0.0
        self.total_cost = 0.0
        self.cost_by_category.clear()

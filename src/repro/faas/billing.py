"""Lambda billing model: per-invocation fee plus 100 ms-rounded GB-seconds.

The paper's cost analysis (Section 4.3) and Figure 13/17 reproductions all
rest on this arithmetic, so it lives in one audited module.  Prices are the
ones quoted in the paper:

* $0.02 per 1 million invocations — i.e. $0.00000002 per request (the paper's
  rounding; the 2020 list price was $0.20/M, but we reproduce the paper's
  stated figure so its cost results are comparable);
* $0.0000166667 per GB-second of configured memory, with the duration of each
  invocation rounded *up* to the nearest 100 ms billing cycle;
* function start-up (cold start) time is not billed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.utils.units import GIB

#: Billing cycle granularity in seconds (100 ms).
BILLING_CYCLE_SECONDS = 0.1

#: Chargeback label for work no tenant caused: single-tenant deployments,
#: maintenance on empty nodes, and any key outside a tenant namespace.  The
#: label contains the tenant/key separator, so it can never collide with a
#: registered tenant id.
UNATTRIBUTED_TENANT = "::cluster::"


@dataclass(frozen=True)
class LambdaPricing:
    """Unit prices for the serverless platform."""

    price_per_invocation: float = 0.02 / 1_000_000
    price_per_gb_second: float = 0.0000166667

    def __post_init__(self):
        if self.price_per_invocation < 0 or self.price_per_gb_second < 0:
            raise ConfigurationError("prices must be non-negative")


def ceil_to_billing_cycle(duration_s: float) -> float:
    """Round a duration up to the nearest 100 ms billing cycle.

    Zero-duration invocations are still billed for one cycle, matching AWS
    behaviour and the paper's ``ceil100`` operator.
    """
    if duration_s < 0:
        raise ConfigurationError(f"duration must be non-negative, got {duration_s}")
    cycles = max(1, math.ceil(round(duration_s / BILLING_CYCLE_SECONDS, 9)))
    return cycles * BILLING_CYCLE_SECONDS


def attribution_shares(attribution: dict[str, float] | None) -> dict[str, float]:
    """Normalise chargeback weights into per-tenant shares that sum to 1.

    Non-positive weights are dropped; omitted, empty, or zero-sum weights
    fall back to :data:`UNATTRIBUTED_TENANT`.  This is the single definition
    of the fallback policy — the billed-session layer splits busy time with
    the same rules, which is what keeps session-level attribution and
    invocation-level billing conserving the same totals.
    """
    if attribution:
        weights = {t: w for t, w in attribution.items() if w > 0.0}
        total = sum(weights.values())
        if total > 0.0:
            return {tenant: weight / total for tenant, weight in weights.items()}
    return {UNATTRIBUTED_TENANT: 1.0}


@dataclass(frozen=True)
class InvocationCharge:
    """The cost breakdown of a single billed invocation."""

    invocation_fee: float
    duration_fee: float
    billed_duration_s: float

    @property
    def total(self) -> float:
        """Total dollars charged for this invocation."""
        return self.invocation_fee + self.duration_fee


@dataclass
class BillingModel:
    """Accumulates charges for the account across many invocations.

    Charges can be tagged with a free-form category (``"serving"``,
    ``"warmup"``, ``"backup"``) so experiments can reproduce the cost
    breakdowns of Figure 13 without re-deriving them, and with a per-tenant
    *attribution* — relative weights (busy seconds, bytes synced) naming
    which tenants caused the invocation.  Each charge's dollars and
    GB-seconds are split pro-rata over those weights, so the per-tenant
    ledgers always sum to the account-wide bill (chargeback conservation).
    Unweighted work lands under :data:`UNATTRIBUTED_TENANT`.
    """

    pricing: LambdaPricing = field(default_factory=LambdaPricing)
    total_invocations: int = 0
    total_billed_seconds: float = 0.0
    total_gb_seconds: float = 0.0
    total_cost: float = 0.0
    cost_by_category: dict[str, float] = field(default_factory=dict)
    cost_by_tenant: dict[str, float] = field(default_factory=dict)
    gb_seconds_by_tenant: dict[str, float] = field(default_factory=dict)
    invocation_share_by_tenant: dict[str, float] = field(default_factory=dict)

    def charge_invocation(
        self,
        memory_bytes: int,
        duration_s: float,
        category: str = "serving",
        attribution: dict[str, float] | None = None,
    ) -> InvocationCharge:
        """Charge one invocation of a function with the given memory size.

        Args:
            memory_bytes: the function's *configured* memory (AWS bills the
                configured amount, not the used amount).
            duration_s: the execution duration to bill (cold-start time must
                be excluded by the caller; the platform does this).
            category: accounting bucket for cost breakdowns.
            attribution: relative per-tenant weights for chargeback; omitted,
                empty, or zero-sum weights charge the whole invocation to
                :data:`UNATTRIBUTED_TENANT`.
        """
        billed = ceil_to_billing_cycle(duration_s)
        memory_gb = memory_bytes / GIB
        invocation_fee = self.pricing.price_per_invocation
        duration_fee = billed * memory_gb * self.pricing.price_per_gb_second
        charge = InvocationCharge(
            invocation_fee=invocation_fee,
            duration_fee=duration_fee,
            billed_duration_s=billed,
        )
        self.total_invocations += 1
        self.total_billed_seconds += billed
        self.total_gb_seconds += billed * memory_gb
        self.total_cost += charge.total
        self.cost_by_category[category] = self.cost_by_category.get(category, 0.0) + charge.total
        for tenant, share in attribution_shares(attribution).items():
            self.cost_by_tenant[tenant] = (
                self.cost_by_tenant.get(tenant, 0.0) + share * charge.total
            )
            self.gb_seconds_by_tenant[tenant] = (
                self.gb_seconds_by_tenant.get(tenant, 0.0) + share * billed * memory_gb
            )
            self.invocation_share_by_tenant[tenant] = (
                self.invocation_share_by_tenant.get(tenant, 0.0) + share
            )
        return charge

    def breakdown(self) -> dict[str, float]:
        """Cost per category plus the total."""
        result = dict(sorted(self.cost_by_category.items()))
        result["total"] = self.total_cost
        return result

    def tenant_breakdown(self) -> dict[str, dict[str, float]]:
        """Per-tenant chargeback ledger: dollars, GB-seconds, invocation share.

        The rows (including the :data:`UNATTRIBUTED_TENANT` row) sum to the
        account totals within floating-point tolerance.
        """
        rows: dict[str, dict[str, float]] = {}
        for tenant in sorted(self.cost_by_tenant):
            rows[tenant] = {
                "cost": self.cost_by_tenant[tenant],
                "gb_seconds": self.gb_seconds_by_tenant.get(tenant, 0.0),
                "invocations": self.invocation_share_by_tenant.get(tenant, 0.0),
            }
        return rows

    def publish_metrics(self, registry) -> None:
        """Export the ledgers as labelled gauges on a ``MetricRegistry``.

        Categories and tenants become label values (``billing_cost_dollars
        {category="serving"}``, ``billing_tenant_cost_dollars{tenant="a"}``),
        so one Prometheus scrape of the registry carries the same breakdowns
        as :meth:`breakdown` / :meth:`tenant_breakdown`.  Idempotent: gauges
        are overwritten, so republishing after more charges is safe.
        """
        registry.gauge("billing_invocations_total").set(float(self.total_invocations))
        registry.gauge("billing_billed_seconds_total").set(self.total_billed_seconds)
        registry.gauge("billing_gb_seconds_total").set(self.total_gb_seconds)
        registry.gauge("billing_cost_dollars_total").set(self.total_cost)
        for category, cost in self.cost_by_category.items():
            registry.gauge("billing_cost_dollars", {"category": category}).set(cost)
        for tenant, cost in self.cost_by_tenant.items():
            registry.gauge("billing_tenant_cost_dollars", {"tenant": tenant}).set(cost)
        for tenant, gb_seconds in self.gb_seconds_by_tenant.items():
            registry.gauge("billing_tenant_gb_seconds", {"tenant": tenant}).set(gb_seconds)

    def reset(self) -> None:
        """Clear all accumulated charges (used between experiment phases)."""
        self.total_invocations = 0
        self.total_billed_seconds = 0.0
        self.total_gb_seconds = 0.0
        self.total_cost = 0.0
        self.cost_by_category.clear()
        self.cost_by_tenant.clear()
        self.gb_seconds_by_tenant.clear()
        self.invocation_share_by_tenant.clear()

"""ElastiCache (Redis) baseline.

The comparison target in Figures 11(f), 13, 15, 16 and Table 1.  The model
captures the properties the paper attributes to Redis that matter for large
objects:

* each node is **single-threaded**, so concurrent large GETs on the same node
  are serialised (the reason the 1-node ``cache.r5.8xlarge`` loses to
  InfiniCache's parallel chunk streaming);
* a cluster deployment shards keys across nodes by consistent hashing, so a
  10-node cluster gets 10-way parallelism *across* objects but still serves
  each single object from one node;
* memory is a hard capacity; inserting past it evicts LRU objects;
* the tenant pays the instance's hourly price whether or not it is used —
  the polar opposite of the pay-per-request model InfiniCache introduces.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.pricing import ElastiCacheInstanceType, elasticache_instance
from repro.exceptions import ConfigurationError
from repro.simulation.metrics import MetricRegistry
from repro.utils.units import MILLISECOND


@dataclass
class _CachedObject:
    key: str
    size: int
    inserted_at: float


class ElastiCacheNode:
    """A single Redis-like node: LRU keyed store with serialised I/O."""

    #: Fixed per-request overhead (network RTT + Redis command processing).
    REQUEST_OVERHEAD_S = 0.5 * MILLISECOND

    #: Effective throughput of a single large GET/PUT.  Redis is
    #: single-threaded, so one request's value is copied and written to the
    #: socket by one core; the paper's Figure 11(f) measurements (hundreds of
    #: milliseconds for 100 MB objects) put this in the few-hundred-MB/s
    #: range even though the instance NIC is 10-25 Gbps.
    PROCESSING_BANDWIDTH_BPS = 300 * 1_000_000

    def __init__(self, instance_type: ElastiCacheInstanceType, node_id: str = "node-0"):
        self.instance_type = instance_type
        self.node_id = node_id
        self._store: OrderedDict[str, _CachedObject] = OrderedDict()
        self.bytes_used = 0
        #: Virtual time at which the single worker thread becomes free.
        self._busy_until = 0.0
        self.evictions = 0

    @property
    def capacity_bytes(self) -> int:
        """Memory capacity of this node."""
        return self.instance_type.memory_bytes

    def contains(self, key: str) -> bool:
        """Whether the key is currently cached (does not touch LRU order)."""
        return key in self._store

    def _service_time(self, size: int) -> float:
        effective = min(self.PROCESSING_BANDWIDTH_BPS, self.instance_type.network_bandwidth_bps)
        return self.REQUEST_OVERHEAD_S + size / effective

    def _start_service(self, now: float, service_time: float) -> float:
        """Queue the request behind the single worker thread; return finish time."""
        start = max(now, self._busy_until)
        finish = start + service_time
        self._busy_until = finish
        return finish

    def get(self, key: str, now: float) -> Optional[float]:
        """Serve a GET; returns the completion latency in seconds or None on miss."""
        cached = self._store.get(key)
        if cached is None:
            return None
        self._store.move_to_end(key)
        finish = self._start_service(now, self._service_time(cached.size))
        return finish - now

    def put(self, key: str, size: int, now: float) -> float:
        """Insert (or overwrite) an object; returns the completion latency."""
        if size <= 0:
            raise ConfigurationError(f"object size must be positive, got {size}")
        if size > self.capacity_bytes:
            raise ConfigurationError(
                f"object of {size} bytes exceeds node capacity {self.capacity_bytes}"
            )
        existing = self._store.pop(key, None)
        if existing is not None:
            self.bytes_used -= existing.size
        while self.bytes_used + size > self.capacity_bytes:
            evicted_key, evicted = self._store.popitem(last=False)
            self.bytes_used -= evicted.size
            self.evictions += 1
        self._store[key] = _CachedObject(key=key, size=size, inserted_at=now)
        self.bytes_used += size
        finish = self._start_service(now, self._service_time(size))
        return finish - now

    def delete(self, key: str) -> bool:
        """Remove a key; returns whether it was present."""
        cached = self._store.pop(key, None)
        if cached is None:
            return False
        self.bytes_used -= cached.size
        return True

    def object_count(self) -> int:
        """Number of objects currently cached on this node."""
        return len(self._store)


class ElastiCacheCluster:
    """A 1-node or scale-out ElastiCache deployment with hourly billing."""

    def __init__(
        self,
        instance_type_name: str = "cache.r5.24xlarge",
        node_count: int = 1,
        metrics: MetricRegistry | None = None,
    ):
        if node_count < 1:
            raise ConfigurationError(f"node count must be >= 1, got {node_count}")
        self.instance_type = elasticache_instance(instance_type_name)
        self.nodes = [
            ElastiCacheNode(self.instance_type, node_id=f"node-{i}") for i in range(node_count)
        ]
        self.metrics = metrics or MetricRegistry()
        self.hits = 0
        self.misses = 0

    @property
    def node_count(self) -> int:
        """Number of nodes in the cluster."""
        return len(self.nodes)

    @property
    def capacity_bytes(self) -> int:
        """Aggregate memory capacity of the cluster."""
        return sum(node.capacity_bytes for node in self.nodes)

    def _node_for(self, key: str) -> ElastiCacheNode:
        return self.nodes[hash(key) % len(self.nodes)]

    def get(self, key: str, now: float) -> Optional[float]:
        """GET an object; returns latency seconds, or None on a miss."""
        latency = self._node_for(key).get(key, now)
        if latency is None:
            self.misses += 1
            self.metrics.counter("elasticache.misses").increment()
        else:
            self.hits += 1
            self.metrics.counter("elasticache.hits").increment()
        return latency

    def put(self, key: str, size: int, now: float) -> float:
        """PUT an object; returns latency seconds."""
        latency = self._node_for(key).put(key, size, now)
        self.metrics.counter("elasticache.puts").increment()
        return latency

    def contains(self, key: str) -> bool:
        """Whether the key is cached anywhere in the cluster."""
        return self._node_for(key).contains(key)

    def hit_ratio(self) -> float:
        """Fraction of GETs served from the cache so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def hourly_cost(self) -> float:
        """Dollars per hour for the whole cluster, used or not."""
        return self.instance_type.hourly_price * len(self.nodes)

    def cost_for_duration(self, duration_s: float) -> float:
        """Capacity-billed cost of running the cluster for ``duration_s`` seconds.

        ElastiCache bills by the hour; partial hours are rounded up, matching
        how the paper accumulates $518.40 over the 50-hour replay.
        """
        if duration_s < 0:
            raise ConfigurationError("duration must be non-negative")
        import math

        hours = math.ceil(duration_s / 3600.0) if duration_s > 0 else 0
        return hours * self.hourly_cost()

    def bytes_used(self) -> int:
        """Bytes currently cached across all nodes."""
        return sum(node.bytes_used for node in self.nodes)

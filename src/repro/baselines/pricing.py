"""Price tables for the baseline services.

ElastiCache instance prices are the on-demand us-east-1 prices current at the
paper's writing (early 2020); the key figure the paper quotes is that a
``cache.r5.24xlarge`` (635.61 GB) deployment costs $518.40 over the 50-hour
replay, i.e. $10.368/hour, which the table below reproduces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.utils.units import GB


@dataclass(frozen=True)
class ElastiCacheInstanceType:
    """One ElastiCache (Redis) node type."""

    name: str
    memory_bytes: int
    hourly_price: float
    network_bandwidth_bps: float

    def __post_init__(self):
        if self.memory_bytes <= 0 or self.hourly_price < 0 or self.network_bandwidth_bps <= 0:
            raise ConfigurationError(f"invalid instance type parameters for {self.name}")


#: Instance types used in the paper's evaluation (Section 5.1 and 5.2).
#: Memory figures are the usable Redis memory AWS lists for each type.
ELASTICACHE_INSTANCES: dict[str, ElastiCacheInstanceType] = {
    "cache.r5.xlarge": ElastiCacheInstanceType(
        name="cache.r5.xlarge",
        memory_bytes=int(26.32 * GB),
        hourly_price=0.431,
        network_bandwidth_bps=int(1.25 * GB),  # "up to 10 Gbps"
    ),
    "cache.r5.8xlarge": ElastiCacheInstanceType(
        name="cache.r5.8xlarge",
        memory_bytes=int(209.55 * GB),
        hourly_price=3.456,
        network_bandwidth_bps=int(1.25 * GB),
    ),
    "cache.r5.24xlarge": ElastiCacheInstanceType(
        name="cache.r5.24xlarge",
        memory_bytes=int(635.61 * GB),
        hourly_price=10.368,
        network_bandwidth_bps=int(3.125 * GB),  # 25 Gbps
    ),
}


def elasticache_instance(name: str) -> ElastiCacheInstanceType:
    """Look up an instance type by name.

    Raises:
        ConfigurationError: for unknown instance names, listing the options.
    """
    instance = ELASTICACHE_INSTANCES.get(name)
    if instance is None:
        raise ConfigurationError(
            f"unknown ElastiCache instance type {name!r}; "
            f"known types: {sorted(ELASTICACHE_INSTANCES)}"
        )
    return instance


@dataclass(frozen=True)
class S3Pricing:
    """Object-store pricing (standard tier, early-2020 us-east-1)."""

    price_per_gb_month: float = 0.023
    price_per_get: float = 0.0000004
    price_per_put: float = 0.000005

    def monthly_storage_cost(self, stored_bytes: int) -> float:
        """Cost of holding ``stored_bytes`` for one month."""
        return stored_bytes / GB * self.price_per_gb_month

"""Backing object store (an S3 stand-in).

Two roles in the reproduction:

1. The **miss path** for InfiniCache and ElastiCache: when the cache cannot
   serve an object (miss or unrecoverable chunk loss), the replayer performs
   a RESET — fetch from the object store and re-insert into the cache.
2. The **no-cache baseline** of Figures 15 and 16: the same trace replayed
   directly against the store.

The latency model is first-byte latency plus a bandwidth-bound body
transfer.  Default parameters give ~30 ms to first byte and ~15 MB/s of
single-stream GET throughput (the paper's registry-style replay issues one
plain GET per blob, without parallel range requests), which places S3 one to
two orders of magnitude behind the caches for large objects — the gap
Figure 15(b) and Figure 16 show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.pricing import S3Pricing
from repro.exceptions import ConfigurationError
from repro.utils.units import MB


@dataclass
class ObjectStore:
    """A durable, capacity-unbounded key-value object store."""

    first_byte_latency_s: float = 0.030
    bandwidth_bps: float = 15 * MB
    pricing: S3Pricing = field(default_factory=S3Pricing)

    def __post_init__(self):
        if self.first_byte_latency_s < 0 or self.bandwidth_bps <= 0:
            raise ConfigurationError("invalid object store latency/bandwidth")
        self._objects: dict[str, int] = {}
        self.get_count = 0
        self.put_count = 0

    def put(self, key: str, size: int) -> float:
        """Store (or overwrite) an object; returns the upload latency in seconds."""
        if size <= 0:
            raise ConfigurationError(f"object size must be positive, got {size}")
        self._objects[key] = size
        self.put_count += 1
        return self.first_byte_latency_s + size / self.bandwidth_bps

    def get(self, key: str) -> Optional[tuple[int, float]]:
        """Fetch an object.

        Returns:
            ``(size, latency_seconds)`` or ``None`` if the key has never been
            stored.  The replayer pre-populates the store with every object in
            the trace, so a ``None`` indicates a workload bug.
        """
        size = self._objects.get(key)
        if size is None:
            return None
        self.get_count += 1
        return size, self.first_byte_latency_s + size / self.bandwidth_bps

    def contains(self, key: str) -> bool:
        """Whether an object with this key exists."""
        return key in self._objects

    def size_of(self, key: str) -> Optional[int]:
        """Stored size of a key, if present."""
        return self._objects.get(key)

    def object_count(self) -> int:
        """Number of stored objects."""
        return len(self._objects)

    def total_bytes(self) -> int:
        """Sum of stored object sizes."""
        return sum(self._objects.values())

    def request_cost(self) -> float:
        """Per-request cost accumulated so far (GETs + PUTs)."""
        return (
            self.get_count * self.pricing.price_per_get
            + self.put_count * self.pricing.price_per_put
        )

"""Baseline systems InfiniCache is compared against in the paper.

* :mod:`repro.baselines.pricing` — price tables for ElastiCache instance
  types and S3, plus the Lambda prices re-exported for convenience.
* :mod:`repro.baselines.elasticache` — a Redis-like in-memory cache: one
  single-threaded node per instance (large I/Os are serialised, the reason
  the 1-node deployment loses to InfiniCache in Figure 11f), optional
  scale-out clustering over multiple nodes, LRU eviction, and hourly
  capacity-based billing.
* :mod:`repro.baselines.s3` — the backing object store used for the miss
  path and for the Figure 15/16 comparison: high first-byte latency and a
  bandwidth-bound transfer, billed per request and per GB-month (the paper's
  tenant-side comparison focuses on the cache cost, but the model keeps the
  accounting anyway).
"""

from repro.baselines.pricing import (
    ELASTICACHE_INSTANCES,
    ElastiCacheInstanceType,
    S3Pricing,
)
from repro.baselines.elasticache import ElastiCacheCluster, ElastiCacheNode
from repro.baselines.s3 import ObjectStore

__all__ = [
    "ELASTICACHE_INSTANCES",
    "ElastiCacheInstanceType",
    "S3Pricing",
    "ElastiCacheCluster",
    "ElastiCacheNode",
    "ObjectStore",
]

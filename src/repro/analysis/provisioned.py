"""Provisioned-concurrency economics (paper Section 6, "Service Provider's
Policy Changes").

In December 2019 — while the paper was being written — AWS launched
*provisioned concurrency*: a tenant can pay $0.015 per GB per hour to keep a
number of Lambda instances pinned warm.  The paper points out that this is
essentially a capacity-billed pricing model (like EC2/ElastiCache) layered on
top of FaaS, and frames it as an alternative the provider might push tenants
toward in response to systems like InfiniCache.

This module extends the Section 4.3 cost model with that option so the three
strategies can be compared for any deployment size and access rate:

* **InfiniCache** — pay per invocation + duration, plus warm-up and backup
  maintenance (the opportunistic approach the paper builds);
* **Provisioned concurrency** — pay the hourly pinning fee for every function
  in the pool plus (reduced-rate) invocation costs; no warm-up or backup is
  needed because the provider guarantees residency;
* **ElastiCache** — the conventional capacity-billed cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cost_model import CostModel, CostModelParams
from repro.baselines.pricing import elasticache_instance
from repro.exceptions import ConfigurationError
from repro.faas.billing import ceil_to_billing_cycle
from repro.utils.units import GIB


@dataclass(frozen=True)
class ProvisionedConcurrencyPricing:
    """AWS provisioned-concurrency list prices at the paper's writing."""

    #: Hourly fee per GB of provisioned (pinned) function memory.
    price_per_gb_hour: float = 0.015
    #: Duration price for *execution* on provisioned instances (discounted
    #: relative to on-demand Lambda).
    price_per_gb_second: float = 0.0000097222
    #: Per-invocation request fee (unchanged from on-demand Lambda).
    price_per_invocation: float = 0.02 / 1_000_000

    def __post_init__(self):
        if min(self.price_per_gb_hour, self.price_per_gb_second,
               self.price_per_invocation) < 0:
            raise ConfigurationError("prices must be non-negative")


class ProvisionedConcurrencyModel:
    """Hourly cost of running the cache pool on provisioned concurrency."""

    def __init__(
        self,
        total_nodes: int = 400,
        memory_bytes: int = int(1.5 * GIB),
        serving_duration_ms: float = 100.0,
        pricing: ProvisionedConcurrencyPricing | None = None,
    ):
        if total_nodes < 1:
            raise ConfigurationError("total_nodes must be >= 1")
        if memory_bytes <= 0:
            raise ConfigurationError("memory must be positive")
        if serving_duration_ms < 0:
            raise ConfigurationError("serving duration must be non-negative")
        self.total_nodes = total_nodes
        self.memory_bytes = memory_bytes
        self.serving_duration_ms = serving_duration_ms
        self.pricing = pricing or ProvisionedConcurrencyPricing()

    @property
    def memory_gb(self) -> float:
        """Pool memory per function in GB."""
        return self.memory_bytes / GIB

    def pinning_cost_per_hour(self) -> float:
        """The capacity-style fee for keeping the whole pool provisioned."""
        return self.total_nodes * self.memory_gb * self.pricing.price_per_gb_hour

    def serving_cost_per_hour(self, invocations_per_hour: float) -> float:
        """Execution cost on top of the pinning fee."""
        if invocations_per_hour < 0:
            raise ConfigurationError("invocation rate must be non-negative")
        billed = ceil_to_billing_cycle(self.serving_duration_ms / 1000.0)
        return invocations_per_hour * (
            self.pricing.price_per_invocation
            + billed * self.memory_gb * self.pricing.price_per_gb_second
        )

    def total_cost_per_hour(self, invocations_per_hour: float) -> float:
        """Pinning plus execution for an hourly invocation rate."""
        return self.pinning_cost_per_hour() + self.serving_cost_per_hour(invocations_per_hour)


@dataclass
class StrategyComparison:
    """Hourly cost of the three deployment strategies at one access rate."""

    object_requests_per_hour: float
    infinicache: float
    provisioned_concurrency: float
    elasticache: float

    @property
    def cheapest(self) -> str:
        """Name of the cheapest strategy at this rate."""
        options = {
            "infinicache": self.infinicache,
            "provisioned_concurrency": self.provisioned_concurrency,
            "elasticache": self.elasticache,
        }
        return min(options, key=options.get)


def compare_strategies(
    object_requests_per_hour: float,
    chunks_per_object: int = 12,
    total_nodes: int = 400,
    memory_bytes: int = int(1.5 * GIB),
    elasticache_instance_name: str = "cache.r5.24xlarge",
) -> StrategyComparison:
    """Compare InfiniCache, provisioned concurrency, and ElastiCache.

    ``object_requests_per_hour`` is the application-level GET rate; both
    serverless options fan each GET into ``chunks_per_object`` invocations.
    """
    if object_requests_per_hour < 0:
        raise ConfigurationError("request rate must be non-negative")
    invocations = object_requests_per_hour * chunks_per_object

    infinicache_model = CostModel(
        CostModelParams(total_nodes=total_nodes, memory_bytes=memory_bytes)
    )
    infinicache_cost = (
        infinicache_model.warmup_cost_per_hour()
        + infinicache_model.backup_cost_per_hour()
        + infinicache_model.serving_cost_per_hour(invocations)
    )
    provisioned = ProvisionedConcurrencyModel(
        total_nodes=total_nodes, memory_bytes=memory_bytes
    ).total_cost_per_hour(invocations)
    elasticache = elasticache_instance(elasticache_instance_name).hourly_price

    return StrategyComparison(
        object_requests_per_hour=object_requests_per_hour,
        infinicache=infinicache_cost,
        provisioned_concurrency=provisioned,
        elasticache=elasticache,
    )

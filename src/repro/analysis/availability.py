"""Data-availability model (paper Section 4.3, Equations 1-3).

Setting: a pool of ``N`` Lambda nodes stores objects erasure-coded into
``n = d + p`` chunks placed on distinct nodes chosen uniformly at random.
During one observation interval the provider reclaims ``r`` nodes.  An object
is lost when at least ``m = p + 1`` of its chunks sat on reclaimed nodes.

* Equation 1 gives ``p_i``: the probability that exactly ``i`` of an object's
  chunks are on the ``r`` reclaimed nodes (a hypergeometric term).
* ``P(r) = sum_{i=m..n} p_i`` is the object-loss probability given ``r``
  reclaims (Equation 2's inner sum).
* Equation 2 averages ``P(r)`` over the distribution ``pd(r)`` of the number
  of reclaimed nodes per interval, which the paper estimates empirically
  (Figure 9).
* Equation 3 is the paper's simplification ``P(r) ≈ p_m``, valid because
  ``p_m / p_{m+1}`` is large for realistic parameters.

The model here computes both the exact and the simplified forms so the
reproduction can verify the approximation claim (e.g. ``p_3/p_4 = 18.8`` for
``N=400``, RS(10+2), ``r=12``).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Callable, Mapping

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class AvailabilityModel:
    """Object-loss probability calculator for one InfiniCache deployment."""

    total_nodes: int
    data_shards: int
    parity_shards: int

    def __post_init__(self):
        if self.total_nodes < 1:
            raise ConfigurationError("total_nodes must be >= 1")
        if self.data_shards < 1 or self.parity_shards < 0:
            raise ConfigurationError("invalid erasure code")
        if self.total_chunks > self.total_nodes:
            raise ConfigurationError(
                "the erasure stripe cannot be wider than the node pool"
            )

    @property
    def total_chunks(self) -> int:
        """n = d + p chunks per object."""
        return self.data_shards + self.parity_shards

    @property
    def min_chunks_for_loss(self) -> int:
        """m = p + 1: the smallest number of lost chunks that loses the object."""
        return self.parity_shards + 1

    # ------------------------------------------------------------------ Equation 1
    def chunk_loss_probability(self, reclaimed: int, chunks_lost: int) -> float:
        """``p_i``: probability exactly ``chunks_lost`` chunks sit on reclaimed nodes.

        Hypergeometric: choose which ``i`` of the object's ``n`` chunk
        locations fall inside the ``r`` reclaimed nodes.
        """
        n = self.total_chunks
        big_n = self.total_nodes
        r = reclaimed
        i = chunks_lost
        if not 0 <= r <= big_n:
            raise ConfigurationError(f"reclaimed count must be in [0, {big_n}], got {r}")
        if not 0 <= i <= n:
            raise ConfigurationError(f"chunks_lost must be in [0, {n}], got {i}")
        if i > r or n - i > big_n - r:
            return 0.0
        return comb(r, i) * comb(big_n - r, n - i) / comb(big_n, n)

    # ------------------------------------------------------------------ Equation 2 (inner sum)
    def object_loss_probability_given_reclaims(self, reclaimed: int, exact: bool = True) -> float:
        """``P(r)``: probability an object is lost when ``reclaimed`` nodes go away.

        Args:
            reclaimed: number of nodes reclaimed in the interval.
            exact: if True sum all terms ``i = m..n`` (Equation 2); if False
                use the paper's ``P(r) ≈ p_m`` simplification (Equation 3).
        """
        m = self.min_chunks_for_loss
        if not exact:
            return self.chunk_loss_probability(reclaimed, m)
        return sum(
            self.chunk_loss_probability(reclaimed, i)
            for i in range(m, self.total_chunks + 1)
        )

    # ------------------------------------------------------------------ Equation 2/3 (outer sum)
    def object_loss_probability(
        self,
        reclaim_distribution: Mapping[int, float],
        exact: bool = True,
    ) -> float:
        """``P_l``: object-loss probability per interval, for a reclaim distribution.

        Args:
            reclaim_distribution: mapping ``r -> pd(r)``; probabilities are
                normalised internally so empirical histograms can be passed
                directly.
            exact: use the exact inner sum (True) or the ``p_m`` approximation.
        """
        if not reclaim_distribution:
            raise ConfigurationError("reclaim distribution must not be empty")
        total_weight = float(sum(reclaim_distribution.values()))
        if total_weight <= 0:
            raise ConfigurationError("reclaim distribution weights must sum to a positive value")
        loss = 0.0
        for reclaimed, weight in reclaim_distribution.items():
            if weight < 0:
                raise ConfigurationError("reclaim distribution weights must be non-negative")
            if reclaimed < self.min_chunks_for_loss:
                continue
            loss += (
                self.object_loss_probability_given_reclaims(int(reclaimed), exact=exact)
                * weight
                / total_weight
            )
        return loss

    # ------------------------------------------------------------------ convenience
    def availability(
        self, reclaim_distribution: Mapping[int, float], exact: bool = True
    ) -> float:
        """``P_a = 1 - P_l`` for one observation interval."""
        return 1.0 - self.object_loss_probability(reclaim_distribution, exact=exact)

    def availability_over(
        self,
        reclaim_distribution: Mapping[int, float],
        intervals: int,
        exact: bool = True,
    ) -> float:
        """Availability over ``intervals`` consecutive independent intervals.

        The paper quotes per-minute and per-hour availability; an hour is 60
        one-minute intervals, assuming the per-interval losses are
        independent (conservative, as the backup mechanism actually
        re-protects data between intervals).
        """
        if intervals < 1:
            raise ConfigurationError("intervals must be >= 1")
        per_interval = self.availability(reclaim_distribution, exact=exact)
        return per_interval ** intervals

    def approximation_ratio(self, reclaimed: int) -> float:
        """``p_m / p_{m+1}``: how dominant the first loss term is (paper: 18.8)."""
        m = self.min_chunks_for_loss
        numerator = self.chunk_loss_probability(reclaimed, m)
        denominator = self.chunk_loss_probability(reclaimed, m + 1)
        if denominator == 0.0:
            return float("inf")
        return numerator / denominator

    @staticmethod
    def poisson_reclaim_distribution(mean: float, max_r: int) -> dict[int, float]:
        """A Poisson ``pd(r)`` truncated at ``max_r`` (one of the paper's fits)."""
        if mean < 0:
            raise ConfigurationError("mean must be non-negative")
        from math import exp, factorial

        return {r: exp(-mean) * mean**r / factorial(r) for r in range(max_r + 1)}

    @staticmethod
    def zipf_reclaim_distribution(exponent: float, max_r: int) -> dict[int, float]:
        """A bounded Zipf ``pd(r)`` over ``r = 1..max_r`` (the other fit).

        ``r = 0`` receives no mass; callers combining it with a probability of
        "no reclaims this interval" can mix distributions explicitly.
        """
        if exponent <= 0:
            raise ConfigurationError("Zipf exponent must be positive")
        weights = {r: r ** (-exponent) for r in range(1, max_r + 1)}
        total = sum(weights.values())
        return {r: w / total for r, w in weights.items()}

    @staticmethod
    def empirical_distribution(reclaim_counts: list[int]) -> dict[int, float]:
        """Build ``pd(r)`` from observed per-interval reclaim counts."""
        if not reclaim_counts:
            raise ConfigurationError("need at least one observation")
        histogram: dict[int, float] = {}
        for count in reclaim_counts:
            histogram[int(count)] = histogram.get(int(count), 0.0) + 1.0
        total = float(len(reclaim_counts))
        return {r: c / total for r, c in histogram.items()}

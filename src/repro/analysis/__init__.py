"""Analytical models from Section 4.3 of the paper.

* :mod:`repro.analysis.availability` — the combinatorial object-loss model
  (Equations 1-3): given a pool of ``N`` Lambda nodes, an ``RS(d+p)`` code and
  a distribution of how many nodes are reclaimed per interval, what is the
  probability that an object becomes unrecoverable?
* :mod:`repro.analysis.cost_model` — the hourly cost model (Equations 4-6):
  serving + warm-up + backup cost as a function of request rate, pool size,
  function memory and the maintenance intervals; also the ElastiCache
  crossover analysis behind Figure 17.
* :mod:`repro.analysis.provisioned` — an extension covering the paper's
  Discussion: the economics of AWS provisioned concurrency versus
  InfiniCache's opportunistic approach and ElastiCache.
"""

from repro.analysis.availability import AvailabilityModel
from repro.analysis.cost_model import CostModel, CostModelParams
from repro.analysis.provisioned import (
    ProvisionedConcurrencyModel,
    ProvisionedConcurrencyPricing,
    StrategyComparison,
    compare_strategies,
)

__all__ = [
    "AvailabilityModel",
    "CostModel",
    "CostModelParams",
    "ProvisionedConcurrencyModel",
    "ProvisionedConcurrencyPricing",
    "StrategyComparison",
    "compare_strategies",
]

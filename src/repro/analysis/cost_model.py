"""Hourly cost model (paper Section 4.3, Equations 4-6) and the Figure 17
crossover analysis against ElastiCache.

Total hourly cost ``C = C_ser + C_w + C_bak``:

* ``C_ser = n_ser * c_req + n_ser * ceil100(t_ser)/1000 * M * c_d``
  (Equation 4) — serving ``n_ser`` chunk requests per hour, each billed for a
  100 ms-rounded duration of a function with ``M`` GB memory;
* ``C_w   = N * f_w * c_req + N * f_w * 0.1 * M * c_d`` (Equation 5) —
  warming up all ``N`` functions ``f_w`` times per hour, each warm-up lasting
  one 100 ms billing cycle;
* ``C_bak = N * f_bak * c_req + N * f_bak * t_bak * M * c_d`` (Equation 6) —
  backing up all ``N`` functions ``f_bak`` times per hour, each backup
  keeping a function busy for ``t_bak`` seconds.

The paper expresses the model per single function invocation; requests that
touch ``d+p`` chunks can be modelled either by multiplying the request rate
by the chunk count or by folding it into ``n_ser`` — helpers for both are
provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.pricing import ElastiCacheInstanceType, elasticache_instance
from repro.exceptions import ConfigurationError
from repro.faas.billing import LambdaPricing, ceil_to_billing_cycle
from repro.utils.units import GIB, MIB


@dataclass(frozen=True)
class CostModelParams:
    """Inputs to the hourly cost model (names follow the paper)."""

    #: Number of Lambda nodes in the pool (N_lambda).
    total_nodes: int = 400
    #: Configured function memory in bytes (M, expressed in GB in the paper).
    memory_bytes: int = 1536 * MIB
    #: Warm-up interval in minutes (T_warm); f_w = 60 / T_warm per hour.
    warmup_interval_min: float = 1.0
    #: Backup interval in minutes (T_bak); f_bak = 60 / T_bak per hour.
    backup_interval_min: float = 5.0
    #: Duration one backup keeps a function busy, in seconds (t_bak).
    backup_duration_s: float = 1.0
    #: Average duration of one serving invocation in milliseconds (t_ser).
    serving_duration_ms: float = 100.0
    #: Whether the backup mechanism is enabled at all.
    backup_enabled: bool = True
    pricing: LambdaPricing = field(default_factory=LambdaPricing)

    def __post_init__(self):
        if self.total_nodes < 1:
            raise ConfigurationError("total_nodes must be >= 1")
        if self.memory_bytes <= 0:
            raise ConfigurationError("memory must be positive")
        if self.warmup_interval_min <= 0 or self.backup_interval_min <= 0:
            raise ConfigurationError("intervals must be positive")
        if self.backup_duration_s < 0 or self.serving_duration_ms < 0:
            raise ConfigurationError("durations must be non-negative")

    @property
    def memory_gb(self) -> float:
        """Function memory in GB (the unit the pricing uses)."""
        return self.memory_bytes / GIB

    @property
    def warmups_per_hour(self) -> float:
        """f_w."""
        return 60.0 / self.warmup_interval_min

    @property
    def backups_per_hour(self) -> float:
        """f_bak (zero when backup is disabled)."""
        if not self.backup_enabled:
            return 0.0
        return 60.0 / self.backup_interval_min


class CostModel:
    """Hourly cost calculator for an InfiniCache deployment."""

    def __init__(self, params: CostModelParams | None = None):
        self.params = params or CostModelParams()

    # ------------------------------------------------------------------ Equation 4
    def serving_cost_per_hour(self, invocations_per_hour: float) -> float:
        """``C_ser`` for a given hourly *function invocation* rate."""
        if invocations_per_hour < 0:
            raise ConfigurationError("invocation rate must be non-negative")
        p = self.params
        billed_s = ceil_to_billing_cycle(p.serving_duration_ms / 1000.0)
        request_fee = invocations_per_hour * p.pricing.price_per_invocation
        duration_fee = (
            invocations_per_hour * billed_s * p.memory_gb * p.pricing.price_per_gb_second
        )
        return request_fee + duration_fee

    def serving_cost_for_object_rate(
        self, object_requests_per_hour: float, chunks_per_object: int
    ) -> float:
        """``C_ser`` when each object GET fans out to ``chunks_per_object`` invocations."""
        if chunks_per_object < 1:
            raise ConfigurationError("chunks_per_object must be >= 1")
        return self.serving_cost_per_hour(object_requests_per_hour * chunks_per_object)

    # ------------------------------------------------------------------ Equation 5
    def warmup_cost_per_hour(self) -> float:
        """``C_w``: keeping the whole pool warm."""
        p = self.params
        invocations = p.total_nodes * p.warmups_per_hour
        request_fee = invocations * p.pricing.price_per_invocation
        duration_fee = invocations * 0.1 * p.memory_gb * p.pricing.price_per_gb_second
        return request_fee + duration_fee

    # ------------------------------------------------------------------ Equation 6
    def backup_cost_per_hour(self) -> float:
        """``C_bak``: periodic delta-sync backups across the pool."""
        p = self.params
        if not p.backup_enabled:
            return 0.0
        invocations = p.total_nodes * p.backups_per_hour
        request_fee = invocations * p.pricing.price_per_invocation
        duration_fee = (
            invocations * p.backup_duration_s * p.memory_gb * p.pricing.price_per_gb_second
        )
        return request_fee + duration_fee

    # ------------------------------------------------------------------ totals
    def total_cost_per_hour(self, invocations_per_hour: float) -> float:
        """``C = C_ser + C_w + C_bak`` for an hourly invocation rate."""
        return (
            self.serving_cost_per_hour(invocations_per_hour)
            + self.warmup_cost_per_hour()
            + self.backup_cost_per_hour()
        )

    def breakdown_per_hour(self, invocations_per_hour: float) -> dict[str, float]:
        """All three terms plus the total, as a dictionary."""
        serving = self.serving_cost_per_hour(invocations_per_hour)
        warmup = self.warmup_cost_per_hour()
        backup = self.backup_cost_per_hour()
        return {
            "serving": serving,
            "warmup": warmup,
            "backup": backup,
            "total": serving + warmup + backup,
        }

    # ------------------------------------------------------------------ Figure 17
    def elasticache_hourly_cost(
        self, instance_type: str | ElastiCacheInstanceType = "cache.r5.24xlarge",
        node_count: int = 1,
    ) -> float:
        """Hourly cost of the ElastiCache deployment used for comparison."""
        if isinstance(instance_type, str):
            instance_type = elasticache_instance(instance_type)
        if node_count < 1:
            raise ConfigurationError("node_count must be >= 1")
        return instance_type.hourly_price * node_count

    def crossover_access_rate(
        self,
        instance_type: str | ElastiCacheInstanceType = "cache.r5.24xlarge",
        node_count: int = 1,
        chunks_per_object: int = 1,
        max_rate: int = 10_000_000,
    ) -> float:
        """The hourly *object* access rate at which InfiniCache stops being cheaper.

        This is the crossover point of Figure 17 (the paper finds ~312 K
        requests/hour for its configuration, where every object GET fans out
        to 12 chunk invocations).  Solved in closed form from the linear
        serving-cost term.
        """
        if chunks_per_object < 1:
            raise ConfigurationError("chunks_per_object must be >= 1")
        target = self.elasticache_hourly_cost(instance_type, node_count)
        fixed = self.warmup_cost_per_hour() + self.backup_cost_per_hour()
        if fixed >= target:
            return 0.0
        p = self.params
        billed_s = ceil_to_billing_cycle(p.serving_duration_ms / 1000.0)
        per_invocation = (
            p.pricing.price_per_invocation
            + billed_s * p.memory_gb * p.pricing.price_per_gb_second
        )
        if per_invocation <= 0:
            return float(max_rate)
        rate = (target - fixed) / (per_invocation * chunks_per_object)
        return min(rate, float(max_rate))

"""Virtual simulation clock.

The clock is the single source of truth for "now" inside a simulation.  It
only moves forward.  Components that model synchronous latency (e.g. a chunk
transfer that takes 18 ms) call :meth:`SimClock.advance`; components that
model asynchronous behaviour (reclamation sweeps, warm-up timers, racing
chunk flows) schedule events on the :class:`~repro.sim.loop.EventLoop`,
which drives the same clock.
"""

from __future__ import annotations

from repro.exceptions import SimulationError


class SimClock:
    """A monotonically non-decreasing virtual clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds since simulation start."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds and return the new time.

        Raises:
            SimulationError: if ``delta`` is negative, which would indicate a
                bug in a latency model (time never flows backwards).
        """
        if delta < 0:
            raise SimulationError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``.

        Advancing to a time earlier than ``now`` is an error; advancing to the
        current time is a no-op.  The event loop uses this when dispatching
        scheduled events.
        """
        if timestamp < self._now - 1e-12:
            raise SimulationError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"

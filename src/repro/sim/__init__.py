"""``repro.sim`` — the discrete-event simulation engine.

The InfiniCache reproduction runs on a simulated AWS substrate rather than a
real cloud, so everything time-dependent (invocation latency, chunk flows,
warm-up timers, function reclamation, request arrivals) is driven by a
shared virtual clock and event queue defined here.

Three layers, lowest first:

* **clock + events** — :class:`SimClock`, :class:`Event`,
  :class:`EventQueue`, :class:`EventLoop` (alias ``Simulator``): callbacks
  scheduled at absolute virtual times, executed in deterministic
  ``(time, insertion)`` order.
* **timers** — :class:`PeriodicTask`: the refire-every-interval idiom the
  maintenance actors (warm-up, backup, reclamation sweeps, autoscaler)
  share.
* **processes** — :class:`Process` coroutines plus :class:`SimFuture` and
  the :func:`all_of` / :func:`first_n` combinators: multi-step operations
  ("invoke the Lambda, wait for the chunk flow, then decode") written as
  generators, with genuine concurrency between processes — the substrate of
  the overlapping-request drivers in :mod:`repro.workload.replay` and the
  proxy's first-d-of-n chunk racing.

See ``docs/simulation.md`` for the programming model and examples.
"""

from repro.sim.clock import SimClock
from repro.sim.loop import Event, EventLoop, EventQueue, PeriodicTask, Simulator
from repro.sim.process import (
    CountdownLatch,
    Process,
    SimFuture,
    all_of,
    first_n,
    resolved,
)

__all__ = [
    "SimClock",
    "Event",
    "EventQueue",
    "EventLoop",
    "Simulator",
    "PeriodicTask",
    "CountdownLatch",
    "Process",
    "SimFuture",
    "all_of",
    "first_n",
    "resolved",
]

"""Event queue and the discrete-event loop.

The loop owns a :class:`~repro.sim.clock.SimClock` and a priority queue of
:class:`Event` records.  Components schedule callbacks with
:meth:`EventLoop.schedule` (relative delay) or :meth:`EventLoop.schedule_at`
(absolute time) and the loop runs them in timestamp order, breaking ties by
insertion order so runs are fully deterministic.

On top of the callback layer the loop offers three higher-level primitives:

* :meth:`EventLoop.timeout` — a :class:`~repro.sim.process.SimFuture` that
  resolves after a virtual delay (the awaitable form of ``schedule``);
* :meth:`EventLoop.spawn` — run a generator coroutine as a
  :class:`~repro.sim.process.Process`, the helper multi-step operations
  (GETs racing d-of-n chunk fetches, closed-loop clients) are written as;
* :class:`PeriodicTask` — a timer that refires every interval until stopped
  (warm-ups, backups, reclamation sweeps, autoscaler ticks).

``Simulator`` remains as an alias of :class:`EventLoop` for the original
synchronous facade; the two names are the same class.
"""

from __future__ import annotations

import heapq
import itertools
import math
from time import perf_counter
from typing import Callable, Optional

from repro.exceptions import SimulationError
from repro.sim.clock import SimClock
from repro.sim.process import Process, ProcessGenerator, SimFuture


def _label_key(label: str) -> str:
    """Aggregation key for an event label: the text before the first colon.

    Labels embed per-flow identity ("flow.finish:p0:serving:key#12"), so the
    raw strings are unbounded; the prefix ("flow.finish", "sleep",
    "billing.session_close") is the stable subsystem name the profiler keys
    on.
    """
    return label.partition(":")[0] or "(unlabelled)"


class LoopProfile:
    """Wall-clock accounting for one profiled stretch of the event loop.

    Counts scheduled/dispatched/cancelled events and accumulates *real*
    (``perf_counter``) self-time per label key, plus three subsystem meters
    fed by the loop (heap ops), :class:`~repro.sim.process.Process`
    (coroutine steps), and the flow arbiter (settle/re-aim transitions).
    The meters nest — a coroutine step runs inside an event callback — so
    they attribute wall-clock to subsystems rather than forming a disjoint
    partition.
    """

    def __init__(self) -> None:
        self.scheduled: dict[str, int] = {}
        self.dispatched: dict[str, int] = {}
        self.cancelled: dict[str, int] = {}
        self.self_time_s: dict[str, float] = {}
        self.heap_s = 0.0
        self.coroutine_steps = 0
        self.coroutine_s = 0.0
        self.arbiter_transitions = 0
        self.arbiter_s = 0.0

    def note_scheduled(self, label: str) -> None:
        key = _label_key(label)
        self.scheduled[key] = self.scheduled.get(key, 0) + 1

    def note_cancelled(self, label: str) -> None:
        key = _label_key(label)
        self.cancelled[key] = self.cancelled.get(key, 0) + 1

    def note_dispatch(self, label: str, seconds: float) -> None:
        key = _label_key(label)
        self.dispatched[key] = self.dispatched.get(key, 0) + 1
        self.self_time_s[key] = self.self_time_s.get(key, 0.0) + seconds

    @property
    def dispatch_s(self) -> float:
        """Total measured callback self-time across all labels."""
        return sum(self.self_time_s.values())

    @property
    def events_dispatched(self) -> int:
        return sum(self.dispatched.values())

    def top_labels(self, limit: int = 10) -> list[dict]:
        """The hottest label keys by callback self-time."""
        ranked = sorted(self.self_time_s.items(), key=lambda item: item[1], reverse=True)
        return [
            {
                "label": key,
                "dispatched": self.dispatched.get(key, 0),
                "self_s": seconds,
            }
            for key, seconds in ranked[:limit]
        ]

    def snapshot(self) -> dict:
        """A JSON-friendly dump of every meter."""
        return {
            "counts": {
                "scheduled": sum(self.scheduled.values()),
                "dispatched": self.events_dispatched,
                "cancelled": sum(self.cancelled.values()),
                "coroutine_steps": self.coroutine_steps,
                "arbiter_transitions": self.arbiter_transitions,
            },
            "phases": {
                "dispatch_s": self.dispatch_s,
                "heap_ops_s": self.heap_s,
                "coroutine_steps_s": self.coroutine_s,
                "arbiter_s": self.arbiter_s,
            },
            "by_label": {
                key: {
                    "scheduled": self.scheduled.get(key, 0),
                    "dispatched": self.dispatched.get(key, 0),
                    "cancelled": self.cancelled.get(key, 0),
                    "self_s": self.self_time_s.get(key, 0.0),
                }
                for key in sorted(
                    set(self.scheduled) | set(self.dispatched) | set(self.cancelled)
                )
            },
        }


class Event:
    """A scheduled callback.

    Events order by ``(time, sequence)`` so the heap pops them in
    deterministic order.  ``cancelled`` events stay in the heap but are
    skipped when popped, which is cheaper than heap removal and matches how
    the billed-duration timers are frequently rescheduled.  Cancelling
    notifies the owning queue so its live count stays O(1) and heavily
    tombstoned heaps get compacted.

    The heap itself stores ``(time, sequence, event)`` tuples, so ordering
    is decided by C-level tuple comparison instead of a Python ``__lt__``
    per sift step — a measurable win at fleet scale, where hundreds of
    thousands of flow-completion events are pushed and re-aimed.
    """

    __slots__ = ("time", "sequence", "callback", "label", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[[], None],
        label: str = "",
        _queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.label = label
        self.cancelled = False
        #: Owning queue while the event sits in its heap; cleared on pop so a
        #: late ``cancel()`` of an already-dispatched event cannot skew counts.
        self._queue = _queue

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(time={self.time}, sequence={self.sequence}, label={self.label!r}, {state})"

    def cancel(self) -> None:
        """Mark the event so the loop skips it when its time arrives."""
        if self.cancelled:
            return
        self.cancelled = True
        queue, self._queue = self._queue, None
        if queue is not None:
            queue._note_cancel(self)


class DeadlineTimer:
    """A timer whose deadline can move *later* without touching the heap.

    The cancel-and-reschedule idiom turns every deadline extension into a
    tombstone plus a fresh heap push; under extension-heavy workloads (flow
    re-aims when a competing flow joins, billed-session windows stretched by
    every request) the queue ends up mostly tombstones.  A ``DeadlineTimer``
    instead keeps **at most one** live heap entry, aimed at the earliest
    deadline requested since it was last (re)armed, and treats the
    ``deadline`` field as authoritative at fire time:

    * moving the deadline *later* is a plain field write — the stale entry
      fires early, notices the stored deadline is still ahead, and re-arms
      itself once at the current deadline;
    * moving it *earlier* (or to the entry's exact time) still cancels and
      re-pushes eagerly, because the entry must fire no later than the
      deadline;
    * the callback runs only when the loop reaches the stored deadline, so
      firing times are identical to the eager idiom.

    Tie-breaking is *also* identical: every extension reserves the
    sequence number the eager cancel-and-push would have consumed (a
    counter increment, no heap traffic), and the eventual re-arm pushes
    under that reserved number.  Same-timestamp ordering is observable —
    simultaneous chunk completions decide which flow loses a
    first-``d``-of-``n`` quorum — so the lazy timer must not perturb it.

    Obtained from :meth:`EventLoop.schedule_deadline`.
    """

    __slots__ = ("loop", "callback", "label", "deadline", "_event", "_sequence")

    def __init__(
        self,
        loop: "EventLoop",
        deadline: float,
        callback: Callable[[], None],
        label: str = "",
        sequence: Optional[int] = None,
    ) -> None:
        self.loop = loop
        self.callback = callback
        self.label = label
        self.deadline = deadline
        if sequence is None:
            self._event: Optional[Event] = loop.schedule_at(deadline, self._fire, label)
        else:
            self._event = loop.queue.push_reserved(
                max(deadline, loop.clock.now), sequence, self._fire, label
            )
        self._sequence: Optional[int] = None

    @property
    def active(self) -> bool:
        """Whether a firing is pending (the timer has not run or been cancelled)."""
        return self._event is not None

    def set_deadline(self, when: float, sequence: Optional[int] = None) -> None:
        """Move the deadline; re-arms a fired/cancelled timer.

        Extensions are O(1) field writes; only moving the deadline to or
        before the pending entry's time costs a cancel plus a push.  A
        ``sequence`` pre-reserved via :meth:`EventQueue.reserve_sequence`
        is used for the (re-)armed entry's tie-break instead of consuming
        a fresh one — callers that batch several would-be re-aims reserve
        at the point the eager idiom would have pushed.
        """
        self.deadline = when
        event = self._event
        if event is None or when <= event.time:
            if event is not None:
                event.cancel()
            self._sequence = None
            if sequence is None:
                self._event = self.loop.schedule_at(when, self._fire, self.label)
            else:
                self._event = self.loop.queue.push_reserved(
                    max(when, self.loop.clock.now), sequence, self._fire, self.label
                )
        else:
            # Extension: keep the pending entry (it will fire early and
            # re-arm) but hold the sequence number an eager re-push would
            # have consumed — the caller's pre-reserved one, else a fresh
            # reservation — so the re-armed entry ties against
            # same-timestamp events exactly like the eager one.
            self._sequence = (
                sequence if sequence is not None else self.loop.queue.reserve_sequence()
            )

    def cancel(self) -> None:
        """Cancel the pending firing (``set_deadline`` re-arms afterwards)."""
        event, self._event = self._event, None
        self._sequence = None
        if event is not None:
            event.cancel()

    def _fire(self) -> None:
        if self.deadline > self.loop.clock.now:
            # The deadline moved later since this entry was pushed: re-arm
            # once at the stored deadline instead of having churned the heap
            # on every extension, under the sequence number reserved by the
            # (most recent) extension.
            sequence, self._sequence = self._sequence, None
            if sequence is None:
                self._event = self.loop.schedule_at(self.deadline, self._fire, self.label)
            else:
                self._event = self.loop.queue.push_reserved(
                    self.deadline, sequence, self._fire, self.label
                )
            return
        self._event = None
        self._sequence = None
        self.callback()


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    The queue keeps a running count of non-cancelled entries so ``len()``
    and truth-testing are O(1), and rebuilds the heap whenever cancelled
    tombstones outnumber live events (bounding memory and pop cost under
    cancel-heavy workloads such as flow rescheduling).
    """

    #: Never bother compacting heaps smaller than this.
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._live = 0
        #: Lifetime statistics (never reset by compaction).
        self._pushed = 0
        self._popped = 0
        self._cancelled = 0
        self._compactions = 0
        self._peak_heap = 0
        #: Optional :class:`LoopProfile` attached by the owning loop.
        self.profile: Optional["LoopProfile"] = None

    def push(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Insert a callback to run at absolute virtual ``time``.

        Raises:
            ValueError: if ``time`` is NaN, infinite, or negative.  A NaN
                timestamp would silently poison the heap invariant — every
                comparison against NaN is False, so sift-up parks the entry
                wherever it lands and *other* events start popping out of
                order long after the bad push.
        """
        if not math.isfinite(time) or time < 0:
            raise ValueError(
                f"event time must be finite and non-negative, got {time!r} "
                f"(label={label!r})"
            )
        return self._push_entry(time, next(self._counter), callback, label)

    def reserve_sequence(self) -> int:
        """Consume and return the next tie-breaking sequence number.

        :class:`DeadlineTimer` extensions call this so the entry pushed by
        the eventual early-fire re-arm carries the sequence number the
        eager cancel-and-push idiom would have consumed at extension time,
        keeping every ``(time, sequence)`` heap key — and therefore all
        same-timestamp dispatch ordering — bitwise identical to the eager
        schedule.
        """
        return next(self._counter)

    def push_reserved(
        self, time: float, sequence: int, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Insert a callback at ``time`` under a previously reserved sequence."""
        if not math.isfinite(time) or time < 0:
            raise ValueError(
                f"event time must be finite and non-negative, got {time!r} "
                f"(label={label!r})"
            )
        return self._push_entry(time, sequence, callback, label)

    def _push_entry(
        self, time: float, sequence: int, callback: Callable[[], None], label: str
    ) -> Event:
        event = Event(time, sequence, callback, label, _queue=self)
        heapq.heappush(self._heap, (time, sequence, event))
        self._live += 1
        self._pushed += 1
        if len(self._heap) > self._peak_heap:
            self._peak_heap = len(self._heap)
        if self.profile is not None:
            self.profile.note_scheduled(label)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)[2]
            if not event.cancelled:
                event._queue = None
                self._live -= 1
                self._popped += 1
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest pending event, or ``None``."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def _note_cancel(self, event: Event) -> None:
        self._live -= 1
        self._cancelled += 1
        if self.profile is not None:
            self.profile.note_cancelled(event.label)
        heap_size = len(self._heap)
        if heap_size >= self.COMPACT_MIN_SIZE and (heap_size - self._live) * 2 > heap_size:
            self._heap = [entry for entry in self._heap if not entry[2].cancelled]
            heapq.heapify(self._heap)
            self._compactions += 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # ------------------------------------------------------------------ statistics
    @property
    def tombstones(self) -> int:
        """Cancelled events still occupying heap slots."""
        return len(self._heap) - self._live

    def stats(self) -> dict[str, int]:
        """Lifetime queue statistics (tombstone pressure, compactions, peaks)."""
        return {
            "live": self._live,
            "tombstones": self.tombstones,
            "pushed": self._pushed,
            "popped": self._popped,
            "cancelled": self._cancelled,
            "compactions": self._compactions,
            "peak_heap_size": self._peak_heap,
        }


class EventLoop:
    """Drives a virtual clock through a queue of scheduled events.

    A single :class:`EventLoop` instance is shared by the FaaS platform, the
    cache components, the flow-level network model, and the workload drivers
    so that warm-up timers, reclamation sweeps, chunk flows, and request
    arrivals interleave consistently.
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self.queue = EventQueue()
        self._events_processed = 0
        self._profile: Optional[LoopProfile] = None

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far (useful in tests)."""
        return self._events_processed

    # ------------------------------------------------------------------ profiling
    @property
    def profile(self) -> Optional[LoopProfile]:
        """The active :class:`LoopProfile`, or ``None`` when not profiling."""
        return self._profile

    def enable_profiling(self) -> LoopProfile:
        """Start wall-clock profiling; returns the (fresh) profile.

        Enable *before* running the loop: the run methods snapshot the
        profile reference on entry, so flipping it mid-run has no effect
        until the next ``run_*`` call.
        """
        self._profile = LoopProfile()
        self.queue.profile = self._profile
        return self._profile

    def disable_profiling(self) -> Optional[LoopProfile]:
        """Stop profiling; returns the profile collected so far (if any)."""
        profile, self._profile = self._profile, None
        self.queue.profile = None
        return profile

    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Raises:
            ValueError: if ``delay`` is NaN or infinite (``delay < 0`` is
                False for NaN, so without this check a NaN would corrupt
                the heap ordering instead of failing here, at the API
                boundary where the caller is identifiable).
            SimulationError: if ``delay`` is negative.
        """
        if not math.isfinite(delay):
            raise ValueError(
                f"event delay must be finite, got {delay!r} (label={label!r})"
            )
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        return self.queue.push(self.clock.now + delay, callback, label)

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` to run at absolute virtual ``time``.

        Raises:
            ValueError: if ``time`` is NaN or infinite (``max(nan, now)``
                returns NaN, so the pre-check is load-bearing).
            SimulationError: if ``time`` is in the past.
        """
        if not math.isfinite(time):
            raise ValueError(
                f"event time must be finite, got {time!r} (label={label!r})"
            )
        if time < self.clock.now - 1e-12:
            raise SimulationError(
                f"cannot schedule an event at {time}, which is before now={self.clock.now}"
            )
        return self.queue.push(max(time, self.clock.now), callback, label)

    def schedule_deadline(
        self,
        deadline: float,
        callback: Callable[[], None],
        label: str = "",
        sequence: Optional[int] = None,
    ) -> DeadlineTimer:
        """A lazily re-aimed timer: extending the deadline is a field write.

        Use instead of the cancel+reschedule idiom when a deadline is
        extended far more often than it is shortened (billed-session close
        watchdogs, flow-finish re-aims); see :class:`DeadlineTimer`.  A
        ``sequence`` pre-reserved via :meth:`EventQueue.reserve_sequence`
        fixes the initial entry's tie-break.
        """
        return DeadlineTimer(self, deadline, callback, label, sequence)

    # ------------------------------------------------------------------ awaitables
    def timeout(self, delay: float, label: str = "sim.timeout") -> SimFuture:
        """A future that resolves with the (virtual) wake-up time after ``delay``.

        Cancelling the future cancels the underlying event, so an abandoned
        sleeper never fires.
        """
        future = SimFuture(label=label)

        def fire() -> None:
            if not future.done:
                future.resolve(self.clock.now)

        event = self.schedule(delay, fire, label)
        future.on_cancel(event.cancel)
        return future

    def spawn(self, generator: ProcessGenerator, label: str = "") -> Process:
        """Run a coroutine generator as a process, started immediately.

        The returned :class:`~repro.sim.process.Process` exposes a ``future``
        resolving with the generator's return value; other coroutines wait on
        it by yielding the process.
        """
        process = Process(self, generator, label=label)
        process.start()
        return process

    # ------------------------------------------------------------------ running
    def run_until(self, end_time: float) -> None:
        """Dispatch events in order until the queue is empty or ``end_time``.

        The clock ends exactly at ``end_time`` even if the last event fires
        earlier, so periodic reports (hourly cost buckets, for example) cover
        the full requested window.
        """
        if end_time < self.clock.now:
            raise SimulationError(
                f"run_until({end_time}) is before current time {self.clock.now}"
            )
        profile = self._profile
        while True:
            if profile is None:
                next_time = self.queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                event = self.queue.pop()
            else:
                heap_started = perf_counter()  # repro: allow[D102] (profiling meter)
                next_time = self.queue.peek_time()
                if next_time is None or next_time > end_time:
                    profile.heap_s += perf_counter() - heap_started  # repro: allow[D102] (profiling meter)
                    break
                event = self.queue.pop()
                profile.heap_s += perf_counter() - heap_started  # repro: allow[D102] (profiling meter)
            if event is None:
                break
            self.clock.advance_to(event.time)
            self._events_processed += 1
            if profile is None:
                event.callback()
            else:
                started = perf_counter()  # repro: allow[D102] (profiling meter)
                event.callback()
                profile.note_dispatch(event.label, perf_counter() - started)  # repro: allow[D102] (profiling meter)
        self.clock.advance_to(end_time)

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Dispatch every pending event (bounded by ``max_events``).

        Raises:
            SimulationError: if the bound is hit, which almost always means a
                component is rescheduling itself unconditionally.
        """
        dispatched = 0
        profile = self._profile
        while True:
            if profile is None:
                event = self.queue.pop()
            else:
                heap_started = perf_counter()  # repro: allow[D102] (profiling meter)
                event = self.queue.pop()
                profile.heap_s += perf_counter() - heap_started  # repro: allow[D102] (profiling meter)
            if event is None:
                return
            self.clock.advance_to(event.time)
            self._events_processed += 1
            if profile is None:
                event.callback()
            else:
                started = perf_counter()  # repro: allow[D102] (profiling meter)
                event.callback()
                profile.note_dispatch(event.label, perf_counter() - started)  # repro: allow[D102] (profiling meter)
            dispatched += 1
            if dispatched >= max_events:
                raise SimulationError(
                    f"run_all dispatched {max_events} events without draining the queue; "
                    "a component is likely rescheduling itself forever"
                )

    def run_until_complete(self, future: SimFuture, max_events: int = 10_000_000) -> object:
        """Dispatch events until ``future`` settles; returns its result.

        Unlike :meth:`run_all` this terminates even while periodic timers
        (warm-ups, reclamation sweeps) keep the queue perpetually non-empty —
        it is how the workload drivers run "until every client finishes".

        Raises:
            SimulationError: if the queue drains with the future still
                pending (a deadlocked process), or ``max_events`` is hit.
        """
        dispatched = 0
        profile = self._profile
        while not future.done:
            if profile is None:
                event = self.queue.pop()
            else:
                heap_started = perf_counter()  # repro: allow[D102] (profiling meter)
                event = self.queue.pop()
                profile.heap_s += perf_counter() - heap_started  # repro: allow[D102] (profiling meter)
            if event is None:
                raise SimulationError(
                    f"event queue drained but {future.label!r} never resolved "
                    "(a process is waiting on something nobody will deliver)"
                )
            self.clock.advance_to(event.time)
            self._events_processed += 1
            if profile is None:
                event.callback()
            else:
                started = perf_counter()  # repro: allow[D102] (profiling meter)
                event.callback()
                profile.note_dispatch(event.label, perf_counter() - started)  # repro: allow[D102] (profiling meter)
            dispatched += 1
            if dispatched >= max_events:
                raise SimulationError(
                    f"run_until_complete dispatched {max_events} events while waiting "
                    f"for {future.label!r}"
                )
        return future.result if not future.cancelled else None


#: Backwards-compatible name for the loop: the original synchronous facade
#: calls it a Simulator; the event-driven drivers call it an EventLoop.
Simulator = EventLoop


class PeriodicTask:
    """A callback rescheduled every ``interval_s`` until stopped.

    Wraps the schedule-yourself-again idiom the periodic maintenance actors
    (warm-up, backup, reclamation sweeps, autoscaler, failure detector)
    share, including cancellation of the pending event on :meth:`stop` so a
    stopped task never fires late.
    """

    def __init__(
        self,
        simulator: EventLoop,
        interval_s: float,
        callback: Callable[[], object],
        label: str = "",
    ) -> None:
        if not math.isfinite(interval_s) or interval_s <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval_s}")
        self.simulator = simulator
        self.interval_s = interval_s
        self.callback = callback
        self.label = label
        self._started = False
        self._pending: Optional[Event] = None

    @property
    def is_running(self) -> bool:
        """Whether the task is currently scheduled to keep firing."""
        return self._started

    def start(self) -> None:
        """Schedule the first firing (idempotent)."""
        if self._started:
            return
        self._started = True
        self._pending = self.simulator.schedule(self.interval_s, self._fire, self.label)

    def stop(self) -> None:
        """Cancel the pending firing and stop rescheduling."""
        self._started = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _fire(self) -> None:
        if not self._started:
            return
        self.callback()
        self._pending = self.simulator.schedule(self.interval_s, self._fire, self.label)

"""Futures and coroutine processes for the discrete-event engine.

A :class:`Process` expresses a multi-step simulated operation — "invoke the
Lambda, wait for the chunk flow, then decode" — as an ordinary Python
generator.  The generator *yields* the things it wants to wait on and the
event loop resumes it when they are ready:

* a ``float``/``int`` — sleep that many virtual seconds;
* a :class:`SimFuture` — resume when the future resolves (e.g. a network
  flow completing);
* another :class:`Process` — resume when that process finishes (its return
  value is sent back in).

Sequential composition uses plain ``yield from`` delegation (the client GET
coroutine delegates to the proxy GET coroutine); *concurrent* composition
spawns child processes with :meth:`~repro.sim.loop.EventLoop.spawn` and
waits on combinators such as :func:`first_n` (first-d-of-n chunk racing) or
:func:`all_of` (a PUT waiting for every chunk to land).

Cancellation is cooperative: cancelling a process closes its generator —
running any ``finally`` blocks at the *current* virtual time, which is how
an abandoned straggler fetch bills the partial transfer it performed — and
then cancels whatever the process was waiting on, which releases resources
such as in-flight network flows.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Callable, Generator, Iterable, Optional

from repro.exceptions import SimulationError

if TYPE_CHECKING:
    from repro.sim.loop import Event, EventLoop


class SimFuture:
    """A single-assignment result that callbacks (and processes) can await."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._done = False
        self._cancelled = False
        self._result: object = None
        self._callbacks: list[Callable[["SimFuture"], None]] = []
        self._cancel_hooks: list[Callable[[], None]] = []

    @property
    def done(self) -> bool:
        """Whether the future has resolved (or been cancelled)."""
        return self._done

    @property
    def cancelled(self) -> bool:
        """Whether the future was cancelled rather than resolved."""
        return self._cancelled

    @property
    def result(self) -> object:
        """The resolved value (``None`` for a cancelled future).

        Raises:
            SimulationError: if the future is still pending.
        """
        if not self._done:
            raise SimulationError(f"future {self.label!r} has not resolved yet")
        return self._result

    def add_done_callback(self, callback: Callable[["SimFuture"], None]) -> None:
        """Run ``callback(self)`` when the future settles (now, if already done)."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def on_cancel(self, hook: Callable[[], None]) -> None:
        """Register a resource-release hook run if the future is cancelled."""
        if not self._done:
            self._cancel_hooks.append(hook)

    def _settle(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        self._cancel_hooks = []
        for callback in callbacks:
            callback(self)

    def resolve(self, result: object = None) -> None:
        """Resolve the future with ``result`` and fire the callbacks."""
        if self._done:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self._done = True
        self._result = result
        self._settle()

    def cancel(self) -> bool:
        """Cancel the future; returns ``False`` if it had already settled.

        Cancel hooks run first (releasing e.g. the network flow backing the
        future), then done-callbacks fire with ``cancelled=True``.
        """
        if self._done:
            return False
        self._done = True
        self._cancelled = True
        hooks, self._cancel_hooks = self._cancel_hooks, []
        for hook in hooks:
            hook()
        self._settle()
        return True

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else ("done" if self._done else "pending")
        return f"SimFuture({self.label!r}, {state})"


def resolved(result: object = None, label: str = "sim.resolved") -> SimFuture:
    """A future that is already resolved (for degenerate combinator cases)."""
    future = SimFuture(label=label)
    future.resolve(result)
    return future


def all_of(futures: Iterable[SimFuture], label: str = "sim.all_of") -> SimFuture:
    """A future resolving when *every* input future has settled.

    The result is the list of input results in input order; cancelled inputs
    contribute ``None``.
    """
    pending = list(futures)
    gate = SimFuture(label=label)
    remaining = len(pending)
    if remaining == 0:
        gate.resolve([])
        return gate

    def on_done(_future: SimFuture) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining == 0 and not gate.done:
            gate.resolve([f.result if not f.cancelled else None for f in pending])

    for future in pending:
        future.add_done_callback(on_done)
    return gate


def first_n(count: int, futures: Iterable[SimFuture], label: str = "sim.first_n") -> SimFuture:
    """A future resolving when ``count`` inputs have *resolved* (not cancelled).

    The result is the list of those first ``count`` results in completion
    order — the first-d-of-n primitive behind the proxy's straggler-tolerant
    GET.  Cancelled inputs never count toward the quorum.
    """
    pending = list(futures)
    if count > len(pending):
        raise SimulationError(
            f"first_n({count}) cannot be satisfied by {len(pending)} futures"
        )
    gate = SimFuture(label=label)
    if count <= 0:
        gate.resolve([])
        return gate
    winners: list[object] = []

    def on_done(future: SimFuture) -> None:
        if gate.done or future.cancelled:
            return
        winners.append(future.result)
        if len(winners) == count:
            gate.resolve(list(winners))

    for future in pending:
        future.add_done_callback(on_done)
    return gate


class CountdownLatch:
    """A future that resolves after a known number of completions.

    The open-loop injectors (trace replay, the cluster-scale experiment)
    schedule all their arrivals up front and need to run the loop "until
    every injected request has finished"; the latch is that completion
    signal.  :meth:`count_down` is also usable directly as a future
    done-callback.
    """

    def __init__(self, count: int, label: str = "sim.latch") -> None:
        if count < 0:
            raise SimulationError(f"latch count must be non-negative, got {count}")
        self._remaining = count
        self.future = SimFuture(label=label)
        if count == 0:
            self.future.resolve(None)

    @property
    def remaining(self) -> int:
        """Completions still outstanding."""
        return self._remaining

    def count_down(self, _future: "SimFuture | None" = None) -> None:
        """Record one completion; resolves the latch future at zero."""
        if self._remaining <= 0:
            raise SimulationError(f"latch {self.future.label!r} counted below zero")
        self._remaining -= 1
        if self._remaining == 0:
            self.future.resolve(None)


#: What a process generator may yield: a delay, a future, or a child process.
Waitable = object
ProcessGenerator = Generator[Waitable, object, object]


class Process:
    """Drives one coroutine generator over the event loop.

    ``process.future`` resolves with the generator's ``return`` value when it
    finishes; waiting on a :class:`Process` (by yielding it) therefore hands
    the return value back to the waiter.
    """

    def __init__(self, loop: "EventLoop", generator: ProcessGenerator, label: str = "") -> None:
        self.loop = loop
        self.generator = generator
        self.label = label or getattr(generator, "__name__", "process")
        self.future = SimFuture(label=f"process:{self.label}")
        self._waiting_on: Optional[SimFuture] = None
        #: Pending plain-sleep event when the coroutine yielded a number; the
        #: numeric fast path schedules the resume directly instead of
        #: building a timeout future (see :meth:`_wait_on`).
        self._sleep_event: Optional["Event"] = None
        self._started = False
        self._cancelling = False
        #: Precomputed sleep-future label: a coroutine may sleep on every
        #: step, so the string is built once per process, not per yield.
        self._sleep_label = "sleep:" + self.label

    @property
    def done(self) -> bool:
        """Whether the process has finished (or been cancelled)."""
        return self.future.done

    def start(self) -> None:
        """Run the coroutine up to its first wait (idempotent)."""
        if self._started:
            return
        self._started = True
        self._step(None)

    def cancel(self) -> bool:
        """Abort the process at the current virtual time.

        Closes the generator (running its ``finally`` blocks) and cancels
        whatever it was waiting on, so held resources — pending timers,
        in-flight network flows — are released.  Returns ``False`` if the
        process had already finished.
        """
        if self.future.done:
            return False
        self._cancelling = True
        waiting, self._waiting_on = self._waiting_on, None
        sleep_event, self._sleep_event = self._sleep_event, None
        self.generator.close()
        if sleep_event is not None:
            sleep_event.cancel()
        if waiting is not None:
            waiting.cancel()
        self.future.cancel()
        return True

    # ------------------------------------------------------------------ driving
    def _step(self, value: object) -> None:
        profile = getattr(self.loop, "_profile", None)
        if profile is None:
            try:
                target = self.generator.send(value)
            except StopIteration as stop:
                self.future.resolve(getattr(stop, "value", None))
                return
        else:
            # Meter only the generator resumption itself; the downstream
            # future callbacks fired by resolve() bill to their own meters.
            started = perf_counter()  # repro: allow[D102] (profiling meter)
            try:
                target = self.generator.send(value)
            except StopIteration as stop:
                profile.coroutine_steps += 1
                profile.coroutine_s += perf_counter() - started  # repro: allow[D102] (profiling meter)
                self.future.resolve(getattr(stop, "value", None))
                return
            profile.coroutine_steps += 1
            profile.coroutine_s += perf_counter() - started  # repro: allow[D102] (profiling meter)
        self._wait_on(target)

    def _wait_on(self, target: Waitable) -> None:
        if isinstance(target, Process):
            future = target.future
        elif isinstance(target, SimFuture):
            future = target
        elif isinstance(target, (int, float)):
            # Plain-sleep fast path: closed-loop clients sleep between every
            # operation, so skipping the timeout future (a SimFuture, two
            # closures, and a callback list per yield) is one of the hottest
            # allocation savings in a macro run.  Timing, event label, and
            # the value sent back into the generator (the wake-up time) are
            # identical to ``loop.timeout``.
            self._sleep_event = self.loop.schedule(
                float(target), self._resume_sleep, self._sleep_label
            )
            return
        else:
            raise SimulationError(
                f"process {self.label!r} yielded unsupported waitable {target!r}"
            )
        self._waiting_on = future
        future.add_done_callback(self._resume)

    def _resume_sleep(self) -> None:
        self._sleep_event = None
        if self.future.done or self._cancelling:
            return
        self._step(self.loop.clock.now)

    def _resume(self, future: SimFuture) -> None:
        if self.future.done or self._cancelling:
            return
        self._waiting_on = None
        self._step(future.result if not future.cancelled else None)

    def __repr__(self) -> str:
        state = "done" if self.done else ("running" if self._started else "new")
        return f"Process({self.label!r}, {state})"

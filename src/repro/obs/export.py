"""Trace exporters: JSONL span dumps and Chrome trace-event files.

Two formats cover the two audiences:

* **JSONL** — one span per line, trivially greppable and diffable; the raw
  material for ad-hoc analysis (``jq``, pandas).
* **Chrome trace-event JSON** — the ``traceEvents`` array understood by
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  Spans become
  complete (``"ph": "X"``) events; each *root* span gets its own thread
  track (named after its ``client`` attribute when present) and descendants
  inherit the root's track so a request's client/proxy/chunk/flow spans nest
  visually.  ``lambda.session`` spans live on a separate per-node process so
  billed windows can be eyeballed against the requests they serve.

Virtual seconds are exported as microseconds (the trace-event unit).

``validate_chrome_trace`` checks an emitted payload against
:data:`TRACE_EVENT_SCHEMA`; the ``repro trace`` CLI and the CI trace-smoke
step both run it, so a malformed export fails loudly rather than producing
a file Perfetto silently refuses to load.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.obs.tracer import Span

#: JSON-schema-style description of the Chrome trace payload we emit.  Kept
#: as data (rather than only code) so the docs and CI can point at one
#: authoritative shape.
TRACE_EVENT_SCHEMA: dict = {
    "type": "object",
    "required": ["displayTimeUnit", "traceEvents"],
    "properties": {
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "ph": {"type": "string", "enum": ["X", "M"]},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "ts": {"type": "number"},
                    "dur": {"type": "number", "minimum": 0},
                    "args": {"type": "object"},
                },
            },
        },
    },
}

#: pid used for request-path tracks and for billed-session tracks.
REQUEST_PID = 1
SESSION_PID = 2


def span_to_dict(span: Span) -> dict:
    """A JSON-friendly rendering of one span."""
    payload: dict = {
        "id": span.span_id,
        "name": span.name,
        "start": span.start,
        "end": span.end,
    }
    if span.parent_id is not None:
        payload["parent"] = span.parent_id
    if span.attrs:
        payload["attrs"] = dict(span.attrs)
    return payload


def to_jsonl(spans: Iterable[Span]) -> str:
    """Render spans as one JSON object per line."""
    return "\n".join(json.dumps(span_to_dict(span), sort_keys=True) for span in spans)


def write_jsonl(path: str, spans: Iterable[Span]) -> None:
    """Write a JSONL span dump to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_jsonl(spans))
        handle.write("\n")


def _root_ids(spans: list[Span]) -> dict[int, int]:
    """Map every span id to the id of its root ancestor."""
    by_id = {span.span_id: span for span in spans}
    roots: dict[int, int] = {}

    def resolve(span: Span) -> int:
        chain = []
        current = span
        while current.parent_id is not None and current.span_id not in roots:
            chain.append(current.span_id)
            parent = by_id.get(current.parent_id)
            if parent is None:
                break
            current = parent
        root = roots.get(current.span_id, current.span_id)
        for span_id in chain:
            roots[span_id] = root
        roots[span.span_id] = root
        return root

    for span in spans:
        resolve(span)
    return roots


def to_chrome_trace(spans: Iterable[Span]) -> dict:
    """Build a Chrome trace-event payload from finished spans.

    Unfinished spans (``end is None``) are skipped — callers should run
    ``tracer.finish_open()`` first if they want them included.
    """
    spans = [span for span in spans if span.end is not None]
    roots = _root_ids(spans)

    # One thread per root span; session spans get one thread per node.
    tids: dict[object, int] = {}
    thread_names: dict[tuple[int, int], str] = {}

    def thread_for(span: Span) -> tuple[int, int]:
        if span.name == "lambda.session":
            node = (span.attrs or {}).get("node", "node")
            key = ("session", node)
            if key not in tids:
                tids[key] = len(tids) + 1
                thread_names[(SESSION_PID, tids[key])] = f"session {node}"
            return SESSION_PID, tids[key]
        root_id = roots.get(span.span_id, span.span_id)
        key = ("request", root_id)
        if key not in tids:
            tids[key] = len(tids) + 1
            root = next((s for s in spans if s.span_id == root_id), span)
            label = (root.attrs or {}).get("client")
            thread_names[(REQUEST_PID, tids[key])] = (
                f"client {label}" if label is not None else f"{root.name} #{root_id}"
            )
        return REQUEST_PID, tids[key]

    events: list[dict] = []
    for span in spans:
        pid, tid = thread_for(span)
        event = {
            "name": span.name,
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": span.start * 1e6,
            "dur": max(span.end - span.start, 0.0) * 1e6,
        }
        if span.attrs:
            event["args"] = {key: value for key, value in span.attrs.items()}
        events.append(event)

    for (pid, tid), name in sorted(thread_names.items()):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": name},
        })
    for pid, name in ((REQUEST_PID, "requests"), (SESSION_PID, "lambda sessions")):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        })

    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_chrome_trace(path: str, spans: Iterable[Span]) -> dict:
    """Write a Chrome trace-event file to ``path``; returns the payload."""
    payload = to_chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return payload


def validate_chrome_trace(payload: object) -> list[str]:
    """Check a trace payload against :data:`TRACE_EVENT_SCHEMA`.

    Returns a list of human-readable problems (empty when valid).  This is a
    purpose-built validator, not a generic JSON-schema engine — the container
    deliberately carries no extra dependencies.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    unit = payload.get("displayTimeUnit")
    if unit not in ("ms", "ns"):
        errors.append(f"displayTimeUnit must be 'ms' or 'ns', got {unit!r}")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return errors + ["traceEvents must be a list"]
    if not events:
        errors.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where} is not an object")
            continue
        for field, kind in (("name", str), ("ph", str), ("pid", int), ("tid", int)):
            if not isinstance(event.get(field), kind):
                errors.append(f"{where}.{field} must be {kind.__name__}")
        phase = event.get("ph")
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)):
                    errors.append(f"{where}.{field} must be a number")
                elif field == "dur" and value < 0:
                    errors.append(f"{where}.dur is negative ({value})")
        elif phase == "M":
            if not isinstance(event.get("args"), dict):
                errors.append(f"{where}.args must be an object for metadata events")
        elif isinstance(phase, str):
            errors.append(f"{where}.ph must be 'X' or 'M', got {phase!r}")
        if len(errors) > 20:
            errors.append("... (further errors suppressed)")
            break
    return errors

"""Per-request critical-path analysis over a span tree.

The paper's latency story is a *decomposition* — how much of a GET is the
Lambda invoke preamble, the racing chunk transfers, or the erasure decode.
With first-d-of-n racing the chunk legs overlap heavily, so summing child
span durations would overstate them; instead each leaf *stage* is measured
as the union of its spans' intervals clipped to the root span, which is the
wall-clock the stage actually kept the request waiting (alone or not).

Whatever root time no leaf stage covers (the proxy's bookkeeping between
yields, scheduling gaps) lands in ``other``.  The **dominant stage** of a
request is the stage with the largest coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.obs.tracer import Span

#: Leaf span names that count as latency stages, and the stage they bill to.
STAGE_BY_SPAN_NAME: dict[str, str] = {
    "lambda.invoke": "invoke",
    "net.flow": "transfer",
    "client.decode": "decode",
    "client.encode": "encode",
    "store.fetch": "backing_store",
}

#: Root-level spans that are infrastructure rather than requests.
_NON_REQUEST_ROOTS = frozenset({"lambda.session"})


def _union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by a set of (start, end) intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    current_start, current_end = intervals[0]
    for start, end in intervals[1:]:
        if start > current_end:
            total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    total += current_end - current_start
    return total


@dataclass
class RequestBreakdown:
    """Stage attribution for one root span."""

    root: Span
    duration: float
    stage_seconds: dict[str, float]
    dominant: str

    @property
    def key(self) -> Optional[object]:
        return (self.root.attrs or {}).get("key")


@dataclass
class CriticalPathSummary:
    """Aggregate view over every analysed request."""

    requests: int = 0
    dominated_by: dict[str, int] = field(default_factory=dict)
    stage_totals: dict[str, float] = field(default_factory=dict)
    total_duration: float = 0.0
    slowest: list[RequestBreakdown] = field(default_factory=list)


def analyze_request(root: Span, descendants: Iterable[Span]) -> RequestBreakdown:
    """Attribute one root span's duration to its leaf stages."""
    root_start = root.start
    root_end = root.end if root.end is not None else root.start
    by_stage: dict[str, list[tuple[float, float]]] = {}
    all_intervals: list[tuple[float, float]] = []
    for span in descendants:
        stage = STAGE_BY_SPAN_NAME.get(span.name)
        if stage is None or span.end is None:
            continue
        start = max(span.start, root_start)
        end = min(span.end, root_end)
        if end <= start:
            continue
        by_stage.setdefault(stage, []).append((start, end))
        all_intervals.append((start, end))

    duration = max(root_end - root_start, 0.0)
    stage_seconds = {stage: _union_length(list(intervals))
                     for stage, intervals in by_stage.items()}
    covered = _union_length(all_intervals)
    stage_seconds["other"] = max(duration - covered, 0.0)
    dominant = max(stage_seconds, key=lambda stage: (stage_seconds[stage], stage))
    return RequestBreakdown(root, duration, stage_seconds, dominant)


def analyze(spans: Iterable[Span], slowest: int = 5) -> CriticalPathSummary:
    """Break down every request root in ``spans`` and aggregate the results."""
    spans = list(spans)
    children: dict[Optional[int], list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    def walk(root: Span) -> list[Span]:
        collected: list[Span] = []
        stack = list(children.get(root.span_id, ()))
        while stack:
            span = stack.pop()
            collected.append(span)
            stack.extend(children.get(span.span_id, ()))
        return collected

    summary = CriticalPathSummary()
    breakdowns: list[RequestBreakdown] = []
    for root in children.get(None, ()):
        if root.name in _NON_REQUEST_ROOTS or root.end is None:
            continue
        breakdown = analyze_request(root, walk(root))
        breakdowns.append(breakdown)
        summary.requests += 1
        summary.total_duration += breakdown.duration
        summary.dominated_by[breakdown.dominant] = (
            summary.dominated_by.get(breakdown.dominant, 0) + 1
        )
        for stage, seconds in breakdown.stage_seconds.items():
            summary.stage_totals[stage] = summary.stage_totals.get(stage, 0) + seconds
    breakdowns.sort(key=lambda item: item.duration, reverse=True)
    summary.slowest = breakdowns[:slowest]
    return summary


def format_summary(summary: CriticalPathSummary) -> str:
    """Render the critical-path summary as an aligned text table."""
    if summary.requests == 0:
        return "critical path: no request spans recorded"
    lines = [f"critical path over {summary.requests} requests "
             f"(total {summary.total_duration * 1e3:.2f} ms of request time)"]
    header = f"  {'stage':<14} {'dominates':>9} {'share':>7} {'total ms':>10} {'mean ms':>9}"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    ordered = sorted(summary.stage_totals.items(), key=lambda item: item[1], reverse=True)
    for stage, seconds in ordered:
        dominated = summary.dominated_by.get(stage, 0)
        share = seconds / summary.total_duration if summary.total_duration else 0.0
        lines.append(
            f"  {stage:<14} {dominated:>9d} {share:>6.1%} "
            f"{seconds * 1e3:>10.2f} {seconds * 1e3 / summary.requests:>9.3f}"
        )
    if summary.slowest:
        lines.append("  slowest requests:")
        for breakdown in summary.slowest:
            key = breakdown.key
            label = f"key={key}" if key is not None else f"span#{breakdown.root.span_id}"
            lines.append(
                f"    {breakdown.duration * 1e3:>8.2f} ms  {label:<24} "
                f"dominated by {breakdown.dominant}"
            )
    return "\n".join(lines)

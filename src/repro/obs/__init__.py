"""Observability: request tracing, trace export, and critical-path analysis.

The package is deliberately dependency-light — it reads the sim clock and
nothing else — so any component can emit spans without import cycles, and a
disabled tracer costs one no-op call per span boundary.
"""

from repro.obs.critical_path import (
    CriticalPathSummary,
    RequestBreakdown,
    analyze,
    format_summary,
)
from repro.obs.export import (
    TRACE_EVENT_SCHEMA,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, NullTracer, Span, SpanTracer

__all__ = [
    "CriticalPathSummary",
    "RequestBreakdown",
    "analyze",
    "format_summary",
    "TRACE_EVENT_SCHEMA",
    "to_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanTracer",
]

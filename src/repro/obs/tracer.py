"""Sim-clock span tracing for the coroutine request path.

A :class:`Span` is an interval of *virtual* time with a name, optional
parent, and free-form attributes.  The tracer stamps spans from the
simulation clock and never schedules events or consumes randomness, so a
traced run is event-for-event identical to an untraced one — the
differential-replay fingerprints match byte-for-byte whether tracing is on
or off (``repro trace`` asserts exactly this).

When tracing is off, components hold :data:`NULL_TRACER`, whose ``begin``/
``finish`` are no-ops returning the shared :data:`NULL_SPAN`.  The disabled
cost per span boundary is one attribute lookup and one cheap call, which
keeps the golden-figure and ``repro perf`` numbers untouched.

Span taxonomy (see ``docs/observability.md``):

``request``          root span for one driver-level operation
``router.get/put``   tenant routing layer
``client.get/put``   erasure-coded client operation
``client.encode``    encode CPU time before a PUT fans out
``client.decode``    decode CPU time after a parity chunk won the race
``proxy.get/put``    proxy orchestration (first-d-of-n race / all-of fan-out)
``chunk.fetch/store``one racing chunk transfer, including its Lambda leg
``lambda.invoke``    invocation preamble (cold start + RTT) of a chunk leg
``net.flow``         the bandwidth-shared flow carrying the chunk bytes
``store.fetch``      backing-store read on a miss (RESET path)
``lambda.session``   a node's anticipatory billed-duration window (rootless)
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sim.clock import SimClock


class Span:
    """One named interval of virtual time, with parent linkage and attributes."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs")

    #: Real spans record; the null span advertises ``False`` so hot paths can
    #: skip optional work (building attribute dicts) without knowing the tracer.
    recording = True

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        attrs: Optional[dict] = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Span length in virtual seconds (0.0 while unfinished)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def annotate(self, **attrs: object) -> None:
        """Attach (or overwrite) attributes on the span."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)

    def __repr__(self) -> str:
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return f"Span(#{self.span_id} {self.name!r} {self.start:.6f}..{end})"


class _NullSpan:
    """Shared do-nothing span returned by the disabled tracer."""

    __slots__ = ()

    recording = False
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    name = ""
    start = 0.0
    end: Optional[float] = 0.0
    attrs: Optional[dict] = None
    duration = 0.0

    def annotate(self, **attrs: object) -> None:
        pass

    def __repr__(self) -> str:
        return "NULL_SPAN"


NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op returning :data:`NULL_SPAN`."""

    __slots__ = ()

    enabled = False

    def begin(self, name: str, parent: object = None, **attrs: object) -> _NullSpan:
        return NULL_SPAN

    def begin_at(self, name: str, start: float, parent: object = None,
                 **attrs: object) -> _NullSpan:
        return NULL_SPAN

    def finish(self, span: object, **attrs: object) -> None:
        pass

    def record(self, name: str, start: float, end: float, parent: object = None,
               **attrs: object) -> _NullSpan:
        return NULL_SPAN


NULL_TRACER = NullTracer()


class SpanTracer:
    """Collects sim-clock-stamped spans for one run.

    The tracer only ever *reads* ``clock.now``; it cannot perturb event order
    or random-number consumption, which is what makes traced and untraced
    runs produce identical fingerprints.
    """

    enabled = True

    def __init__(self, clock: SimClock):
        self.clock = clock
        self.spans: list[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------ recording
    # begin/record deliberately duplicate begin_at's body: they run tens of
    # thousands of times per traced replay, and the extra call frame is
    # measurable against the ≤15% overhead budget (docs/observability.md).
    def begin(self, name: str, parent: object = None, **attrs: object) -> Span:
        """Open a span starting now; ``parent`` may be any span (or None)."""
        span = Span(
            self._next_id,
            parent.span_id if parent is not None else None,
            name,
            self.clock.now,
            attrs or None,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def begin_at(self, name: str, start: float, parent: object = None,
                 **attrs: object) -> Span:
        """Open a span with an explicit start time (e.g. a session opened earlier)."""
        parent_id = parent.span_id if parent is not None else None
        span = Span(self._next_id, parent_id, name, start, attrs or None)
        self._next_id += 1
        self.spans.append(span)
        return span

    def finish(self, span: Span, **attrs: object) -> None:
        """Close a span at the current virtual time."""
        if span.end is None:
            span.end = self.clock.now
        if attrs:
            span.annotate(**attrs)

    def record(self, name: str, start: float, end: float, parent: object = None,
               **attrs: object) -> Span:
        """Record an already-completed interval (e.g. a retired network flow)."""
        span = Span(
            self._next_id,
            parent.span_id if parent is not None else None,
            name,
            start,
            attrs or None,
        )
        span.end = end
        self._next_id += 1
        self.spans.append(span)
        return span

    def finish_open(self) -> int:
        """Close every still-open span at the current time; returns the count.

        Called before export so abandoned coroutines (straggler fetches whose
        ``finally`` blocks could not see every child) leave well-formed spans.
        """
        closed = 0
        now = self.clock.now
        for span in self.spans:
            if span.end is None:
                span.end = now
                span.annotate(unfinished=True)
                closed += 1
        return closed

    # ------------------------------------------------------------------ introspection
    def __len__(self) -> int:
        return len(self.spans)

    def by_name(self, name: str) -> list[Span]:
        """All spans with the given name, in creation order."""
        return [span for span in self.spans if span.name == name]

    def roots(self) -> list[Span]:
        """Parentless spans, in creation order."""
        return [span for span in self.spans if span.parent_id is None]

    def children_index(self) -> dict[Optional[int], list[Span]]:
        """Map of parent span id -> child spans (creation order)."""
        index: dict[Optional[int], list[Span]] = {}
        for span in self.spans:
            index.setdefault(span.parent_id, []).append(span)
        return index

    def descendants(self, root: Span) -> Iterable[Span]:
        """Yield every span beneath ``root`` (depth-first, excluding it)."""
        index = self.children_index()
        stack = list(index.get(root.span_id, ()))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(index.get(span.span_id, ()))

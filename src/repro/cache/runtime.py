"""Shared context for the event-driven (process-based) request path.

A :class:`RequestEnv` bundles what a request coroutine needs to run on the
discrete-event engine: the :class:`~repro.sim.loop.EventLoop`, the
:class:`~repro.network.flows.FlowNetwork` its chunk transfers share, and the
billing-session watchdog that closes a node's anticipatory billed-duration
window *by a scheduled event* when it expires — instead of lazily on the
node's next touch, which is how the synchronous facade does it.

The watchdog also honours the paper's "the PONG handshake delays the
timeout": while a node has transfers in flight (tracked through
:meth:`RequestEnv.begin_transfer` / :meth:`RequestEnv.end_transfer`), an
expiring window is *extended* by a billing cycle instead of closed, so a
session is never billed out from under a running transfer only to be
reopened in the past when that transfer completes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faas.billing import BILLING_CYCLE_SECONDS
from repro.network.flows import FlowNetwork
from repro.obs.tracer import NULL_TRACER
from repro.sim.loop import DeadlineTimer, EventLoop
from repro.sim.process import SimFuture

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (node -> platform -> ...)
    from repro.cache.node import LambdaCacheNode


class RequestEnv:
    """Event-loop, flow network, and session watchdog for request coroutines."""

    def __init__(self, loop: EventLoop, flows: FlowNetwork, tracer=None):
        self.loop = loop
        self.flows = flows
        #: The request-path tracer; :data:`~repro.obs.tracer.NULL_TRACER`
        #: (every call a no-op) unless a run attaches a real one via
        #: :meth:`attach_tracer`.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: node_id -> lazy close timer, reused across that node's sessions.
        #: Window *extensions* (every request on a busy node) are plain
        #: deadline-field writes instead of cancel+reschedule heap churn.
        self._session_watches: dict[str, DeadlineTimer] = {}
        #: node_id -> number of chunk transfers currently in flight.
        self._inflight: dict[str, int] = {}
        #: node_id -> (session object, its open span); tracing only.
        self._session_spans: dict[str, tuple[object, object]] = {}

    def attach_tracer(self, tracer) -> None:
        """Enable tracing on this env *and* its flow network."""
        self.tracer = tracer
        self.flows.tracer = tracer

    def detach_tracer(self) -> None:
        """Disable tracing (back to the no-op tracer)."""
        self.tracer = NULL_TRACER
        self.flows.tracer = None

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self.loop.now

    def sleep(self, delay: float, label: str = "request.sleep") -> SimFuture:
        """A future resolving after ``delay`` virtual seconds."""
        return self.loop.timeout(delay, label=label)

    # ------------------------------------------------------------------ in-flight tracking
    def begin_transfer(self, node: "LambdaCacheNode") -> None:
        """Mark a chunk transfer as in flight on ``node`` (keep-alive signal)."""
        self._inflight[node.node_id] = self._inflight.get(node.node_id, 0) + 1

    def end_transfer(self, node: "LambdaCacheNode") -> None:
        """Mark a chunk transfer as finished (or abandoned) on ``node``."""
        remaining = self._inflight.get(node.node_id, 0) - 1
        if remaining > 0:
            self._inflight[node.node_id] = remaining
        else:
            self._inflight.pop(node.node_id, None)

    def keep_alive(self, node: "LambdaCacheNode") -> bool:
        """Whether in-flight transfers must keep the node's session open.

        While this holds, an expiring billing window is extended by one
        cycle (the PONG handshake "delays the timeout" in the paper) so the
        session outlives every transfer it is serving.
        """
        if not self._inflight.get(node.node_id):
            return False
        session = node.duration_controller.current
        if session is None:
            return False
        # Align to the end of the *next* billing cycle, strictly in the
        # future — float floor-division can land exactly on `now` (e.g.
        # 0.5 // 0.1 == 4.0), which would re-arm the watchdog at the
        # current instant forever.
        end = (int(self.loop.now // BILLING_CYCLE_SECONDS) + 1) * BILLING_CYCLE_SECONDS
        while end <= self.loop.now + 1e-9:
            end += BILLING_CYCLE_SECONDS
        session.window_end = max(session.window_end, end)
        return True

    # ------------------------------------------------------------------ session close
    def watch_session(self, node: "LambdaCacheNode") -> None:
        """Arm (or re-aim) the close event for a node's open billed session.

        Called after every operation that may open or extend the node's
        billing window.  When the window later expires the event closes the
        session through the normal ``expire_if_due`` path; if the window was
        extended in the meantime the event re-aims itself at the new end.
        """
        if self.tracer.enabled:
            self._trace_session(node)
        session = node.duration_controller.current
        if session is None:
            return
        timer = self._session_watches.get(node.node_id)
        if timer is None:
            self._session_watches[node.node_id] = self.loop.schedule_deadline(
                session.window_end,
                lambda: self._session_check(node),
                label=f"billing.session_close:{node.node_id}",
            )
        elif not timer.active or session.window_end > timer.deadline:
            # A deadline already at-or-past the window end is left alone (the
            # check re-aims itself if the window grows); only a *later*
            # window end moves it — a field write on the lazy timer.
            timer.set_deadline(session.window_end)

    def _session_check(self, node: "LambdaCacheNode") -> None:
        controller = node.duration_controller
        timer = self._session_watches[node.node_id]
        session = controller.current
        now = self.loop.now
        if session is not None and session.window_end > now:
            # The window moved past the armed deadline without a
            # ``watch_session`` call (an in-check keep-alive extension);
            # nothing is due yet — re-aim, with no billing side effects,
            # exactly as the eager idiom's cancel+reschedule had none.
            timer.set_deadline(session.window_end)
            return
        if self.keep_alive(node):
            # Transfers still in flight: the window was just extended; the
            # session must not be billed out from under a running request.
            timer.set_deadline(controller.current.window_end)
            return
        controller.expire_if_due(now)
        if self.tracer.enabled:
            self._trace_session(node)
        session = controller.current
        if session is not None and session.window_end > now:
            # The window was extended after this event was armed; re-aim.
            timer.set_deadline(session.window_end)

    def _trace_session(self, node: "LambdaCacheNode") -> None:
        """Keep one open ``lambda.session`` span per open billed session.

        A session that was replaced without passing through the watchdog (a
        lazy close on the node's next touch) has its span closed at the old
        window end, which is when the billing layer deems it to have ended.
        """
        session = node.duration_controller.current
        tracked = self._session_spans.get(node.node_id)
        if tracked is not None:
            old_session, old_span = tracked
            if old_session is session:
                return
            old_span.end = min(old_session.window_end, self.loop.now)
            del self._session_spans[node.node_id]
        if session is None:
            return
        span = self.tracer.begin_at(
            "lambda.session", session.started_at, node=node.node_id
        )
        self._session_spans[node.node_id] = (session, span)

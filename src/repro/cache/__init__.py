"""InfiniCache core: client library, proxy, and Lambda cache-node runtime.

The package mirrors the paper's three components plus the orchestration glue
that keeps a deployment alive:

* :mod:`repro.cache.client` — the client library: GET/PUT API, erasure
  encoding/decoding, consistent-hash load balancing over proxies, and
  first-d reconstruction.
* :mod:`repro.cache.proxy` — the proxy: Lambda pool management, the
  chunk-to-node mapping table, CLOCK-based LRU eviction at object
  granularity, parallel chunk I/O with first-d streaming.
* :mod:`repro.cache.node` — one Lambda cache node: the runtime's chunk
  store (kept inside the simulated function instance's memory), the
  proxy-side and Lambda-side connection state machines, anticipatory
  billed-duration control, and failover between peer replicas.
* :mod:`repro.cache.backup` — the delta-sync backup protocol through a
  relay, run every ``T_bak`` per node.
* :mod:`repro.cache.warmup` — the periodic warm-up invoker (every
  ``T_warm``).
* :mod:`repro.cache.deployment` — a builder that wires the client, proxies,
  pool, simulated platform, warm-up and backup schedulers together from one
  :class:`~repro.cache.config.InfiniCacheConfig`.
"""

from repro.cache.admission import HybridCacheRouter, SizeThresholdAdmissionPolicy
from repro.cache.config import InfiniCacheConfig
from repro.cache.chunk import CacheChunk, ObjectDescriptor
from repro.cache.consistent_hash import ConsistentHashRing
from repro.cache.clock_lru import ClockLRU
from repro.cache.client import GetResult, InfiniCacheClient, PutResult
from repro.cache.namespacing import NAMESPACE_SEPARATOR, owner_of
from repro.cache.proxy import Proxy
from repro.cache.node import LambdaCacheNode
from repro.cache.deployment import InfiniCacheDeployment

__all__ = [
    "HybridCacheRouter",
    "SizeThresholdAdmissionPolicy",
    "InfiniCacheConfig",
    "CacheChunk",
    "ObjectDescriptor",
    "ConsistentHashRing",
    "ClockLRU",
    "GetResult",
    "PutResult",
    "InfiniCacheClient",
    "NAMESPACE_SEPARATOR",
    "owner_of",
    "Proxy",
    "LambdaCacheNode",
    "InfiniCacheDeployment",
]

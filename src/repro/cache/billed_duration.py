"""Anticipatory billed-duration control (paper Section 3.3).

AWS bills Lambda execution in 100 ms cycles.  InfiniCache's runtime therefore
never simply "runs until idle": after serving a request it sets a timer to
expire a couple of milliseconds *before* the current billing cycle ends, and
only extends itself by another cycle when the traffic pattern suggests more
requests are imminent (two or more requests served within the current cycle).

In the simulation the controller tracks, per cache node, the *billed
sessions* this policy produces: a session opens when a request (or warm-up)
arrives while the node is not already active, extends while subsequent
requests keep landing inside the active window, and closes when the window
expires.  Closed sessions are billed through the platform's
:class:`~repro.faas.billing.BillingModel`, which reproduces the paper's cost
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.exceptions import ConfigurationError
from repro.faas.billing import (
    BILLING_CYCLE_SECONDS,
    attribution_shares,
    ceil_to_billing_cycle,
)


@dataclass
class BilledSession:
    """One continuous billed execution window of a cache node."""

    started_at: float
    #: End of the currently granted window (aligned to a billing cycle bound).
    window_end: float
    #: Time actually spent serving requests inside the window.
    busy_seconds: float = 0.0
    requests_served: int = 0
    category: str = "serving"
    #: Busy seconds by the tenant whose request caused them — the chargeback
    #: weights for this session's eventual bill.  One session can serve many
    #: tenants (the anticipatory window keeps the node alive between
    #: requests); tenant-less work accrues under ``UNATTRIBUTED_TENANT``.
    busy_by_tenant: dict[str, float] = field(default_factory=dict)

    @property
    def active_seconds(self) -> float:
        """Wall-clock duration of the session so far (start to window end)."""
        return self.window_end - self.started_at


@dataclass
class SessionCharge:
    """A closed session ready for billing."""

    started_at: float
    duration_s: float
    billed_duration_s: float
    requests_served: int
    category: str
    #: Per-tenant busy-second weights, for splitting the charge (chargeback).
    busy_by_tenant: dict[str, float] = field(default_factory=dict)


class BilledDurationController:
    """Tracks anticipatory billed sessions for one cache node.

    Args:
        buffer_s: how long before the end of a billing cycle the runtime
            returns (the paper's 2-10 ms safety buffer).
        extension_threshold: minimum number of requests inside the current
            cycle before the runtime anticipates more and extends its window
            by one extra cycle (the paper uses "more than one").
        on_close: callback invoked with a :class:`SessionCharge` whenever a
            session closes; the deployment wires this to the billing model.
    """

    def __init__(
        self,
        buffer_s: float = 0.005,
        extension_threshold: int = 2,
        on_close: Optional[Callable[[SessionCharge], None]] = None,
    ):
        if not 0 <= buffer_s < BILLING_CYCLE_SECONDS:
            raise ConfigurationError(
                f"buffer must be within one billing cycle, got {buffer_s}"
            )
        if extension_threshold < 1:
            raise ConfigurationError("extension threshold must be >= 1")
        self.buffer_s = buffer_s
        self.extension_threshold = extension_threshold
        self.on_close = on_close
        self.current: Optional[BilledSession] = None
        self.closed_sessions: list[SessionCharge] = []

    # --- internals ---------------------------------------------------------------
    def _close_current(self) -> None:
        session = self.current
        if session is None:
            return
        duration = session.window_end - session.started_at - self.buffer_s
        # Busy time can exceed the window when the caller pushed more service
        # into it than fits (e.g. concurrent transfers through one node in
        # the event-driven path); the node cannot be billed for longer than
        # its session physically existed, so cap at the wall-clock span —
        # minus the safety buffer the runtime returns early by, as above.
        duration = max(
            duration,
            min(session.busy_seconds, session.active_seconds - self.buffer_s),
        )
        charge = SessionCharge(
            started_at=session.started_at,
            duration_s=duration,
            billed_duration_s=ceil_to_billing_cycle(duration),
            requests_served=session.requests_served,
            category=session.category,
            busy_by_tenant=dict(session.busy_by_tenant),
        )
        self.closed_sessions.append(charge)
        if self.on_close is not None:
            self.on_close(charge)
        self.current = None

    def _open_session(self, now: float, category: str) -> BilledSession:
        self.current = BilledSession(
            started_at=now,
            window_end=now + BILLING_CYCLE_SECONDS,
            category=category,
        )
        return self.current

    # --- public API ----------------------------------------------------------------
    def is_active(self, now: float) -> bool:
        """Whether the node is inside a granted execution window at ``now``."""
        return self.current is not None and now < self.current.window_end

    def record_request(
        self,
        now: float,
        service_time_s: float,
        category: str = "serving",
        attribution: dict[str, float] | str | None = None,
    ) -> bool:
        """Account for one request arriving at ``now`` and taking ``service_time_s``.

        Args:
            attribution: who to charge the busy time to — a tenant id, or a
                dict of relative per-tenant weights over which the busy time
                is split (maintenance work touching many tenants' chunks).
                ``None`` charges ``UNATTRIBUTED_TENANT``.

        Returns:
            ``True`` if the request found the node already active (no
            invocation needed), ``False`` if a new session (invocation) was
            opened for it.
        """
        if service_time_s < 0:
            raise ConfigurationError("service time must be non-negative")
        was_active = self.is_active(now)
        if not was_active:
            self._close_current()
            session = self._open_session(now, category)
        else:
            session = self.current
            # A mixed window (warm-up then real traffic) is billed under the
            # busier category; serving dominates warm-up in the paper's model.
            if category == "serving":
                session.category = "serving"
        session.requests_served += 1
        session.busy_seconds += service_time_s
        for tenant, busy in self._attributed_busy(service_time_s, attribution).items():
            session.busy_by_tenant[tenant] = session.busy_by_tenant.get(tenant, 0.0) + busy
        finish = now + service_time_s
        # Always extend the window far enough to cover the request itself
        # (the PONG handshake "delays the timeout" in the paper), aligned to
        # the end of the billing cycle that contains the finish time.
        cycles = int(finish // BILLING_CYCLE_SECONDS) + 1
        aligned_end = cycles * BILLING_CYCLE_SECONDS
        session.window_end = max(session.window_end, aligned_end)
        # Anticipation: if the window has already served enough requests,
        # extend it by one more billing cycle beyond the current request,
        # expecting further traffic (the paper's "extend the timeout by one
        # more billing cycle").  The extension is relative to the request's
        # own cycle, so bursts do not stack extensions indefinitely.
        if session.requests_served >= self.extension_threshold:
            session.window_end = max(session.window_end, aligned_end + BILLING_CYCLE_SECONDS)
        return was_active

    @staticmethod
    def _attributed_busy(
        service_time_s: float, attribution: dict[str, float] | str | None
    ) -> dict[str, float]:
        """Split one request's busy time over the tenants that caused it."""
        if isinstance(attribution, str):
            attribution = {attribution: 1.0}
        return {
            tenant: service_time_s * share
            for tenant, share in attribution_shares(attribution).items()
        }

    def expire_if_due(self, now: float) -> None:
        """Close the current session if its window has ended by ``now``."""
        if self.current is not None and now >= self.current.window_end:
            self._close_current()

    def flush(self) -> None:
        """Force-close any open session (end of simulation)."""
        self._close_current()

    # --- reporting ------------------------------------------------------------------
    def total_billed_seconds(self) -> float:
        """Sum of billed durations over all closed sessions."""
        return sum(charge.billed_duration_s for charge in self.closed_sessions)

    def session_count(self) -> int:
        """Number of closed sessions (== billable invocations) so far."""
        return len(self.closed_sessions)

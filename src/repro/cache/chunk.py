"""Cache-level chunk and object descriptors.

The erasure package produces chunks carrying real payload bytes; at the scale
of the production-trace replay (a terabyte-class working set) holding real
bytes is neither possible nor useful, so the cache layer works with
:class:`CacheChunk`, which always knows its size and *optionally* carries the
payload.  Functional tests and the examples use real payloads end to end;
the trace replayer uses size-only chunks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.erasure.codec import Chunk as ErasureChunk
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ObjectDescriptor:
    """Stripe-level metadata the proxy keeps for each cached object."""

    key: str
    object_size: int
    data_shards: int
    parity_shards: int
    chunk_size: int

    def __post_init__(self):
        if self.object_size <= 0:
            raise ConfigurationError(f"object size must be positive, got {self.object_size}")
        if self.data_shards < 1 or self.parity_shards < 0:
            raise ConfigurationError("invalid erasure configuration in object descriptor")
        if self.chunk_size <= 0:
            raise ConfigurationError(f"chunk size must be positive, got {self.chunk_size}")

    @property
    def total_chunks(self) -> int:
        """Number of chunks in the stripe (d + p)."""
        return self.data_shards + self.parity_shards

    @property
    def stored_bytes(self) -> int:
        """Bytes the stripe occupies in the cache (chunk size times chunk count)."""
        return self.chunk_size * self.total_chunks


@dataclass(frozen=True)
class CacheChunk:
    """One chunk as stored on a Lambda cache node."""

    key: str
    index: int
    size: int
    payload: Optional[bytes] = field(default=None, repr=False)

    def __post_init__(self):
        if self.size <= 0:
            raise ConfigurationError(f"chunk size must be positive, got {self.size}")
        if self.payload is not None and len(self.payload) != self.size:
            raise ConfigurationError(
                f"chunk payload length {len(self.payload)} does not match size {self.size}"
            )

    @property
    def chunk_id(self) -> str:
        """Globally unique identifier (``key#index``), as in the paper."""
        return f"{self.key}#{self.index}"

    @classmethod
    def from_erasure_chunk(cls, chunk: ErasureChunk) -> "CacheChunk":
        """Wrap a real erasure-coded chunk for storage in the cache."""
        return cls(key=chunk.key, index=chunk.index, size=chunk.size, payload=chunk.payload)

    @classmethod
    def sized(cls, key: str, index: int, size: int) -> "CacheChunk":
        """Create a size-only chunk (payload omitted) for large-scale replays."""
        return cls(key=key, index=index, size=size, payload=None)


def descriptor_for(
    key: str, object_size: int, data_shards: int, parity_shards: int
) -> ObjectDescriptor:
    """Build an :class:`ObjectDescriptor` with the standard ceiling-divided chunk size."""
    chunk_size = -(-object_size // data_shards)
    return ObjectDescriptor(
        key=key,
        object_size=object_size,
        data_shards=data_shards,
        parity_shards=parity_shards,
        chunk_size=chunk_size,
    )

"""One Lambda cache node: the unit the proxy stores chunks on.

A node corresponds to one *named* Lambda function registered with the
platform.  At any moment it may have:

* a **primary** function instance — the warm container whose memory holds the
  node's chunk store and that serves requests; and
* a **backup peer** instance — a second replica of the same function created
  by the delta-sync backup protocol, holding the chunks as of the last sync.

When the provider reclaims the primary, the node fails over to the backup
peer (if it is still alive): chunks synced at the last backup survive, chunks
written since are lost.  When both are gone the node is empty — exactly the
data-loss model Section 4 of the paper analyses.

Timing and billing: each chunk request served by the node is recorded with
the :class:`~repro.cache.billed_duration.BilledDurationController`, which
opens an invocation when the node was not already active, extends the billing
window per the anticipatory policy, and bills the closed session through the
platform when the window ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.billed_duration import BilledDurationController, SessionCharge
from repro.cache.chunk import CacheChunk
from repro.cache.clock_lru import ClockLRU
from repro.cache.connection import CircuitBreaker, LambdaSideConnection, ProxyConnection
from repro.exceptions import CacheError
from repro.faas.function import FunctionInstance, FunctionState
from repro.faas.limits import bandwidth_for_memory, usable_cache_bytes
from repro.faas.platform import FaaSPlatform


@dataclass
class NodeAccess:
    """Timing details of one chunk operation on a node."""

    #: Seconds of invocation / preflight overhead paid before the transfer.
    overhead_s: float
    #: Whether the operation required a (cold or warm) function invocation.
    invoked: bool
    #: Whether the invocation was a cold start.
    cold_start: bool


class LambdaCacheNode:
    """A single erasure-chunk cache node backed by a simulated Lambda function."""

    def __init__(
        self,
        node_id: str,
        platform: FaaSPlatform,
        memory_bytes: int,
        billing_buffer_s: float = 0.005,
        billing_extension_threshold: int = 2,
        runtime_overhead_fraction: float = 0.10,
    ):
        self.node_id = node_id
        self.platform = platform
        self.memory_bytes = memory_bytes
        self.capacity_bytes = usable_cache_bytes(memory_bytes, runtime_overhead_fraction)
        self.bandwidth_bps = bandwidth_for_memory(memory_bytes)
        platform.register_function(node_id, memory_bytes)

        self.primary: Optional[FunctionInstance] = None
        self.backup_peer: Optional[FunctionInstance] = None
        self.proxy_connection = ProxyConnection(node_id)
        self.lambda_connection = LambdaSideConnection(node_id)
        self.duration_controller = BilledDurationController(
            buffer_s=billing_buffer_s,
            extension_threshold=billing_extension_threshold,
            on_close=self._bill_session,
        )
        self._session_instance: Optional[FunctionInstance] = None
        #: Per-node circuit breaker, installed by the proxy when the
        #: deployment's :class:`~repro.cache.config.ResilienceConfig` asks for
        #: one; ``None`` means requests always flow (the default).
        self.breaker: Optional[CircuitBreaker] = None
        #: Chunks lost because the node had no alive replica when asked.
        self.chunks_lost = 0
        #: Number of failovers from the primary to the backup peer.
        self.failovers = 0

    def __repr__(self) -> str:
        return f"LambdaCacheNode({self.node_id}, chunks={self.chunk_count()})"

    # ------------------------------------------------------------------ billing
    def _bill_session(self, charge: SessionCharge) -> None:
        instance = self._session_instance
        self._session_instance = None
        if instance is None:
            # The session's instance was reclaimed and already cleaned up;
            # the account is still billed for the duration that ran.
            self.platform.billing.charge_invocation(
                self.memory_bytes, charge.duration_s, charge.category,
                attribution=charge.busy_by_tenant,
            )
            return
        self.platform.complete_invocation(
            instance, charge.duration_s, charge.category,
            attribution=charge.busy_by_tenant,
        )

    # ------------------------------------------------------------------ state access
    def _state_of(self, instance: Optional[FunctionInstance]) -> Optional[dict]:
        if instance is None or not instance.is_alive:
            return None
        state = instance.runtime_state
        if "chunks" not in state:
            state["chunks"] = {}
            state["clock"] = ClockLRU()
            state["synced_keys"] = set()
        return state

    def _primary_state(self) -> Optional[dict]:
        return self._state_of(self.primary)

    @property
    def is_alive(self) -> bool:
        """Whether at least one replica of this node still holds state."""
        return (self.primary is not None and self.primary.is_alive) or (
            self.backup_peer is not None and self.backup_peer.is_alive
        )

    def chunk_count(self) -> int:
        """Number of chunks in the primary replica's store."""
        state = self._primary_state()
        return len(state["chunks"]) if state else 0

    def bytes_used(self) -> int:
        """Bytes of chunk payload held by the primary replica."""
        state = self._primary_state()
        if not state:
            return 0
        return sum(chunk.size for chunk in state["chunks"].values())

    def free_bytes(self) -> int:
        """Remaining chunk capacity on this node."""
        return max(0, self.capacity_bytes - self.bytes_used())

    def chunk_ids(self) -> list[str]:
        """Identifiers of every chunk currently stored (MRU to LRU order)."""
        state = self._primary_state()
        if not state:
            return []
        return state["clock"].keys_mru_to_lru()

    # ------------------------------------------------------------------ activation
    def ensure_active(self, now: float, category: str = "serving") -> NodeAccess:
        """Make sure a replica is running and able to serve a request at ``now``.

        Returns the overhead the caller must add to the request latency:
        essentially nothing when the node is already inside an active billing
        window, a warm-invocation overhead (~13 ms) when it has to be woken,
        plus the cold-start penalty when no replica exists at all.
        """
        self.duration_controller.expire_if_due(now)
        if self.duration_controller.is_active(now) and self._session_instance is not None:
            # Preflight PING/PONG on the already-running instance.
            self.proxy_connection.send_ping()
            self.lambda_connection.ping()
            self.proxy_connection.pong_received()
            return NodeAccess(overhead_s=0.001, invoked=False, cold_start=False)

        if (
            self._session_instance is not None
            and self._session_instance.is_alive
            and self._session_instance.state is FunctionState.RUNNING
        ):
            # Event-driven path: the instance is already mid-invocation
            # serving a concurrent request and its session has not been
            # opened yet (that happens when the first transfer completes);
            # piggyback on the running invocation instead of re-invoking.
            self.proxy_connection.send_ping()
            self.lambda_connection.ping()
            self.proxy_connection.pong_received()
            return NodeAccess(overhead_s=0.001, invoked=False, cold_start=False)

        self.proxy_connection.begin_invocation()
        invoked_instance: FunctionInstance
        cold_start = False
        if self.primary is not None and self.primary.is_alive:
            result = self.platform.invoke_instance(self.primary)
            invoked_instance = result.instance
            overhead = result.invoke_overhead_s
        elif self.backup_peer is not None and self.backup_peer.is_alive:
            self._failover_to_backup()
            result = self.platform.invoke_instance(self.primary)
            invoked_instance = result.instance
            overhead = result.invoke_overhead_s
        else:
            result = self.platform.invoke(self.node_id)
            invoked_instance = result.instance
            overhead = result.invoke_overhead_s
            cold_start = result.cold_start
            self.primary = invoked_instance
        self._session_instance = invoked_instance
        self.lambda_connection.activate()
        self.proxy_connection.pong_received()
        return NodeAccess(overhead_s=overhead, invoked=True, cold_start=cold_start)

    def record_service(
        self,
        now: float,
        service_time_s: float,
        category: str = "serving",
        attribution: dict[str, float] | str | None = None,
    ) -> None:
        """Account ``service_time_s`` of work starting at ``now`` on this node.

        ``attribution`` names the tenant (or per-tenant weights) the busy
        time is charged back to; the billed session splits its eventual bill
        over these weights.
        """
        self.duration_controller.record_request(now, service_time_s, category, attribution)

    # ------------------------------------------------------------------ chunk operations
    def store_chunk(self, chunk: CacheChunk) -> None:
        """Store a chunk in the primary replica's memory.

        Raises:
            CacheError: if no replica is alive or the node is out of memory
                (the proxy is responsible for evicting before storing).
        """
        state = self._primary_state()
        if state is None:
            raise CacheError(f"node {self.node_id} has no alive replica to store into")
        existing = state["chunks"].get(chunk.chunk_id)
        freed = existing.size if existing is not None else 0
        if self.bytes_used() - freed + chunk.size > self.capacity_bytes:
            raise CacheError(
                f"node {self.node_id} is out of memory "
                f"({self.bytes_used()}/{self.capacity_bytes} bytes used, "
                f"cannot store {chunk.size} more)"
            )
        state["chunks"][chunk.chunk_id] = chunk
        state["clock"].insert(chunk.chunk_id, chunk.size)

    def fetch_chunk(self, chunk_id: str) -> Optional[CacheChunk]:
        """Return a chunk from the primary replica, or ``None`` if it is gone."""
        state = self._primary_state()
        if state is None:
            self.chunks_lost += 1
            return None
        chunk = state["chunks"].get(chunk_id)
        if chunk is None:
            self.chunks_lost += 1
            return None
        state["clock"].touch(chunk_id)
        return chunk

    def peek_chunk(self, chunk_id: str) -> Optional[CacheChunk]:
        """Read a chunk without touching the LRU clock or the loss counters.

        Maintenance paths (repair, export, drain) use this to inspect
        surviving stripe chunks without perturbing eviction order or the
        data-loss statistics the experiments report.
        """
        state = self._primary_state()
        if state is None:
            return None
        return state["chunks"].get(chunk_id)

    def has_chunk(self, chunk_id: str) -> bool:
        """Whether the primary replica currently holds this chunk."""
        state = self._primary_state()
        return state is not None and chunk_id in state["chunks"]

    def delete_chunk(self, chunk_id: str) -> int:
        """Delete a chunk from every alive replica; returns the bytes freed."""
        freed = 0
        for instance in (self.primary, self.backup_peer):
            state = self._state_of(instance)
            if state is None:
                continue
            chunk = state["chunks"].pop(chunk_id, None)
            if chunk is not None:
                state["clock"].remove(chunk_id)
                state["synced_keys"].discard(chunk_id)
                if instance is self.primary:
                    freed = chunk.size
        return freed

    # ------------------------------------------------------------------ replica management
    def _failover_to_backup(self) -> None:
        """Promote the backup peer to primary after the primary was reclaimed."""
        self.primary = self.backup_peer
        self.backup_peer = None
        self.failovers += 1

    def on_instance_reclaimed(self, instance: FunctionInstance) -> None:
        """Handle the provider reclaiming one of this node's replicas."""
        if self._session_instance is instance:
            self._session_instance = None
        if instance is self.primary:
            self.primary = None
            self.lambda_connection.reclaimed()
            self.proxy_connection.node_returned()
            if self.backup_peer is not None and self.backup_peer.is_alive:
                self._failover_to_backup()
        elif instance is self.backup_peer:
            self.backup_peer = None

    # ------------------------------------------------------------------ backup support
    def unsynced_chunks(self) -> list[CacheChunk]:
        """Chunks present on the primary but not yet copied to the backup peer.

        This is the "delta" of the delta-sync protocol.  Ordered MRU-first so
        the hottest data is protected earliest, as in the paper.
        """
        state = self._primary_state()
        if state is None:
            return []
        backup_state = self._state_of(self.backup_peer)
        synced = set(backup_state["chunks"]) if backup_state else set()
        ordered_ids = state["clock"].keys_mru_to_lru()
        return [state["chunks"][cid] for cid in ordered_ids if cid not in synced]

    def apply_backup(self, peer: FunctionInstance, chunks: list[CacheChunk]) -> None:
        """Install the delta onto the backup peer replica after a sync."""
        self.backup_peer = peer
        state = self._state_of(peer)
        if state is None:
            raise CacheError(f"backup peer of node {self.node_id} is not alive")
        for chunk in chunks:
            state["chunks"][chunk.chunk_id] = chunk
            state["clock"].insert(chunk.chunk_id, chunk.size)
            state["synced_keys"].add(chunk.chunk_id)

    def finish_sessions(self) -> None:
        """Close any open billing session (end of simulation)."""
        self.duration_controller.flush()

"""Delta-sync backup protocol (paper Section 4.2, Figure 10).

Every ``T_bak`` a cache node backs itself up to a *peer replica* of its own
Lambda function.  The protocol in the paper runs through a relay process
co-located with the proxy because two Lambda instances cannot talk to each
other directly (no inbound connections); the observable effects are:

* a second instance (λ_d) of the node's function is invoked — reusing the
  previous backup peer when it is still warm, so only the *delta* (chunks
  written since the last sync) needs to be copied;
* both instances stay active for the duration of the sync, so the tenant is
  billed for two function durations plus the extra invocation;
* afterwards either replica can serve the node's data, which is what lets a
  node survive the reclamation of one of them.

:class:`BackupManager` drives the protocol for every node of a proxy and
keeps the counters the cost and fault-tolerance experiments read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.chunk import CacheChunk
from repro.cache.namespacing import owner_of
from repro.cache.node import LambdaCacheNode
from repro.cache.proxy import Proxy
from repro.exceptions import BackupError, BackupSyncInterruptedError, TransientFaultError
from repro.faas.platform import FaaSPlatform
from repro.simulation.metrics import MetricRegistry
from repro.utils.units import MILLISECOND


@dataclass
class BackupReport:
    """Result of one node's backup round."""

    node_id: str
    performed: bool
    delta_chunks: int
    delta_bytes: int
    duration_s: float
    created_new_peer: bool


class BackupManager:
    """Runs the delta-sync protocol for the nodes of one proxy."""

    #: Control-plane overhead of one backup round: init message, relay launch,
    #: invoking the peer replica, establishing two connections through the
    #: relay, and streaming the chunk-key metadata MRU-to-LRU (steps 1-11 of
    #: Figure 10).  The paper's measured cost breakdown (Figure 13(c), where
    #: backup dominates the hourly cost at ~12 rounds/hour over 400 nodes)
    #: implies each round keeps a function busy for several billing cycles.
    PROTOCOL_OVERHEAD_S = 400 * MILLISECOND

    def __init__(
        self,
        proxy: Proxy,
        platform: FaaSPlatform,
        metrics: MetricRegistry | None = None,
    ):
        self.proxy = proxy
        self.platform = platform
        self.metrics = metrics or MetricRegistry()

    def _sync_duration(self, node: LambdaCacheNode, delta_bytes: int) -> float:
        """How long the delta transfer keeps both replicas busy.

        The transfer is bounded by the function's own bandwidth (both ends
        are instances of the same function configuration, and the relay on
        the proxy is not the bottleneck).
        """
        return self.PROTOCOL_OVERHEAD_S + delta_bytes / node.bandwidth_bps

    @staticmethod
    def _chargeback_weights(
        node: LambdaCacheNode, delta: list[CacheChunk]
    ) -> dict[str, float] | None:
        """Per-tenant byte weights for one backup round's bill.

        The round's busy time is dominated by the delta transfer, so the
        delta's bytes set the weights; a delta-free round (pure liveness
        check on the peer) is charged to whoever's chunks it keeps
        protected.  An empty node's round stays unattributed.
        """
        chunks: list[CacheChunk] = delta
        if not chunks:
            chunks = [
                chunk
                for chunk_id in node.chunk_ids()
                if (chunk := node.peek_chunk(chunk_id)) is not None
            ]
        if not chunks:
            return None
        weights: dict[str, float] = {}
        for chunk in chunks:
            owner = owner_of(chunk.key)
            weights[owner] = weights.get(owner, 0.0) + float(chunk.size)
        return weights

    def backup_node(self, node: LambdaCacheNode, now: float) -> BackupReport:
        """Run one backup round for a single node."""
        if node.primary is None or not node.primary.is_alive:
            # Nothing to protect; the node is empty until the next insert.
            return BackupReport(
                node_id=node.node_id, performed=False, delta_chunks=0,
                delta_bytes=0, duration_s=0.0, created_new_peer=False,
            )
        delta = node.unsynced_chunks()
        delta_bytes = sum(chunk.size for chunk in delta)

        created_new_peer = False
        try:
            if node.backup_peer is not None and node.backup_peer.is_alive:
                invocation = self.platform.invoke_instance(node.backup_peer)
            else:
                invocation = self.platform.invoke(node.node_id, force_new_instance=True)
                created_new_peer = True
        except TransientFaultError as exc:
            # The peer died (or an injected fault hit) mid-sync: surface the
            # interruption as retryable so the next backup round re-invokes a
            # fresh peer and re-sends the still-unsynced delta, instead of the
            # caller treating the protocol as broken.
            raise BackupSyncInterruptedError(node.node_id, str(exc)) from exc
        peer = invocation.instance
        if peer is node.primary:
            raise BackupError(
                f"backup of node {node.node_id} resolved to the primary instance itself"
            )

        duration = self._sync_duration(node, delta_bytes)
        attribution = self._chargeback_weights(node, delta)
        # The destination replica is billed through the normal invocation path…
        self.platform.complete_invocation(
            peer, duration, category="backup", attribution=attribution
        )
        # …and the source replica's extra active time is billed as well (the
        # paper notes warm-up invocations that trigger a backup run longer).
        self.platform.billing.charge_invocation(
            node.memory_bytes, duration, category="backup", attribution=attribution
        )

        node.apply_backup(peer, delta)

        self.metrics.counter("backup.rounds").increment()
        self.metrics.counter("backup.bytes").increment(delta_bytes)
        self.metrics.series("backup.events").record(now, float(len(delta)))
        return BackupReport(
            node_id=node.node_id,
            performed=True,
            delta_chunks=len(delta),
            delta_bytes=delta_bytes,
            duration_s=duration,
            created_new_peer=created_new_peer,
        )

    def backup_all(self, now: float) -> list[BackupReport]:
        """Run one backup round for every node in the proxy's pool.

        A node whose sync is interrupted by a retryable fault (its peer was
        reclaimed mid-round, an injected invocation fault) is skipped for
        this round — its delta stays unsynced and is retried on the next
        periodic tick — so one lost peer never aborts the whole sweep.
        """
        reports: list[BackupReport] = []
        for node in self.proxy.nodes:
            try:
                reports.append(self.backup_node(node, now))
            except BackupSyncInterruptedError:
                self.metrics.counter("backup.interrupted_rounds").increment()
                reports.append(BackupReport(
                    node_id=node.node_id, performed=False, delta_chunks=0,
                    delta_bytes=0, duration_s=0.0, created_new_peer=False,
                ))
        return reports

"""Size-aware admission and hybrid routing.

The paper's motivation section describes the *tension* between small and
large objects: large objects evict many small ones and hog bandwidth, so
conventional deployments either cap the admitted object size (Varnish/
AdaptSize-style thresholds) or over-provision memory.  InfiniCache resolves
the tension by giving large objects their own pay-per-use tier; Section 6
("Small Object Caching") is explicit that small-object-intensive traffic
should *stay* on a conventional IMOC.

This module implements that operational guidance as reusable components:

* :class:`SizeThresholdAdmissionPolicy` — the classic "only admit objects
  larger/smaller than X" rule, with counters so operators can see what share
  of traffic each tier receives;
* :class:`HybridCacheRouter` — a front-end that sends small objects to an
  ElastiCache-style cluster and large objects to InfiniCache, exposing one
  GET/PUT interface and aggregate hit/cost statistics.  This is the
  deployment the paper implicitly recommends for a mixed workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.elasticache import ElastiCacheCluster
from repro.cache.client import GetResult, InfiniCacheClient
from repro.exceptions import ConfigurationError
from repro.utils.units import MB


@dataclass
class AdmissionDecision:
    """Outcome of an admission check for one object."""

    admitted_to_large_tier: bool
    reason: str


@dataclass
class SizeThresholdAdmissionPolicy:
    """Route objects to the large-object tier when they exceed a threshold.

    The default threshold of 10 MB is the boundary the paper uses throughout
    its analysis ("large objects" = objects larger than 10 MB).
    """

    threshold_bytes: int = 10 * MB
    large_tier_objects: int = 0
    small_tier_objects: int = 0
    large_tier_bytes: int = 0
    small_tier_bytes: int = 0

    def __post_init__(self):
        if self.threshold_bytes <= 0:
            raise ConfigurationError("admission threshold must be positive")

    def decide(self, size: int) -> AdmissionDecision:
        """Classify one object and update the tier counters."""
        if size <= 0:
            raise ConfigurationError(f"object size must be positive, got {size}")
        if size > self.threshold_bytes:
            self.large_tier_objects += 1
            self.large_tier_bytes += size
            return AdmissionDecision(
                admitted_to_large_tier=True,
                reason=f"size {size} exceeds threshold {self.threshold_bytes}",
            )
        self.small_tier_objects += 1
        self.small_tier_bytes += size
        return AdmissionDecision(
            admitted_to_large_tier=False,
            reason=f"size {size} within threshold {self.threshold_bytes}",
        )

    def large_tier_byte_share(self) -> float:
        """Fraction of admitted bytes that went to the large-object tier."""
        total = self.large_tier_bytes + self.small_tier_bytes
        return self.large_tier_bytes / total if total else 0.0

    def large_tier_object_share(self) -> float:
        """Fraction of admitted objects that went to the large-object tier."""
        total = self.large_tier_objects + self.small_tier_objects
        return self.large_tier_objects / total if total else 0.0


@dataclass
class HybridStats:
    """Aggregate statistics of a hybrid deployment."""

    small_gets: int = 0
    small_hits: int = 0
    large_gets: int = 0
    large_hits: int = 0

    @property
    def overall_hit_ratio(self) -> float:
        """Hit ratio across both tiers."""
        total = self.small_gets + self.large_gets
        hits = self.small_hits + self.large_hits
        return hits / total if total else 0.0


class HybridCacheRouter:
    """One GET/PUT front-end over a small-object tier and a large-object tier.

    Small objects (at or below the admission threshold) are cached in an
    ElastiCache-style cluster, which serves them in well under a millisecond;
    large objects go to InfiniCache, which serves them with parallel chunk
    I/O and pay-per-use billing.  Overwrites invalidate whichever tier holds
    the previous version, so a key that grows past the threshold migrates
    cleanly.
    """

    def __init__(
        self,
        infinicache_client: InfiniCacheClient,
        small_object_cache: ElastiCacheCluster,
        admission: Optional[SizeThresholdAdmissionPolicy] = None,
    ):
        self.large_tier = infinicache_client
        self.small_tier = small_object_cache
        self.admission = admission or SizeThresholdAdmissionPolicy()
        self.stats = HybridStats()
        #: Remember which tier currently holds each key so GETs and
        #: invalidations do not probe both tiers.
        self._tier_of_key: dict[str, str] = {}

    # ------------------------------------------------------------------ PUT
    def put_sized(self, key: str, size: int) -> AdmissionDecision:
        """Insert an object (by size) into the tier the admission policy picks."""
        if not key:
            raise ConfigurationError("object key must be non-empty")
        decision = self.admission.decide(size)
        self.invalidate(key)
        if decision.admitted_to_large_tier:
            self.large_tier.put_sized(key, size)
            self._tier_of_key[key] = "large"
        else:
            self.small_tier.put(key, size, now=self.large_tier.clock.now)
            self._tier_of_key[key] = "small"
        return decision

    # ------------------------------------------------------------------ GET
    def get(self, key: str, size_hint: int | None = None) -> GetResult:
        """Fetch an object from whichever tier holds it.

        Returns a :class:`~repro.cache.client.GetResult` in both cases so the
        caller sees one result type; small-tier hits carry no payload (the
        small tier stores sizes only, like the large tier's sized mode).
        """
        tier = self._tier_of_key.get(key)
        if tier == "small" or (tier is None and size_hint is not None
                               and size_hint <= self.admission.threshold_bytes):
            now = self.large_tier.clock.now
            latency = self.small_tier.get(key, now)
            self.stats.small_gets += 1
            if latency is None:
                return GetResult(key=key, hit=False, size=size_hint or 0,
                                 latency_s=0.0, proxy_id="small-tier")
            self.stats.small_hits += 1
            return GetResult(key=key, hit=True, size=size_hint or 0,
                             latency_s=latency, proxy_id="small-tier")
        result = self.large_tier.get(key)
        self.stats.large_gets += 1
        if result.hit:
            self.stats.large_hits += 1
        return result

    # ------------------------------------------------------------------ invalidation
    def invalidate(self, key: str) -> bool:
        """Drop a key from whichever tier holds it."""
        tier = self._tier_of_key.pop(key, None)
        if tier == "small":
            return self.small_tier._node_for(key).delete(key)
        if tier == "large":
            return self.large_tier.invalidate(key)
        return False

    # ------------------------------------------------------------------ reporting
    def tier_of(self, key: str) -> Optional[str]:
        """Which tier currently holds a key (``"small"``, ``"large"`` or None)."""
        return self._tier_of_key.get(key)

    def describe(self) -> dict[str, float]:
        """Routing and hit statistics for reports."""
        return {
            "threshold_bytes": self.admission.threshold_bytes,
            "large_tier_object_share": self.admission.large_tier_object_share(),
            "large_tier_byte_share": self.admission.large_tier_byte_share(),
            "small_tier_hit_ratio": (
                self.stats.small_hits / self.stats.small_gets if self.stats.small_gets else 0.0
            ),
            "large_tier_hit_ratio": (
                self.stats.large_hits / self.stats.large_gets if self.stats.large_gets else 0.0
            ),
            "overall_hit_ratio": self.stats.overall_hit_ratio,
        }

"""Tenant namespacing of cache keys.

Multi-tenant layers (``repro.cluster``) store every tenant's objects under
``tenant_id::key``.  The cache layer itself is tenant-agnostic, but cost
attribution needs to know, for any ring key, *which tenant's traffic caused
the work* — so the naming scheme lives here, below both the proxy and the
cluster router, and both sides agree on it.

The separator is reserved: tenant ids may not contain it (enforced at
registration) and neither may application keys (enforced at request time by
the router).  That makes :func:`split_namespaced_key` unambiguous — an
un-namespaced key can never be mistaken for a tenant-qualified one.
"""

from __future__ import annotations

from typing import Optional

from repro.faas.billing import UNATTRIBUTED_TENANT as UNATTRIBUTED

#: Separator between the tenant namespace and the application key.
NAMESPACE_SEPARATOR = "::"


def namespace_key(tenant_id: str, key: str) -> str:
    """The ring key under which a tenant's object is stored."""
    return f"{tenant_id}{NAMESPACE_SEPARATOR}{key}"


def split_namespaced_key(namespaced: str) -> tuple[Optional[str], str]:
    """Invert :func:`namespace_key`; ``(None, key)`` for un-namespaced keys."""
    if NAMESPACE_SEPARATOR not in namespaced:
        return None, namespaced
    tenant_id, key = namespaced.split(NAMESPACE_SEPARATOR, 1)
    return tenant_id, key


def owner_of(key: str) -> str:
    """The attribution label for work done on behalf of a ring key."""
    tenant_id, _rest = split_namespaced_key(key)
    return tenant_id if tenant_id else UNATTRIBUTED
